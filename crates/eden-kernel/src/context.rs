//! The execution context handed to Eject behaviours and their worker
//! processes.
//!
//! "Each Eject is provided with multiple processes, of which some may be
//! waiting for incoming invocations, some may be waiting for replies to
//! invocations, and some may be running" (§1). In this reproduction the
//! coordinator process is supplied by the kernel (one thread per Eject) and
//! behaviours may spawn additional worker processes through
//! [`EjectContext::spawn_process`]. Workers communicate with the coordinator
//! by posting internal events, which are metered separately from invocations
//! — that distinction is the heart of the paper's cost argument.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use eden_core::{wire, EdenError, Metrics, OpName, Result, Uid, Value};
use parking_lot::Mutex;

use crate::invocation::{PendingReply, DEFAULT_REPLY_TIMEOUT};
use crate::kernel::{NodeId, WeakKernel};
use crate::mailbox::MailboxSender;
use crate::options::InvokeOptions;
use crate::routes::RouteCache;
use crate::runtime::Envelope;

/// Context available to an Eject's coordinator (the `&mut self` methods of
/// its behaviour).
#[derive(Debug)]
pub struct EjectContext {
    pub(crate) uid: Uid,
    pub(crate) node: NodeId,
    pub(crate) type_name: &'static str,
    pub(crate) kernel: WeakKernel,
    pub(crate) mailbox: MailboxSender,
    pub(crate) metrics: Metrics,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) deactivate: AtomicBool,
    pub(crate) workers: Mutex<Vec<JoinHandle<()>>>,
}

impl EjectContext {
    /// This Eject's UID.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The simulated node this Eject is placed on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The global metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A kernel handle, if the kernel is still alive. Behaviours use this
    /// to spawn sibling Ejects (e.g. a file minting a reader stream).
    pub fn kernel(&self) -> Option<crate::kernel::Kernel> {
        self.kernel.upgrade()
    }

    /// Send an invocation without suspending (returns a [`PendingReply`]).
    pub fn invoke(&self, target: Uid, op: impl Into<OpName>, arg: Value) -> PendingReply {
        match self.kernel.upgrade() {
            Some(kernel) => kernel.invoke_from(self.node, target, op.into(), arg),
            None => PendingReply::ready(Err(EdenError::KernelShutdown)),
        }
    }

    /// Send an invocation with explicit [`InvokeOptions`] (deadline, retry
    /// policy, route cache, fault immunity).
    pub fn invoke_with(
        &self,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
        opts: InvokeOptions<'_>,
    ) -> PendingReply {
        match self.kernel.upgrade() {
            Some(kernel) => kernel.invoke_with_from(self.node, target, op.into(), arg, opts),
            None => PendingReply::ready(Err(EdenError::KernelShutdown)),
        }
    }

    /// Deprecated synchronous shim; exactly `invoke(..).wait()`.
    #[cfg(feature = "legacy-shims")]
    #[deprecated(since = "0.3.0", note = "use `invoke(..).wait()`")]
    pub fn invoke_sync(&self, target: Uid, op: impl Into<OpName>, arg: Value) -> Result<Value> {
        self.invoke(target, op, arg).wait()
    }

    /// As [`invoke`](Self::invoke), but through a caller-owned
    /// [`RouteCache`]: repeat invocations of the same target skip the
    /// kernel registry. Semantically identical to `invoke` — stale routes
    /// fall back to the registry (reactivating a passive target) before the
    /// caller can observe anything.
    pub fn invoke_routed(
        &self,
        cache: &mut RouteCache,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
    ) -> PendingReply {
        match self.kernel.upgrade() {
            Some(kernel) => {
                kernel.invoke_cached(self.node, cache, target, op.into(), arg, true, false, None)
            }
            None => PendingReply::ready(Err(EdenError::KernelShutdown)),
        }
    }

    /// Post an internal event back to this Eject's own coordinator. The
    /// event arrives via [`EjectBehavior::internal`].
    ///
    /// [`EjectBehavior::internal`]: crate::behavior::EjectBehavior::internal
    pub fn post_internal(&self, event: Value) -> Result<()> {
        self.internal_sender().send(event)
    }

    /// A cloneable handle that worker processes use to post internal events
    /// to this Eject's coordinator.
    pub fn internal_sender(&self) -> InternalSender {
        InternalSender {
            tx: self.mailbox.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Spawn a worker process belonging to this Eject.
    ///
    /// The worker runs until its closure returns; it should poll
    /// [`ProcessContext::should_stop`] (or rely on its channels
    /// disconnecting) so that deactivation does not hang. The coordinator
    /// joins all workers when the Eject stops.
    pub fn spawn_process<F>(&self, name: &str, body: F)
    where
        F: FnOnce(ProcessContext) + Send + 'static,
    {
        let pctx = ProcessContext {
            eject: self.uid,
            node: self.node,
            type_name: self.type_name,
            kernel: self.kernel.clone(),
            internal: self.internal_sender(),
            metrics: self.metrics.clone(),
            stop: Arc::clone(&self.stop),
        };
        // Workers inherit the spawner's ambient span: a pump spawned while
        // a pipeline's root span is ambient sends its invocations inside
        // that trace (§1's internal processes stay causally attributable).
        let ambient = eden_core::span::current();
        let handle = std::thread::Builder::new()
            .name(format!("{}:{}", self.uid, name))
            .spawn(move || {
                let _span = ambient.map(|ctx| eden_core::span::enter(Some(ctx)));
                body(pctx)
            })
            .expect("spawning a worker thread failed");
        self.workers.lock().push(handle);
    }

    /// Write `representation` to stable storage as this Eject's passive
    /// representation ("the checkpoint primitive is the only mechanism
    /// provided by the Eden kernel whereby an Eject may access stable
    /// storage", §1).
    pub fn checkpoint(&self, representation: &Value) -> Result<()> {
        let kernel = self.kernel.upgrade().ok_or(EdenError::KernelShutdown)?;
        kernel.store_checkpoint(self.uid, self.type_name, wire::encode(representation).into())?;
        self.metrics.record_checkpoint();
        Ok(())
    }

    /// Request that this Eject deactivate once the current envelope has
    /// been handled. If it has checkpointed it survives as its passive
    /// representation; otherwise it disappears.
    pub fn request_deactivate(&self) {
        self.deactivate.store(true, Ordering::Release);
    }

    pub(crate) fn deactivate_requested(&self) -> bool {
        self.deactivate.load(Ordering::Acquire)
    }

    pub(crate) fn begin_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub(crate) fn join_workers(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            // A worker that panicked already printed its message; the
            // coordinator should still reap the rest.
            // eden-lint: nonblocking(every worker-context caller wraps the whole join in sched::blocking)
            let _ = handle.join();
        }
    }
}

/// A cloneable sender for intra-Eject (language-level) messages.
#[derive(Clone)]
#[derive(Debug)]
pub struct InternalSender {
    tx: MailboxSender,
    metrics: Metrics,
}

impl InternalSender {
    /// Post an internal event to the owning Eject's coordinator.
    pub fn send(&self, event: Value) -> Result<()> {
        self.metrics.record_internal_message();
        self.tx
            .send(Envelope::Internal(event))
            // Internal events are stream data, never shed: admission control
            // parks the sender instead (see `mailbox::ShedPolicy`), so the
            // outcome is always plain delivery.
            .map(|_| ())
            .map_err(|_| EdenError::KernelShutdown)
    }
}

/// Context available to a worker process spawned with
/// [`EjectContext::spawn_process`].
#[derive(Debug)]
pub struct ProcessContext {
    eject: Uid,
    node: NodeId,
    type_name: &'static str,
    kernel: WeakKernel,
    internal: InternalSender,
    metrics: Metrics,
    stop: Arc<AtomicBool>,
}

impl ProcessContext {
    /// The UID of the Eject this process belongs to.
    pub fn eject(&self) -> Uid {
        self.eject
    }

    /// Send an invocation on behalf of the owning Eject.
    pub fn invoke(&self, target: Uid, op: impl Into<OpName>, arg: Value) -> PendingReply {
        match self.kernel.upgrade() {
            Some(kernel) => kernel.invoke_from(self.node, target, op.into(), arg),
            None => PendingReply::ready(Err(EdenError::KernelShutdown)),
        }
    }

    /// Send an invocation with explicit [`InvokeOptions`] (deadline, retry
    /// policy, route cache, fault immunity).
    pub fn invoke_with(
        &self,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
        opts: InvokeOptions<'_>,
    ) -> PendingReply {
        match self.kernel.upgrade() {
            Some(kernel) => kernel.invoke_with_from(self.node, target, op.into(), arg, opts),
            None => PendingReply::ready(Err(EdenError::KernelShutdown)),
        }
    }

    /// Deprecated synchronous shim; exactly `invoke(..).wait()`.
    #[cfg(feature = "legacy-shims")]
    #[deprecated(since = "0.3.0", note = "use `invoke(..).wait()`")]
    pub fn invoke_sync(&self, target: Uid, op: impl Into<OpName>, arg: Value) -> Result<Value> {
        self.invoke(target, op, arg).wait()
    }

    /// As [`invoke`](Self::invoke), but through a caller-owned
    /// [`RouteCache`]: repeat invocations of the same target skip the
    /// kernel registry. This is the hot path for stream connections, which
    /// invoke one upstream Eject thousands of times.
    pub fn invoke_routed(
        &self,
        cache: &mut RouteCache,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
    ) -> PendingReply {
        match self.kernel.upgrade() {
            Some(kernel) => {
                kernel.invoke_cached(self.node, cache, target, op.into(), arg, true, false, None)
            }
            None => PendingReply::ready(Err(EdenError::KernelShutdown)),
        }
    }

    /// Write `representation` to stable storage as the owning Eject's
    /// passive representation. Worker-driven Ejects (pumps) use this to
    /// record stream progress from the worker itself, so a crash between
    /// pump steps resumes from the last acknowledged position.
    pub fn checkpoint(&self, representation: &Value) -> Result<()> {
        let kernel = self.kernel.upgrade().ok_or(EdenError::KernelShutdown)?;
        kernel.store_checkpoint(self.eject, self.type_name, wire::encode(representation).into())?;
        self.metrics.record_checkpoint();
        Ok(())
    }

    /// Deprecated synchronous shim; exactly `invoke(..).wait_timeout(d)`.
    #[cfg(feature = "legacy-shims")]
    #[deprecated(since = "0.3.0", note = "use `invoke(..).wait_timeout(deadline)`")]
    pub fn invoke_sync_timeout(
        &self,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
        deadline: Duration,
    ) -> Result<Value> {
        self.invoke(target, op, arg).wait_timeout(deadline)
    }

    /// Post an internal event to the owning Eject's coordinator.
    pub fn post_internal(&self, event: Value) -> Result<()> {
        self.internal.send(event)
    }

    /// Wait for a reply, but give up promptly if the Eject starts stopping.
    ///
    /// Long-running workers must use this (or poll
    /// [`should_stop`](Self::should_stop) themselves) so that deactivation
    /// and shutdown do not stall behind a reply that will never come.
    pub fn wait_or_stop(&self, mut pending: PendingReply) -> Result<Value> {
        let poll = Duration::from_millis(25);
        let mut waited = Duration::ZERO;
        loop {
            if let Some(result) = pending.poll_timeout(poll) {
                return result;
            }
            if self.should_stop() {
                return Err(EdenError::KernelShutdown);
            }
            waited += poll;
            if waited >= DEFAULT_REPLY_TIMEOUT {
                return Err(EdenError::Timeout);
            }
        }
    }

    /// True once the Eject is stopping; long-running workers must exit.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The default reply deadline, exposed for workers that implement their
    /// own wait loops.
    pub fn default_timeout(&self) -> Duration {
        DEFAULT_REPLY_TIMEOUT
    }
}
