//! The density plane: an N-worker scheduler for parked-mailbox Ejects.
//!
//! Thread-per-Eject prices an idle Eject at a kernel thread (stack pages,
//! a task struct, a scheduler slot) — a few thousand resident streams per
//! box. This module replaces the coordinator *thread* with a coordinator
//! *state machine*: an idle Eject is just its behaviour box parked on its
//! mailbox's parking bit, costing zero threads. Delivery flips the bit
//! (`PARKED -> QUEUED`, see [`crate::mailbox`]) and lands the task on a
//! sharded run queue; a fixed pool of workers resumes tasks, each resume
//! bounded by a **fairness budget** of envelopes so one hot pipeline
//! cannot starve a million passive streams; idle workers **steal** from
//! other shards before sleeping.
//!
//! # Blocking compensation
//!
//! Eden behaviours are allowed to block mid-dispatch — a lazy filter
//! waits on its upstream reply, a bounded mailbox parks its sender, a
//! retry sleeps its backoff. On a cooperative pool those waits would eat
//! workers and deadlock once the pool is exhausted. Every such rendezvous
//! is therefore wrapped in [`blocking`]: when a *worker* thread enters a
//! blocking section the pool notes one worker lost and spawns a spare if
//! runnable capacity fell below target; when it exits, surplus spares
//! retire at the next idle moment. The worst case (every Eject blocked at
//! once) degenerates to thread-per-*blocked*-Eject — exactly the old
//! model — while the common case (parked Ejects, non-blocking handlers)
//! costs `workers` threads total.
//!
//! The scheduler is deliberately kernel-agnostic: tasks hold a
//! [`WeakKernel`] and workers hold only the scheduler, so a dropped
//! kernel tears down through the normal shutdown path with no reference
//! cycles.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_core::span::SpanContext;
use eden_core::Uid;
use parking_lot::{Condvar, Mutex};

use crate::behavior::EjectBehavior;
use crate::context::EjectContext;
use crate::kernel::WeakKernel;
use crate::mailbox::{park, MailboxCore};
use crate::runtime::{dispatch, Envelope};

/// How long an idle worker sleeps between run-queue scans. A push from a
/// racing sender can slip between a worker's last scan and its wait (the
/// queued-task counter closes most of that window, not all of it), so
/// this also bounds the stale-wakeup latency.
const IDLE_WAIT: Duration = Duration::from_millis(10);

/// Hard ceiling on pool size, counting spares the monitor adds for
/// stalled workers. At the ceiling the pool degrades to thread-per-
/// blocked-Eject — the seed's costs, never worse.
const MAX_WORKERS: usize = 512;

/// How often the stall monitor samples pickup progress. Two stalled
/// ticks spawn a spare, so this bounds the detection latency for a
/// rendezvous the kernel cannot see.
const MONITOR_TICK: Duration = Duration::from_millis(1);

/// Tuning knobs for the scheduler execution mode, carried in
/// [`ExecMode::Scheduler`](crate::ExecMode) and settable through
/// [`KernelBuilder::scheduler`](crate::KernelBuilder::scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Target worker-pool size. Blocking sections may transiently grow
    /// the pool past this (see the module docs); it never shrinks below.
    /// Defaults to the machine's available parallelism, floored at 2 so
    /// a single-core box still overlaps a blocked handler with progress.
    pub workers: usize,
    /// Number of run-queue shards (rounded up to a power of two).
    /// Defaults to the worker count.
    pub run_queue_shards: usize,
    /// Envelopes one task may drain per resume before it is re-enqueued
    /// behind whatever else is runnable.
    pub fairness_budget: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        SchedulerConfig {
            workers,
            run_queue_shards: workers,
            fairness_budget: 64,
        }
    }
}

impl SchedulerConfig {
    fn normalized(mut self) -> SchedulerConfig {
        self.workers = self.workers.max(1);
        self.run_queue_shards = self.run_queue_shards.max(1).next_power_of_two();
        self.fairness_budget = self.fairness_budget.max(1);
        self
    }
}

/// Scheduler gauges and counters, embedded in
/// [`KernelSnapshot`](crate::KernelSnapshot). All zero in `threads` mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedSnapshot {
    /// Live scheduler tasks (every active Eject, parked or not).
    pub resident_ejects: u64,
    /// Tasks currently parked on their mailbox (no thread, no queue slot).
    pub parked_ejects: u64,
    /// Tasks a worker picked from a shard other than its own.
    pub sched_steals: u64,
    /// Current worker-pool size (target plus live spares).
    pub workers: u64,
    /// Workers currently inside a blocking section.
    pub workers_blocked: u64,
}

/// The coordinator state of one scheduler-mode Eject: its behaviour box,
/// mailbox, and identity. Kept alive by the registry slot; run queues
/// hold it only while it is `QUEUED`.
pub(crate) struct Task {
    core: Arc<MailboxCore>,
    ctx: Arc<EjectContext>,
    kernel: WeakKernel,
    incarnation: u64,
    /// The behaviour and resume bookkeeping, exclusively owned by
    /// whichever worker is running the task. Locked only for the take at
    /// resume start and the put-back at park (`task-body` is a leaf).
    body: Mutex<Option<TaskBody>>,
    /// Run-queue enqueue time, nanoseconds since the scheduler epoch.
    /// Feeds the obs plane's `sched_wait` stage.
    rq_enq_ns: AtomicU64,
    /// The death latch `Kernel::crash` waits on.
    died: Mutex<bool>,
    died_cv: Condvar,
}

struct TaskBody {
    behavior: Box<dyn EjectBehavior>,
    /// `activate` runs on the first resume, not at spawn: the spawner's
    /// shard lock must not be held across user code.
    activated: bool,
    /// The ambient span at spawn time, re-entered for every resume (a
    /// coordinator thread inherited it once at thread start).
    ambient: Option<SpanContext>,
}

impl Task {
    pub(crate) fn uid(&self) -> Uid {
        self.ctx.uid
    }

    fn take_body(&self) -> Option<TaskBody> {
        self.body.lock().take()
    }

    fn put_body(&self, body: TaskBody) {
        *self.body.lock() = Some(body);
    }

    fn mark_died(&self) {
        *self.died.lock() = true;
        self.died_cv.notify_all();
    }

    /// Block until this task's death latch trips. Must not be called from
    /// the worker currently running the task (see [`current_task`]).
    pub(crate) fn wait_dead(&self) {
        blocking(|| {
            let mut died = self.died.lock();
            while !*died {
                let _ = self.died_cv.wait_for(&mut died, Duration::from_millis(50));
            }
        });
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("uid", &self.ctx.uid)
            .field("incarnation", &self.incarnation)
            .finish_non_exhaustive()
    }
}

/// Why a resume ended.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum Resume {
    /// Parked or re-enqueued; the task lives on.
    Yield,
    /// The task exited; `true` means it crashed.
    Dead(bool),
}

struct RunShard {
    runq: Mutex<VecDeque<Arc<Task>>>,
}

impl RunShard {
    fn push(&self, task: Arc<Task>) {
        self.runq.lock().push_back(task);
    }

    fn pop(&self) -> Option<Arc<Task>> {
        self.runq.lock().pop_front()
    }
}

thread_local! {
    /// The scheduler this thread serves, plus the blocking-section depth
    /// (only the outermost section counts a worker as lost).
    static WORKER: std::cell::RefCell<Option<(Arc<Scheduler>, u32)>> =
        const { std::cell::RefCell::new(None) };
    /// The task this worker is currently resuming. Lets crash/shutdown
    /// recognise "waiting on myself" and skip the self-deadlock.
    static CURRENT_TASK: std::cell::Cell<Option<Uid>> = const { std::cell::Cell::new(None) };
}

/// The UID of the task the calling thread is currently resuming, if the
/// calling thread is a scheduler worker mid-resume.
pub(crate) fn current_task() -> Option<Uid> {
    CURRENT_TASK.with(|c| c.get())
}

/// Run `f` as an explicit yield point: a rendezvous that may block the
/// calling thread for real (reply waits, backoff sleeps, bounded-mailbox
/// parks, death latches). On a non-worker thread this is a plain call; on
/// a worker it keeps the pool's runnable capacity at target by spawning a
/// spare for the duration (outermost section only).
pub(crate) fn blocking<R>(f: impl FnOnce() -> R) -> R {
    let sched = WORKER.with(|w| {
        let mut slot = w.borrow_mut();
        match slot.as_mut() {
            Some((sched, depth)) => {
                *depth += 1;
                (*depth == 1).then(|| Arc::clone(sched))
            }
            None => None,
        }
    });
    if let Some(sched) = &sched {
        sched.note_block_enter();
    }
    let out = f();
    if let Some(sched) = &sched {
        sched.note_block_exit();
    }
    WORKER.with(|w| {
        if let Some((_, depth)) = w.borrow_mut().as_mut() {
            *depth -= 1;
        }
    });
    out
}

/// The worker pool and its sharded run queues. One per scheduler-mode
/// kernel, shared with every worker thread.
pub(crate) struct Scheduler {
    shards: Box<[RunShard]>,
    shard_mask: usize,
    target_workers: usize,
    fairness_budget: usize,
    epoch: Instant,
    /// Round-robin cursor for push placement.
    next_shard: AtomicUsize,
    /// Tasks currently sitting in some run queue (approximate by a hair
    /// during a push, exact at rest) — the idle workers' cheap "anything
    /// to do?" check.
    queued_tasks: AtomicUsize,
    live_workers: AtomicUsize,
    blocked_workers: AtomicUsize,
    idle_workers: AtomicUsize,
    tasks_alive: AtomicUsize,
    parked: AtomicU64,
    steals: AtomicU64,
    /// Bumped on every task pickup; the monitor reads it to tell "workers
    /// are busy" from "workers are stuck in a rendezvous the kernel cannot
    /// see" (a raw channel send or sleep inside a behaviour).
    progress: AtomicU64,
    worker_seq: AtomicUsize,
    stopping: AtomicBool,
    /// Idle workers sleep here; `idle_mx` protects only the sleep itself.
    idle_mx: Mutex<()>,
    idle_cv: Condvar,
    /// `wait_all_dead` sleeps here; signalled on every task death.
    death_mx: Mutex<()>,
    death_cv: Condvar,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    pub(crate) fn new(config: SchedulerConfig) -> Arc<Scheduler> {
        let config = config.normalized();
        let shards: Box<[RunShard]> = (0..config.run_queue_shards)
            .map(|_| RunShard {
                runq: Mutex::new(VecDeque::new()),
            })
            .collect();
        let sched = Arc::new(Scheduler {
            shard_mask: shards.len() - 1,
            shards,
            target_workers: config.workers,
            fairness_budget: config.fairness_budget,
            epoch: Instant::now(),
            next_shard: AtomicUsize::new(0),
            queued_tasks: AtomicUsize::new(0),
            live_workers: AtomicUsize::new(0),
            blocked_workers: AtomicUsize::new(0),
            idle_workers: AtomicUsize::new(0),
            tasks_alive: AtomicUsize::new(0),
            parked: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            worker_seq: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            idle_mx: Mutex::new(()),
            idle_cv: Condvar::default(),
            death_mx: Mutex::new(()),
            death_cv: Condvar::default(),
            threads: Mutex::new(Vec::new()),
        });
        for _ in 0..config.workers {
            sched.spawn_worker();
        }
        let mon = Arc::clone(&sched);
        if let Ok(handle) = std::thread::Builder::new()
            .name("eden-sched-mon".into())
            .spawn(move || monitor_main(mon))
        {
            sched.threads.lock().push(handle);
        }
        sched
    }

    pub(crate) fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            resident_ejects: self.tasks_alive.load(Ordering::Relaxed) as u64,
            parked_ejects: self.parked.load(Ordering::Relaxed),
            sched_steals: self.steals.load(Ordering::Relaxed),
            workers: self.live_workers.load(Ordering::Relaxed) as u64,
            workers_blocked: self.blocked_workers.load(Ordering::Relaxed) as u64,
        }
    }

    /// Create the task for a freshly spawned (or reactivated) Eject and
    /// queue its first resume, which runs `activate`. Called with the
    /// registry shard lock held — the push is lock-ordered under it.
    pub(crate) fn spawn_task(
        self: &Arc<Scheduler>,
        core: Arc<MailboxCore>,
        ctx: Arc<EjectContext>,
        kernel: WeakKernel,
        incarnation: u64,
        behavior: Box<dyn EjectBehavior>,
        ambient: Option<SpanContext>,
    ) -> Arc<Task> {
        let task = Arc::new(Task {
            core: Arc::clone(&core),
            ctx,
            kernel,
            incarnation,
            body: Mutex::new(Some(TaskBody {
                behavior,
                activated: false,
                ambient,
            })),
            rq_enq_ns: AtomicU64::new(0),
            died: Mutex::new(false),
            died_cv: Condvar::default(),
        });
        core.attach_task(self, &task);
        self.tasks_alive.fetch_add(1, Ordering::AcqRel);
        core.park_bit().store(park::QUEUED, Ordering::Release);
        self.push_task(Arc::clone(&task));
        task
    }

    /// Queue a task whose parking bit just flipped `PARKED -> QUEUED`
    /// (the mailbox wake path).
    pub(crate) fn enqueue(self: &Arc<Scheduler>, task: Arc<Task>) {
        self.parked.fetch_sub(1, Ordering::AcqRel);
        self.push_task(task);
    }

    // Worst-case caller: `spawn_task` runs under the registry shard
    // being written, so every lock below nests under it.
    // eden-lint: holds(registry-shard)
    fn push_task(&self, task: Arc<Task>) {
        task.rq_enq_ns
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.queued_tasks.fetch_add(1, Ordering::AcqRel);
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) & self.shard_mask;
        self.shards[shard].push(task);
        if self.idle_workers.load(Ordering::Acquire) > 0 {
            // Lock, then notify: an idle worker re-checks `queued_tasks`
            // under `idle_mx` before sleeping, so taking the mutex here
            // means the notify cannot slip into its check-to-sleep gap.
            let _idle = self.idle_mx.lock();
            self.idle_cv.notify_one();
        }
    }

    /// Pop the next runnable task: own shard first, then steal.
    fn next_task(&self, worker: usize) -> Option<Arc<Task>> {
        let own = worker & self.shard_mask;
        if let Some(task) = self.shards[own].pop() {
            self.queued_tasks.fetch_sub(1, Ordering::AcqRel);
            return Some(task);
        }
        for step in 1..self.shards.len() {
            if let Some(task) = self.shards[(own + step) & self.shard_mask].pop() {
                self.queued_tasks.fetch_sub(1, Ordering::AcqRel);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn spawn_worker(self: &Arc<Scheduler>) {
        let idx = self.worker_seq.fetch_add(1, Ordering::Relaxed);
        self.live_workers.fetch_add(1, Ordering::AcqRel);
        let sched = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name(format!("eden-sched-{idx}"))
            .spawn(move || worker_main(sched, idx));
        match spawned {
            Ok(handle) => self.threads.lock().push(handle),
            Err(_) => {
                // Out of threads: run degraded rather than dead. The
                // remaining workers still drain every queue.
                self.live_workers.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    fn note_block_enter(self: &Arc<Scheduler>) {
        let blocked = self.blocked_workers.fetch_add(1, Ordering::AcqRel) + 1;
        let live = self.live_workers.load(Ordering::Acquire);
        if live.saturating_sub(blocked) < self.target_workers
            && !self.stopping.load(Ordering::Acquire)
        {
            self.spawn_worker();
        }
    }

    fn note_block_exit(&self) {
        self.blocked_workers.fetch_sub(1, Ordering::AcqRel);
    }

    /// Resume one task: drain up to the fairness budget, then park or
    /// requeue; run the death path if an exit envelope (or a panic in the
    /// behaviour) ends it.
    fn run_task(&self, task: Arc<Task>) {
        self.progress.fetch_add(1, Ordering::Relaxed);
        let bit = task.core.park_bit();
        bit.store(park::RUNNING, Ordering::Release);
        CURRENT_TASK.with(|c| c.set(Some(task.uid())));
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.resume(&task)));
        CURRENT_TASK.with(|c| c.set(None));
        match outcome {
            Ok(Resume::Yield) => {}
            Ok(Resume::Dead(crashed)) => self.reap(&task, crashed),
            Err(_) => {
                // The behaviour panicked mid-dispatch. Thread-per-Eject
                // lost the coordinator thread here; the pool must survive
                // instead, so the task dies as a crash and the worker
                // lives on. The behaviour box was dropped by the unwind,
                // releasing any parked replies.
                task.ctx.begin_stop();
                self.reap(&task, true);
            }
        }
    }

    fn resume(&self, task: &Arc<Task>) -> Resume {
        let Some(mut body) = task.take_body() else {
            // Only reachable if a stale queue entry outlived the death
            // path; nothing to run.
            return Resume::Yield;
        };
        let _span = body.ambient.map(|ctx| eden_core::span::enter(Some(ctx)));
        let pickup = Instant::now();
        let rq_enq = self.epoch + Duration::from_nanos(task.rq_enq_ns.load(Ordering::Relaxed));
        if !body.activated {
            body.activated = true;
            body.behavior.activate(&task.ctx);
        }
        let bit = task.core.park_bit();
        let mut budget = self.fairness_budget;
        loop {
            if task.ctx.deactivate_requested() {
                return self.die(task, body, false);
            }
            if budget == 0 {
                // Budget exhausted: go to the back of the line so other
                // runnable tasks (a million parked streams' worth) get a
                // worker before this pipeline's next batch.
                bit.store(park::QUEUED, Ordering::Release);
                task.put_body(body);
                self.push_task(Arc::clone(task));
                return Resume::Yield;
            }
            match task.core.pop() {
                Some(Envelope::Invocation(inv, mut reply)) => {
                    budget -= 1;
                    let _guard = reply.begin_service_at(Some((rq_enq, pickup)));
                    dispatch(body.behavior.as_mut(), &task.ctx, &task.kernel, inv, reply);
                }
                Some(Envelope::Internal(event)) => {
                    budget -= 1;
                    body.behavior.internal(&task.ctx, event);
                }
                Some(Envelope::Crash) => return self.die(task, body, true),
                Some(Envelope::Shutdown) => return self.die(task, body, false),
                None => {
                    // Publish the body (and the parked gauge) BEFORE the
                    // CAS advertises PARKED: the instant the CAS succeeds a
                    // sender may re-enqueue this task and another worker
                    // resume it, and that worker must find the body in
                    // place — parking after publishing would let the wake
                    // race ahead of the state machine and be lost.
                    task.put_body(body);
                    self.parked.fetch_add(1, Ordering::AcqRel);
                    match bit.compare_exchange(
                        park::RUNNING,
                        park::PARKED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return Resume::Yield,
                        Err(_) => {
                            // A sender marked us dirty between the empty
                            // pop and the park attempt; reclaim the body
                            // and keep draining.
                            self.parked.fetch_sub(1, Ordering::AcqRel);
                            bit.store(park::RUNNING, Ordering::Release);
                            body = match task.take_body() {
                                Some(reclaimed) => reclaimed,
                                // Unreachable: the task is in no run queue
                                // while RUNNING, so nobody else takes it.
                                None => return Resume::Yield,
                            };
                        }
                    }
                }
            }
        }
    }

    /// The in-resume half of the death path: mirror of the coordinator
    /// thread's exit tail, up to dropping the behaviour.
    fn die(&self, task: &Arc<Task>, body: TaskBody, crashed: bool) -> Resume {
        let TaskBody { mut behavior, .. } = body;
        behavior.deactivating(&task.ctx);
        task.ctx.begin_stop();
        // Dropping the behaviour releases any parked ReplyHandles,
        // unblocking whoever waits on this Eject.
        drop(behavior);
        Resume::Dead(crashed)
    }

    /// The post-behaviour half of the death path: close the mailbox (so
    /// queued invocations fail fast and later sends bounce), reap worker
    /// processes, and tell the kernel.
    fn reap(&self, task: &Arc<Task>, crashed: bool) {
        task.core.park_bit().store(park::DEAD, Ordering::Release);
        drop(task.core.close());
        // The Eject's worker threads may need other Ejects (hence this
        // pool) to make progress before they exit.
        blocking(|| task.ctx.join_workers());
        if let Some(kernel) = task.kernel.upgrade() {
            kernel.on_eject_exit(task.uid(), task.incarnation, crashed);
        }
        task.mark_died();
        self.tasks_alive.fetch_sub(1, Ordering::AcqRel);
        let _death = self.death_mx.lock();
        self.death_cv.notify_all();
    }

    /// Block until every task has died, excluding (when called from a
    /// worker mid-resume) the task this thread is currently running —
    /// which cannot die before this call returns.
    pub(crate) fn wait_all_dead(&self) {
        let allow = usize::from(current_task().is_some());
        blocking(|| {
            let mut death = self.death_mx.lock();
            while self.tasks_alive.load(Ordering::Acquire) > allow {
                let _ = self
                    .death_cv
                    .wait_for(&mut death, Duration::from_millis(50));
            }
        });
    }

    /// Stop the pool: workers drain what is queued, then exit. Idempotent.
    /// Never joins the calling thread (shutdown can originate on a
    /// worker).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::Release);
        {
            let _idle = self.idle_mx.lock();
            self.idle_cv.notify_all();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.threads.lock());
        let current = std::thread::current().id();
        for handle in handles {
            if handle.thread().id() != current {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("target_workers", &self.target_workers)
            .field("shards", &self.shards.len())
            .field("snapshot", &self.snapshot())
            .finish_non_exhaustive()
    }
}

fn worker_main(sched: Arc<Scheduler>, idx: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&sched), 0)));
    loop {
        if let Some(task) = sched.next_task(idx) {
            sched.run_task(task);
            continue;
        }
        if sched.stopping.load(Ordering::Acquire) {
            break;
        }
        // A spare beyond target with nothing to do retires; the sub-check
        // races other retirees at worst into a transient under-target,
        // which the next blocking section corrects.
        let live = sched.live_workers.load(Ordering::Acquire);
        let blocked = sched.blocked_workers.load(Ordering::Acquire);
        if live.saturating_sub(blocked) > sched.target_workers {
            break;
        }
        sched.idle_workers.fetch_add(1, Ordering::AcqRel);
        {
            let mut idle = sched.idle_mx.lock();
            if sched.queued_tasks.load(Ordering::Acquire) == 0
                && !sched.stopping.load(Ordering::Acquire)
            {
                let _ = sched.idle_cv.wait_for(&mut idle, IDLE_WAIT);
            }
        }
        sched.idle_workers.fetch_sub(1, Ordering::AcqRel);
    }
    WORKER.with(|w| *w.borrow_mut() = None);
    sched.live_workers.fetch_sub(1, Ordering::AcqRel);
}

/// The stall monitor. [`blocking`] compensates for every rendezvous the
/// kernel controls, but a behaviour may also block a worker on a
/// primitive the kernel cannot see — a bounded channel send to one of
/// its own worker processes, a bare sleep. This thread samples the
/// pickup counter: runnable tasks plus two ticks with no pickup and no
/// idle worker means the whole pool is stuck in such a rendezvous, so
/// it spawns a spare (which retires itself once the pool is over
/// target again). The degenerate case — every resident Eject blocked at
/// once — converges to thread-per-Eject, the seed's behaviour.
fn monitor_main(sched: Arc<Scheduler>) {
    let mut last_progress = u64::MAX;
    let mut stalled_ticks = 0u32;
    let mut tick = MONITOR_TICK;
    while !sched.stopping.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        let progress = sched.progress.load(Ordering::Relaxed);
        let queued = sched.queued_tasks.load(Ordering::Acquire);
        // An idle pool needs no 1 kHz heartbeat; back off until work shows.
        tick = if queued == 0 { 5 * MONITOR_TICK } else { MONITOR_TICK };
        let idle = sched.idle_workers.load(Ordering::Acquire);
        if queued > 0 && idle == 0 && progress == last_progress {
            stalled_ticks += 1;
            if stalled_ticks >= 2
                && sched.live_workers.load(Ordering::Acquire) < MAX_WORKERS
                && !sched.stopping.load(Ordering::Acquire)
            {
                sched.spawn_worker();
                stalled_ticks = 0;
            }
        } else {
            stalled_ticks = 0;
        }
        last_progress = progress;
    }
}
