//! The density plane: an N-worker scheduler for parked-mailbox Ejects.
//!
//! Thread-per-Eject prices an idle Eject at a kernel thread (stack pages,
//! a task struct, a scheduler slot) — a few thousand resident streams per
//! box. This module replaces the coordinator *thread* with a coordinator
//! *state machine*: an idle Eject is just its behaviour box parked on its
//! mailbox's parking bit, costing zero threads. Delivery flips the bit
//! (`PARKED -> QUEUED`, see [`crate::mailbox`]) and lands the task on the
//! dispatch fast path below; a pool of workers resumes tasks, each resume
//! bounded by a **fairness budget** of envelopes so one hot pipeline
//! cannot starve a million passive streams.
//!
//! # Dispatch fast path
//!
//! Delivery used to land every wake on a mutexed run-queue shard chosen
//! by a shared round-robin cursor and wake workers through one idle
//! condvar — three globally contended cache lines per delivery, which is
//! why goodput *fell* as workers were added. The hot path is now
//! lock-free end to end:
//!
//! * **Per-worker Chase–Lev deques** ([`crate::deque`]): a worker pushes
//!   the wakes it produces onto its own deque's bottom and pops them back
//!   LIFO; idle workers steal from the top with a CAS, claiming half the
//!   victim's backlog per steal session (one proven CAS per element —
//!   see the deque docs for why a range CAS would be unsound).
//! * **A one-task LIFO slot** in front of each deque: the mailbox the
//!   running task just wakened holds the hottest cache lines in the
//!   system, so it runs next on the same worker. [`SchedulerConfig::
//!   lifo_budget`] bounds consecutive slot pickups while colder work
//!   waits, so the slot cannot starve the deque or the injector; slot
//!   pushes wake no sibling (the owner itself runs the task next).
//! * **A sharded FIFO injector** for everything else: non-worker
//!   producers (spawns, deliveries from user threads), fairness-budget
//!   requeues, and deque overflow. Producers pick a shard by a cheap
//!   per-thread index (one shared `fetch_add` per thread *lifetime*, not
//!   per push); workers drain a batch per lock round and also poll the
//!   injector periodically mid-stream so external producers are never
//!   starved behind an endless local chain.
//! * **Per-worker sleep latches**: an idle worker yields a few rounds,
//!   then announces itself on a sleeper list and parks on its own
//!   mutex+condvar latch. A producer wakes at most one sleeper, and only
//!   after a `SeqCst` fence arbitrates the announce-vs-publish race, so
//!   a push can never slip between a sleeper's last look and its sleep.
//!
//! Hot counters (resident/parked gauges, steal and pickup counts) are
//! cache-line padded and sharded per worker or per thread, folded on
//! [`Scheduler::snapshot`], so bookkeeping never bounces one shared line
//! per delivery.
//!
//! # Blocking compensation
//!
//! Eden behaviours are allowed to block mid-dispatch — a lazy filter
//! waits on its upstream reply, a bounded mailbox parks its sender, a
//! retry sleeps its backoff. On a cooperative pool those waits would eat
//! workers and deadlock once the pool is exhausted. Every such rendezvous
//! is therefore wrapped in [`blocking`]: when a *worker* thread enters a
//! blocking section it first flushes its LIFO slot onto its deque (where
//! thieves can see it), then the pool notes one worker lost and spawns a
//! spare if runnable capacity fell below target; when it exits, surplus
//! spares retire at the next idle moment. The worst case (every Eject
//! blocked at once) degenerates to thread-per-*blocked*-Eject — exactly
//! the old model — while the common case (parked Ejects, non-blocking
//! handlers) costs `workers` threads total.
//!
//! The scheduler is deliberately kernel-agnostic: tasks hold a
//! [`WeakKernel`] and workers hold only the scheduler, so a dropped
//! kernel tears down through the normal shutdown path with no reference
//! cycles.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_core::span::SpanContext;
use eden_core::Uid;
use parking_lot::{Condvar, Mutex};

use crate::behavior::EjectBehavior;
use crate::context::EjectContext;
use crate::deque::{WorkDeque, DEQUE_CAP};
use crate::kernel::WeakKernel;
use crate::mailbox::{park, MailboxCore};
use crate::runtime::{dispatch, Envelope};

/// Backstop timeout for a parked worker. The sleep protocol hands every
/// wake to a specific latch, but the timeout bounds the damage of any
/// residual race (and lets spares notice they are surplus).
const IDLE_WAIT: Duration = Duration::from_millis(10);

/// Re-park backstop once a sleeper has confirmed the pool saturates the
/// core quota without it. Every real wake is an explicit notify, so the
/// only cost of a longer wait is the rediscovery latency of a state the
/// monitor thread already patrols; the benefit is not paying a timeout
/// wakeup per sleeper per 10ms on a saturated pool.
const SATURATED_WAIT: Duration = Duration::from_millis(100);

/// Hard ceiling on pool size, counting spares the monitor adds for
/// stalled workers. At the ceiling the pool degrades to thread-per-
/// blocked-Eject — the seed's costs, never worse.
const MAX_WORKERS: usize = 512;

/// How often the stall monitor samples pickup progress. Two stalled
/// ticks spawn a spare, so this bounds the detection latency for a
/// rendezvous the kernel cannot see.
const MONITOR_TICK: Duration = Duration::from_millis(1);

/// Yield-to-the-OS rounds an idle worker burns before entering the sleep
/// protocol. Kept tiny: on a loaded single-core box the yield itself is
/// what hands the producer the core.
const SPIN_ROUNDS: u32 = 3;

/// Empty sleep rounds (of [`IDLE_WAIT`] each) a spare worker lingers
/// past the over-target mark before retiring. Blocking sections arrive
/// in bursts; an eager retire turns each burst into a thread spawn.
const SPARE_LINGER_ROUNDS: u32 = 3;

/// A worker checks the injector every this-many dispatch loops even when
/// its own slot/deque still has work, bounding the queue delay of
/// non-worker producers. Prime, so the poll never phase-locks with a
/// power-of-two fairness budget.
const GLOBAL_POLL_INTERVAL: u64 = 31;

/// Most tasks one injector lock round may move into the polling worker's
/// deque (beyond the one returned), amortising the lock over a burst.
const INJECT_BATCH: usize = 32;

/// Shards in a [`ShardedGauge`]. Power of two; indexed by per-thread id.
const COUNTER_SHARDS: usize = 16;

/// A LIFO-slot task older than this is considered *stranded* — its owner
/// is stuck in a rendezvous the kernel cannot see — and becomes fair
/// game for thieves. Fresh slot tasks are never stolen: ping-ponging the
/// cache-hot task to a cold core is exactly what the slot exists to
/// prevent.
const LIFO_STALE: Duration = Duration::from_millis(1);

/// Pads a hot field to its own cache-line pair (128 bytes covers x86's
/// adjacent-line prefetcher and 128-byte Apple/POWER lines), so one
/// worker's counter traffic never invalidates a neighbour's.
#[repr(align(128))]
struct CachePadded<T>(T);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's dense index, assigned on first use. Replaces the old
    /// shared `next_shard` round-robin cursor: one global `fetch_add` per
    /// thread *lifetime* instead of one per push.
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v
    })
}

/// A gauge sharded across cache-padded cells to keep `+1/-1` traffic off
/// any single line; cells are signed so a decrement may land on a
/// different cell than its increment. Folded (and clamped at zero) on
/// read.
struct ShardedGauge {
    cells: Box<[CachePadded<AtomicI64>]>,
}

impl ShardedGauge {
    fn new() -> ShardedGauge {
        ShardedGauge {
            cells: (0..COUNTER_SHARDS)
                .map(|_| CachePadded(AtomicI64::new(0)))
                .collect(),
        }
    }

    fn add(&self, delta: i64) {
        self.cells[thread_slot() & (COUNTER_SHARDS - 1)]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum::<i64>()
            .max(0) as u64
    }
}

/// One worker's private sleep latch. Splitting the old shared
/// `idle_mx`/`idle_cv` pair per worker means a producer's wake touches
/// exactly one sleeper and workers never serialize on a global mutex to
/// fall asleep.
struct Parker {
    /// Wake pending. Checked under the lock before waiting, so a notify
    /// delivered before the park is consumed, not lost.
    park_mx: Mutex<bool>,
    park_cv: Condvar,
}

impl Parker {
    fn new() -> Parker {
        Parker {
            park_mx: Mutex::new(false),
            park_cv: Condvar::default(),
        }
    }

    /// Returns whether a notify (as opposed to the timeout) ended the
    /// park — the caller owes the pool a `wakes_pending` decrement for a
    /// consumed notify, because the producer that sent it counted it.
    fn park(&self, timeout: Duration) -> bool {
        let mut notified = self.park_mx.lock();
        if !*notified {
            // eden-lint: nonblocking(the pool's own idle wait — a sleeping worker has no task)
            let _ = self.park_cv.wait_for(&mut notified, timeout);
        }
        std::mem::take(&mut *notified)
    }

    /// Consume a pending notify without parking (worker-exit tail): a
    /// notify that raced our last timeout would otherwise strand its
    /// `wakes_pending` count and gate every future wake.
    fn take_notified(&self) -> bool {
        std::mem::take(&mut *self.park_mx.lock())
    }

    // Worst-case caller: `maybe_wake` runs under the registry shard
    // (spawn path) or a mailbox ring (backpressure overflow spill), so
    // the latch lock nests under both.
    // eden-lint: holds(registry-shard, mailbox-queue)
    fn notify(&self) {
        *self.park_mx.lock() = true;
        self.park_cv.notify_one();
    }
}

/// The one-task LIFO slot in front of a worker's deque. A plain atomic
/// pointer: the owner swaps tasks in and out; thieves may swap it empty
/// as a last resort when the task is stranded (owner stuck in an
/// invisible rendezvous).
struct LifoSlot {
    task: AtomicPtr<Task>,
}

impl LifoSlot {
    fn new() -> LifoSlot {
        LifoSlot {
            task: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn is_empty_hint(&self) -> bool {
        self.task.load(Ordering::Relaxed).is_null()
    }

    /// Install `task`, handing back whatever it displaced.
    fn put(&self, task: Arc<Task>) -> Option<Arc<Task>> {
        let fresh = Arc::into_raw(task).cast_mut();
        let old = self.task.swap(fresh, Ordering::AcqRel);
        (!old.is_null()).then(|| unsafe { Arc::from_raw(old) })
    }

    fn take(&self) -> Option<Arc<Task>> {
        // Cheap shared-load fast path so steal scans over empty slots
        // never take the line exclusive.
        if self.task.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let old = self.task.swap(std::ptr::null_mut(), Ordering::AcqRel);
        (!old.is_null()).then(|| unsafe { Arc::from_raw(old) })
    }
}

impl Drop for LifoSlot {
    fn drop(&mut self) {
        let ptr = *self.task.get_mut();
        if !ptr.is_null() {
            drop(unsafe { Arc::from_raw(ptr) });
        }
    }
}

/// One shard of the FIFO overflow injector. The only mutex left on the
/// dispatch path, and only for producers without a worker slot (spawns,
/// user-thread deliveries), fairness requeues, and deque overflow.
struct InjectShard {
    injq: Mutex<VecDeque<Arc<Task>>>,
    /// Relaxed mirror of the queue length so idle scans skip empty
    /// shards without locking.
    backlog: AtomicUsize,
}

impl InjectShard {
    // Worst-case callers: the spawn path runs under the registry shard
    // being written; a deque-overflow spill inside a bounded-send
    // backpressure wait runs under the mailbox ring.
    // eden-lint: holds(registry-shard, mailbox-queue)
    fn push(&self, task: Arc<Task>) {
        let mut q = self.injq.lock();
        q.push_back(task);
        self.backlog.store(q.len(), Ordering::Release);
    }

    /// Pop one task for the caller and move up to half of the remainder
    /// (capped at [`INJECT_BATCH`]) into `dest` — the calling worker's
    /// own deque — under the same lock hold, so a burst of spawns costs
    /// one lock round per batch rather than per task.
    fn pop_into(&self, dest: Option<&WorkDeque<Task>>) -> Option<Arc<Task>> {
        let mut q = self.injq.lock();
        let Some(first) = q.pop_front() else {
            self.backlog.store(0, Ordering::Release);
            return None;
        };
        if let Some(deque) = dest {
            let extra = (q.len() / 2).min(INJECT_BATCH);
            for _ in 0..extra {
                let Some(task) = q.pop_front() else { break };
                if let Err(task) = deque.push(task) {
                    q.push_front(task);
                    break;
                }
            }
        }
        self.backlog.store(q.len(), Ordering::Release);
        Some(first)
    }
}

/// One worker's share of the dispatch state. Aligned so neighbouring
/// workers' hot fields never share a cache line.
#[repr(align(128))]
struct WorkerSlot {
    deque: WorkDeque<Task>,
    lifo: LifoSlot,
    /// Epoch-nanoseconds of the last `lifo.put`, the staleness hint that
    /// gates slot stealing (see [`LIFO_STALE`]).
    lifo_since_ns: AtomicU64,
    parker: Arc<Parker>,
    steals: AtomicU64,
    /// Task pickups by this worker; folded into the stall monitor's
    /// progress signal.
    progress: AtomicU64,
}

/// Tuning knobs for the scheduler execution mode, carried in
/// [`ExecMode::Scheduler`](crate::ExecMode) and settable through
/// [`KernelBuilder::scheduler`](crate::KernelBuilder::scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Target worker-pool size. Blocking sections may transiently grow
    /// the pool past this (see the module docs); it never shrinks below.
    /// Defaults to the machine's available parallelism, floored at 2 so
    /// a single-core box still overlaps a blocked handler with progress.
    pub workers: usize,
    /// Number of injector shards (rounded up to a power of two).
    /// Defaults to the worker count. The name is a fossil from the
    /// mutexed run-queue design this knob used to size.
    pub run_queue_shards: usize,
    /// Envelopes one task may drain per resume before it is re-enqueued
    /// behind whatever else is runnable.
    pub fairness_budget: usize,
    /// Consecutive LIFO-slot pickups one worker may take while colder
    /// work waits in its deque or the injector, before the slot must
    /// yield a turn. Irrelevant when nothing else is runnable locally.
    pub lifo_budget: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        SchedulerConfig {
            workers,
            run_queue_shards: workers,
            fairness_budget: 64,
            lifo_budget: 16,
        }
    }
}

impl SchedulerConfig {
    fn normalized(mut self) -> SchedulerConfig {
        self.workers = self.workers.max(1);
        self.run_queue_shards = self.run_queue_shards.max(1).next_power_of_two();
        self.fairness_budget = self.fairness_budget.max(1);
        self.lifo_budget = self.lifo_budget.max(1);
        self
    }
}

/// Scheduler gauges and counters, embedded in
/// [`KernelSnapshot`](crate::KernelSnapshot). All zero in `threads` mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedSnapshot {
    /// Live scheduler tasks (every active Eject, parked or not).
    pub resident_ejects: u64,
    /// Tasks currently parked on their mailbox (no thread, no queue slot).
    pub parked_ejects: u64,
    /// Tasks a worker claimed from another worker's deque or LIFO slot.
    pub sched_steals: u64,
    /// Current worker-pool size (target plus live spares).
    pub workers: u64,
    /// Workers currently inside a blocking section.
    pub workers_blocked: u64,
    /// Workers registered in the sleep protocol (parked or re-checking).
    pub workers_idle: u64,
    /// Producer wake notifies counted but not yet consumed by a woken
    /// worker. Transiently 1 in steady state; stuck > 0 with no idle
    /// worker en route would mean a leaked token (the wake gate's
    /// failure mode), so this gauge is the one to watch in a stall.
    pub wake_tokens: u64,
    /// Tasks visible to dispatch right now: injector backlog plus deque
    /// occupancy plus occupied LIFO slots. A hint (relaxed reads), exact
    /// at rest.
    pub queued_tasks: u64,
}

/// The coordinator state of one scheduler-mode Eject: its behaviour box,
/// mailbox, and identity. Kept alive by the registry slot; dispatch
/// queues hold it only while it is `QUEUED`.
pub(crate) struct Task {
    core: Arc<MailboxCore>,
    ctx: Arc<EjectContext>,
    kernel: WeakKernel,
    incarnation: u64,
    /// The behaviour and resume bookkeeping, exclusively owned by
    /// whichever worker is running the task. Locked only for the take at
    /// resume start and the put-back at park (`task-body` is a leaf).
    body: Mutex<Option<TaskBody>>,
    /// Dispatch enqueue time, nanoseconds since the scheduler epoch.
    /// Feeds the obs plane's `sched_wait` stage.
    rq_enq_ns: AtomicU64,
    /// The death latch `Kernel::crash` waits on.
    died: Mutex<bool>,
    died_cv: Condvar,
}

struct TaskBody {
    behavior: Box<dyn EjectBehavior>,
    /// `activate` runs on the first resume, not at spawn: the spawner's
    /// shard lock must not be held across user code.
    activated: bool,
    /// The ambient span at spawn time, re-entered for every resume (a
    /// coordinator thread inherited it once at thread start).
    ambient: Option<SpanContext>,
}

impl Task {
    pub(crate) fn uid(&self) -> Uid {
        self.ctx.uid
    }

    fn take_body(&self) -> Option<TaskBody> {
        self.body.lock().take()
    }

    fn put_body(&self, body: TaskBody) {
        *self.body.lock() = Some(body);
    }

    fn mark_died(&self) {
        *self.died.lock() = true;
        self.died_cv.notify_all();
    }

    /// Block until this task's death latch trips. Must not be called from
    /// the worker currently running the task (see [`current_task`]).
    pub(crate) fn wait_dead(&self) {
        blocking(|| {
            let mut died = self.died.lock();
            while !*died {
                let _ = self.died_cv.wait_for(&mut died, Duration::from_millis(50));
            }
        });
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("uid", &self.ctx.uid)
            .field("incarnation", &self.incarnation)
            .finish_non_exhaustive()
    }
}

/// Why a resume ended.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum Resume {
    /// Parked or re-enqueued; the task lives on.
    Yield,
    /// The task exited; `true` means it crashed.
    Dead(bool),
}

/// Thread-local identity of a worker: which scheduler it serves, which
/// slot (if any — spares have none), and the blocking-section depth
/// (only the outermost section counts the worker as lost).
struct WorkerTls {
    sched: Arc<Scheduler>,
    slot: Option<usize>,
    block_depth: u32,
}

thread_local! {
    static WORKER: std::cell::RefCell<Option<WorkerTls>> =
        const { std::cell::RefCell::new(None) };
    /// The task this worker is currently resuming. Lets crash/shutdown
    /// recognise "waiting on myself" and skip the self-deadlock.
    static CURRENT_TASK: Cell<Option<Uid>> = const { Cell::new(None) };
}

/// The UID of the task the calling thread is currently resuming, if the
/// calling thread is a scheduler worker mid-resume.
pub(crate) fn current_task() -> Option<Uid> {
    CURRENT_TASK.with(|c| c.get())
}

/// Run `f` as an explicit yield point: a rendezvous that may block the
/// calling thread for real (reply waits, backoff sleeps, bounded-mailbox
/// parks, death latches). On a non-worker thread this is a plain call; on
/// a worker it first flushes the worker's LIFO slot to stealable ground,
/// then keeps the pool's runnable capacity at target by spawning a spare
/// for the duration (outermost section only).
///
/// Public so every crate that may run on a pool worker (eden-transput's
/// stream stages in particular) can wrap its genuinely-blocking sites —
/// `eden-lint --blocking` requires exactly that of any blocking call
/// reachable from worker context.
pub fn blocking<R>(f: impl FnOnce() -> R) -> R {
    let outermost = WORKER.with(|w| {
        let mut tls = w.borrow_mut();
        match tls.as_mut() {
            Some(worker) => {
                worker.block_depth += 1;
                (worker.block_depth == 1).then(|| (Arc::clone(&worker.sched), worker.slot))
            }
            None => None,
        }
    });
    if let Some((sched, slot)) = &outermost {
        if let Some(i) = slot {
            // About to stop dispatching: a task left in the LIFO slot
            // would otherwise wait out this whole rendezvous (fresh slot
            // tasks are not stealable).
            sched.flush_lifo(*i);
        }
        sched.note_block_enter();
    }
    let out = f();
    if let Some((sched, _)) = &outermost {
        sched.note_block_exit();
    }
    WORKER.with(|w| {
        if let Some(worker) = w.borrow_mut().as_mut() {
            worker.block_depth -= 1;
        }
    });
    out
}

/// The worker pool and its lock-free dispatch state. One per
/// scheduler-mode kernel, shared with every worker thread.
pub(crate) struct Scheduler {
    /// Per-worker dispatch state, indexed by worker slot. Fixed at
    /// construction; spares beyond `target_workers` own no slot and
    /// work purely by injector polls and steals.
    slots: Box<[WorkerSlot]>,
    injector: Box<[InjectShard]>,
    inject_mask: usize,
    target_workers: usize,
    fairness_budget: usize,
    lifo_budget: u32,
    epoch: Instant,
    /// Workers inside the sleep protocol (announced on `sleepers`, about
    /// to park or parked). The producer side of the Dekker handshake in
    /// [`Scheduler::maybe_wake`].
    idle_count: CachePadded<AtomicUsize>,
    /// The host's available parallelism, sampled once at pool build.
    /// Producers stop waking sleepers once this many workers are awake
    /// and unblocked: extra runnable threads beyond the core count add
    /// context switches, never throughput — the single rule that makes
    /// oversized pools free instead of regressive on small machines.
    cpu_quota: usize,
    /// Notifies sent but not yet consumed by the woken worker. While
    /// this is non-zero a worker is already on its way to the backlog,
    /// so producers skip further wakes — the wake-storm dampener that
    /// keeps pool sizes beyond the core count close to free: without
    /// it, every push while any worker sleeps pays a latch round and
    /// makes one more thread runnable, and an oversubscribed box burns
    /// the curve's headroom on context switches. Wake rate is thereby
    /// throttled to the rate woken workers actually reach the CPU.
    wakes_pending: CachePadded<AtomicUsize>,
    /// Latches of workers currently inside the sleep protocol. Producers
    /// pop one to wake; a sleeper that finds work (or times out) removes
    /// itself.
    sleepers: Mutex<Vec<Arc<Parker>>>,
    live_workers: AtomicUsize,
    blocked_workers: AtomicUsize,
    tasks_alive: ShardedGauge,
    parked: ShardedGauge,
    /// Steal/pickup counts of slotless spare workers (slotted workers
    /// count on their own padded lines).
    spare_steals: CachePadded<AtomicU64>,
    spare_progress: CachePadded<AtomicU64>,
    worker_seq: AtomicUsize,
    stopping: AtomicBool,
    /// `wait_all_dead` sleeps here; signalled on every task death.
    death_mx: Mutex<()>,
    death_cv: Condvar,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    pub(crate) fn new(config: SchedulerConfig) -> Arc<Scheduler> {
        let config = config.normalized();
        let slots: Box<[WorkerSlot]> = (0..config.workers)
            .map(|_| WorkerSlot {
                deque: WorkDeque::new(),
                lifo: LifoSlot::new(),
                lifo_since_ns: AtomicU64::new(0),
                parker: Arc::new(Parker::new()),
                steals: AtomicU64::new(0),
                progress: AtomicU64::new(0),
            })
            .collect();
        let injector: Box<[InjectShard]> = (0..config.run_queue_shards)
            .map(|_| InjectShard {
                injq: Mutex::new(VecDeque::new()),
                backlog: AtomicUsize::new(0),
            })
            .collect();
        let sched = Arc::new(Scheduler {
            slots,
            inject_mask: injector.len() - 1,
            injector,
            target_workers: config.workers,
            fairness_budget: config.fairness_budget,
            lifo_budget: config.lifo_budget,
            epoch: Instant::now(),
            idle_count: CachePadded(AtomicUsize::new(0)),
            cpu_quota: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(config.workers),
            wakes_pending: CachePadded(AtomicUsize::new(0)),
            sleepers: Mutex::new(Vec::new()),
            live_workers: AtomicUsize::new(0),
            blocked_workers: AtomicUsize::new(0),
            tasks_alive: ShardedGauge::new(),
            parked: ShardedGauge::new(),
            spare_steals: CachePadded(AtomicU64::new(0)),
            spare_progress: CachePadded(AtomicU64::new(0)),
            worker_seq: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            death_mx: Mutex::new(()),
            death_cv: Condvar::default(),
            threads: Mutex::new(Vec::new()),
        });
        for _ in 0..config.workers {
            sched.spawn_worker();
        }
        let mon = Arc::clone(&sched);
        if let Ok(handle) = std::thread::Builder::new()
            .name("eden-sched-mon".into())
            .spawn(move || monitor_main(mon))
        {
            sched.threads.lock().push(handle);
        }
        sched
    }

    pub(crate) fn snapshot(&self) -> SchedSnapshot {
        let slot_steals: u64 = self
            .slots
            .iter()
            .map(|slot| slot.steals.load(Ordering::Relaxed))
            .sum();
        let queued: u64 = self
            .injector
            .iter()
            .map(|shard| shard.backlog.load(Ordering::Relaxed) as u64)
            .sum::<u64>()
            + self
                .slots
                .iter()
                .map(|slot| {
                    slot.deque.len_hint() as u64 + u64::from(!slot.lifo.is_empty_hint())
                })
                .sum::<u64>();
        SchedSnapshot {
            resident_ejects: self.tasks_alive.sum(),
            parked_ejects: self.parked.sum(),
            sched_steals: slot_steals + self.spare_steals.0.load(Ordering::Relaxed),
            workers: self.live_workers.load(Ordering::Relaxed) as u64,
            workers_blocked: self.blocked_workers.load(Ordering::Relaxed) as u64,
            workers_idle: self.idle_count.0.load(Ordering::Relaxed) as u64,
            wake_tokens: self.wakes_pending.0.load(Ordering::Relaxed) as u64,
            queued_tasks: queued,
        }
    }

    /// Create the task for a freshly spawned (or reactivated) Eject and
    /// queue its first resume, which runs `activate`. Called with the
    /// registry shard lock held — the push is lock-ordered under it.
    pub(crate) fn spawn_task(
        self: &Arc<Scheduler>,
        core: Arc<MailboxCore>,
        ctx: Arc<EjectContext>,
        kernel: WeakKernel,
        incarnation: u64,
        behavior: Box<dyn EjectBehavior>,
        ambient: Option<SpanContext>,
    ) -> Arc<Task> {
        let task = Arc::new(Task {
            core: Arc::clone(&core),
            ctx,
            kernel,
            incarnation,
            body: Mutex::new(Some(TaskBody {
                behavior,
                activated: false,
                ambient,
            })),
            rq_enq_ns: AtomicU64::new(0),
            died: Mutex::new(false),
            died_cv: Condvar::default(),
        });
        core.attach_task(self, &task);
        self.tasks_alive.add(1);
        // A fresh task's bit is PARKED and nobody else can see it yet, so
        // a plain store (not a CAS) is enough for the spawn enqueue.
        // eden-lint: transition(PARKED -> QUEUED)
        core.park_bit().store(park::QUEUED, Ordering::Release);
        // Spawns go FIFO through the injector, never the LIFO slot: a
        // spawn burst must fan out across workers, and activation order
        // should follow spawn order.
        self.push_fifo(Arc::clone(&task));
        task
    }

    /// Queue a task whose parking bit just flipped `PARKED -> QUEUED`
    /// (the mailbox wake path).
    pub(crate) fn enqueue(self: &Arc<Scheduler>, task: Arc<Task>) {
        self.parked.add(-1);
        self.stamp_enqueue(&task);
        match self.local_slot() {
            Some(i) => {
                // Hot path: a worker delivering mid-resume. The wakened
                // task goes to this worker's LIFO slot — its mailbox is
                // the hottest data in the system — and wakes no sibling:
                // this worker runs it next itself.
                if let Some(displaced) = self.slots[i].lifo.put(task) {
                    self.push_local_deque(i, displaced);
                }
                self.slots[i]
                    .lifo_since_ns
                    .store(self.now_ns(), Ordering::Relaxed);
            }
            None => self.push_inject(task),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn stamp_enqueue(&self, task: &Task) {
        task.rq_enq_ns.store(self.now_ns(), Ordering::Relaxed);
    }

    /// The calling thread's worker slot on *this* scheduler, if any.
    fn local_slot(self: &Arc<Scheduler>) -> Option<usize> {
        WORKER.with(|w| {
            w.borrow().as_ref().and_then(|worker| {
                if Arc::ptr_eq(&worker.sched, self) {
                    worker.slot
                } else {
                    None
                }
            })
        })
    }

    /// FIFO admission: stamp and hand to the injector. Spawns and
    /// fairness-budget requeues come through here — a requeue pushed to
    /// the owner's LIFO deque would be popped right back, defeating the
    /// budget.
    fn push_fifo(&self, task: Arc<Task>) {
        self.stamp_enqueue(&task);
        self.push_inject(task);
    }

    fn push_inject(&self, task: Arc<Task>) {
        self.injector[thread_slot() & self.inject_mask].push(task);
        self.maybe_wake();
    }

    /// Owner-side push onto worker `i`'s deque. On overflow, half the
    /// deque (its cold top) spills to the injector so the push lands.
    fn push_local_deque(&self, i: usize, task: Arc<Task>) {
        if let Err(task) = self.slots[i].deque.push(task) {
            let shard = &self.injector[thread_slot() & self.inject_mask];
            for _ in 0..DEQUE_CAP / 2 {
                let Some(cold) = self.slots[i].deque.steal() else { break };
                shard.push(cold);
            }
            if let Err(task) = self.slots[i].deque.push(task) {
                shard.push(task);
            }
        }
        self.maybe_wake();
    }

    /// Wake one sleeping worker, if any. The `SeqCst` fence pairs with
    /// the sleeper's announce in [`worker_main`]: either this producer
    /// observes `idle_count > 0` (and pops a latch to notify) or the
    /// sleeper's post-announce re-check observes the pushed work —
    /// whichever fence is later in the total order sees the other side's
    /// write, so the push cannot fall into the look-then-sleep gap.
    /// A second gate dampens wake storms: while a previous notify is
    /// still in flight (`wakes_pending > 0`), the woken worker is
    /// already bound for the backlog and will re-scan everything when
    /// it reaches the CPU, so piling more wakes on only converts queue
    /// depth into context switches. The gate cannot strand work: the
    /// pending worker's own dispatch loop re-checks all queues, and if
    /// it exits instead, the exit tail returns the token (see
    /// [`worker_main`]); even a leaked token only degrades to the
    /// sleepers' [`IDLE_WAIT`] timeout re-scan, never a hang.
    fn maybe_wake(&self) {
        // eden-lint: ordering(dekker-store-load)
        fence(Ordering::SeqCst);
        if self.idle_count.0.load(Ordering::Relaxed) == 0 {
            return;
        }
        if self.wakes_pending.0.load(Ordering::Relaxed) > 0 {
            return;
        }
        // Core-quota gate: with `cpu_quota` workers already awake and
        // unblocked, a wake buys contention, not capacity. The count is
        // conservative in the safe direction — a worker inside the
        // sleep protocol is still counted idle while it re-checks, so
        // transient underestimates of `active` cause extra wakes, never
        // missed ones. When the last active worker parks or blocks,
        // `active` hits zero and the gate opens; a worker glued to a
        // long local backlog still lets the injector in every
        // [`GLOBAL_POLL_INTERVAL`] dispatch rounds, bounding external
        // latency without any wake at all.
        let live = self.live_workers.load(Ordering::Relaxed);
        let blocked = self.blocked_workers.load(Ordering::Relaxed);
        let idle = self.idle_count.0.load(Ordering::Relaxed);
        let active = live.saturating_sub(blocked).saturating_sub(idle);
        if active >= self.cpu_quota {
            return;
        }
        if let Some(parker) = self.pop_sleeper() {
            self.wakes_pending.0.fetch_add(1, Ordering::SeqCst);
            parker.notify();
        }
    }

    /// Return one wake token, floor zero: `stop()`'s shutdown notifies
    /// are deliberately uncounted, so a consumer may see more consumed
    /// notifies than counted ones.
    fn consume_wake_token(&self) {
        let _ = self
            .wakes_pending
            .0
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1));
    }

    // Worst-case caller: `maybe_wake` under the registry shard (spawn
    // path) or a mailbox ring (backpressure overflow spill).
    // eden-lint: holds(registry-shard, mailbox-queue)
    fn pop_sleeper(&self) -> Option<Arc<Parker>> {
        self.sleepers.lock().pop()
    }

    fn remove_sleeper(&self, parker: &Arc<Parker>) {
        self.sleepers.lock().retain(|p| !Arc::ptr_eq(p, parker));
    }

    /// Whether any injector shard advertises backlog. Relaxed scan over
    /// a handful of padded counters; exact at rest.
    fn inject_backlog(&self) -> bool {
        self.injector
            .iter()
            .any(|shard| shard.backlog.load(Ordering::Relaxed) > 0)
    }

    /// Any stranded LIFO slot anywhere — the one backlog a beyond-quota
    /// sleeper must rejoin for, because its owner by definition is not
    /// dispatching and the active workers may never run dry enough to
    /// reach their second steal pass.
    fn lifo_any_stranded(&self) -> bool {
        (0..self.slots.len()).any(|i| self.lifo_stranded(i))
    }

    /// Whether worker `i`'s LIFO slot holds a *stranded* task: occupied
    /// for longer than [`LIFO_STALE`], meaning its owner stopped
    /// dispatching without flushing (a rendezvous the kernel cannot see).
    fn lifo_stranded(&self, i: usize) -> bool {
        !self.slots[i].lifo.is_empty_hint()
            && self
                .now_ns()
                .saturating_sub(self.slots[i].lifo_since_ns.load(Ordering::Relaxed))
                > LIFO_STALE.as_nanos() as u64
    }

    /// The idle re-check and the stall monitor's "is there work" probe.
    /// A *fresh* LIFO slot does not count: its owner is about to run it,
    /// and counting it would keep idle workers awake polling for a task
    /// they must not steal.
    fn has_runnable(&self) -> bool {
        self.inject_backlog()
            || self
                .slots
                .iter()
                .enumerate()
                .any(|(i, slot)| !slot.deque.is_empty_hint() || self.lifo_stranded(i))
    }

    /// Drain one task from the injector, preferring the shard indexed by
    /// the caller (so workers spread over shards), batching extras into
    /// the calling worker's deque.
    fn pop_inject(&self, me: Option<usize>) -> Option<Arc<Task>> {
        let start = me.unwrap_or_else(thread_slot);
        for step in 0..self.injector.len() {
            let shard = &self.injector[(start + step) & self.inject_mask];
            if shard.backlog.load(Ordering::Acquire) == 0 {
                continue;
            }
            let dest = me.map(|i| &self.slots[i].deque);
            if let Some(task) = shard.pop_into(dest) {
                return Some(task);
            }
        }
        None
    }

    /// Pick the next runnable task for a worker: periodic injector poll,
    /// then LIFO slot (budgeted), own deque, injector, steal.
    fn next_task(&self, me: Option<usize>, lifo_streak: &mut u32, tick: u64) -> Option<Arc<Task>> {
        if tick.is_multiple_of(GLOBAL_POLL_INTERVAL) {
            // Even a worker with endless local work periodically lets
            // the injector in, bounding external producers' queue delay.
            if let Some(task) = self.pop_inject(me) {
                *lifo_streak = 0;
                return Some(task);
            }
        }
        if let Some(i) = me {
            let slot = &self.slots[i];
            let colder_waiting = !slot.deque.is_empty_hint() || self.inject_backlog();
            if *lifo_streak < self.lifo_budget || !colder_waiting {
                if let Some(task) = slot.lifo.take() {
                    *lifo_streak += 1;
                    return Some(task);
                }
            }
            if let Some(task) = slot.deque.pop() {
                *lifo_streak = 0;
                return Some(task);
            }
        }
        *lifo_streak = 0;
        if let Some(task) = self.pop_inject(me) {
            return Some(task);
        }
        self.steal(me)
    }

    /// Steal for a worker that found nothing local: first pass batches
    /// from deque tops (half the victim's backlog per session), second
    /// pass rescues stranded LIFO-slot tasks.
    fn steal(&self, me: Option<usize>) -> Option<Arc<Task>> {
        let n = self.slots.len();
        let start = match me {
            Some(i) => i + 1,
            None => thread_slot(),
        };
        for step in 0..n {
            let victim = (start + step) % n;
            if me == Some(victim) {
                continue;
            }
            if let Some(task) = self.steal_from(victim, me) {
                self.note_steal(me);
                return Some(task);
            }
        }
        for step in 0..n {
            let victim = (start + step) % n;
            if me == Some(victim) {
                continue;
            }
            if self.lifo_stranded(victim) {
                if let Some(task) = self.slots[victim].lifo.take() {
                    self.note_steal(me);
                    return Some(task);
                }
            }
        }
        None
    }

    /// One steal session against `victim`'s deque: claim one task to run
    /// plus up to half the victim's remaining backlog into the thief's
    /// own deque — each claim its own proven CAS (see [`crate::deque`]
    /// for why a range CAS would double-run tasks).
    ///
    /// On a single-core quota the batch is skipped: the thief only runs
    /// while the victim is off-CPU, so one task covers the gap and the
    /// rest of the backlog stays in the victim's (cache-warm) deque for
    /// it to resume.
    fn steal_from(&self, victim: usize, me: Option<usize>) -> Option<Arc<Task>> {
        let victim_deque = &self.slots[victim].deque;
        let first = victim_deque.steal()?;
        if let Some(i) = me.filter(|_| self.cpu_quota > 1) {
            let dest = &self.slots[i].deque;
            for _ in 0..victim_deque.len_hint() / 2 {
                let Some(task) = victim_deque.steal() else { break };
                if let Err(task) = dest.push(task) {
                    self.push_inject(task);
                    break;
                }
            }
        }
        Some(first)
    }

    fn note_steal(&self, me: Option<usize>) {
        match me {
            Some(i) => self.slots[i].steals.fetch_add(1, Ordering::Relaxed),
            None => self.spare_steals.0.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn note_progress(&self, me: Option<usize>) {
        match me {
            Some(i) => self.slots[i].progress.fetch_add(1, Ordering::Relaxed),
            None => self.spare_progress.0.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Total task pickups, folded for the stall monitor.
    fn total_progress(&self) -> u64 {
        self.slots
            .iter()
            .map(|slot| slot.progress.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.spare_progress.0.load(Ordering::Relaxed)
    }

    /// Move whatever sits in worker `i`'s LIFO slot onto its deque,
    /// where thieves can see it. Called when the worker is about to stop
    /// dispatching (blocking section entry, worker exit).
    fn flush_lifo(&self, i: usize) {
        if let Some(task) = self.slots[i].lifo.take() {
            self.push_local_deque(i, task);
        }
    }

    fn spawn_worker(self: &Arc<Scheduler>) {
        let idx = self.worker_seq.fetch_add(1, Ordering::Relaxed);
        self.live_workers.fetch_add(1, Ordering::AcqRel);
        let sched = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name(format!("eden-sched-{idx}"))
            .spawn(move || worker_main(sched, idx));
        match spawned {
            Ok(handle) => self.threads.lock().push(handle),
            Err(_) => {
                // Out of threads: run degraded rather than dead. The
                // remaining workers still drain every queue.
                self.live_workers.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    fn note_block_enter(self: &Arc<Scheduler>) {
        let blocked = self.blocked_workers.fetch_add(1, Ordering::AcqRel) + 1;
        let live = self.live_workers.load(Ordering::Acquire);
        if live.saturating_sub(blocked) < self.target_workers
            && !self.stopping.load(Ordering::Acquire)
        {
            // A parked sibling is a full-capacity replacement at futex
            // cost; spawn a fresh spare only when no sleeper exists.
            // Without this preference, every blocking dip of a large
            // pool paid a thread spawn while its own workers slept —
            // the dominant hidden cost of the old compensation rule.
            if self.wakes_pending.0.load(Ordering::SeqCst) > 0 {
                return; // a woken worker is already en route
            }
            if let Some(parker) = self.pop_sleeper() {
                self.wakes_pending.0.fetch_add(1, Ordering::SeqCst);
                parker.notify();
            } else {
                self.spawn_worker();
            }
        }
    }

    fn note_block_exit(&self) {
        self.blocked_workers.fetch_sub(1, Ordering::AcqRel);
    }

    /// Resume one task: drain up to the fairness budget, then park or
    /// requeue; run the death path if an exit envelope (or a panic in the
    /// behaviour) ends it.
    fn run_task(&self, task: Arc<Task>) {
        let bit = task.core.park_bit();
        // eden-lint: transition(QUEUED -> RUNNING)
        bit.store(park::RUNNING, Ordering::Release);
        CURRENT_TASK.with(|c| c.set(Some(task.uid())));
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.resume(&task)));
        CURRENT_TASK.with(|c| c.set(None));
        match outcome {
            Ok(Resume::Yield) => {}
            Ok(Resume::Dead(crashed)) => self.reap(&task, crashed),
            Err(_) => {
                // The behaviour panicked mid-dispatch. Thread-per-Eject
                // lost the coordinator thread here; the pool must survive
                // instead, so the task dies as a crash and the worker
                // lives on. The behaviour box was dropped by the unwind,
                // releasing any parked replies.
                task.ctx.begin_stop();
                self.reap(&task, true);
            }
        }
    }

    fn resume(&self, task: &Arc<Task>) -> Resume {
        let Some(mut body) = task.take_body() else {
            // Only reachable if a stale queue entry outlived the death
            // path; nothing to run.
            return Resume::Yield;
        };
        let _span = body.ambient.map(|ctx| eden_core::span::enter(Some(ctx)));
        let pickup = Instant::now();
        let rq_enq = self.epoch + Duration::from_nanos(task.rq_enq_ns.load(Ordering::Relaxed));
        if !body.activated {
            body.activated = true;
            body.behavior.activate(&task.ctx);
        }
        let bit = task.core.park_bit();
        let mut budget = self.fairness_budget;
        loop {
            if task.ctx.deactivate_requested() {
                return self.die(task, body, false);
            }
            if budget == 0 {
                // Budget exhausted: go to the back of the line so other
                // runnable tasks (a million parked streams' worth) get a
                // worker before this pipeline's next batch. FIFO through
                // the injector — the LIFO slot would run us right back.
                // eden-lint: transition(RUNNING|DIRTY -> QUEUED)
                bit.store(park::QUEUED, Ordering::Release);
                task.put_body(body);
                self.push_fifo(Arc::clone(task));
                return Resume::Yield;
            }
            match task.core.pop() {
                Some(Envelope::Invocation(inv, mut reply)) => {
                    budget -= 1;
                    let _guard = reply.begin_service_at(Some((rq_enq, pickup)));
                    dispatch(body.behavior.as_mut(), &task.ctx, &task.kernel, inv, reply);
                }
                Some(Envelope::Internal(event)) => {
                    budget -= 1;
                    body.behavior.internal(&task.ctx, event);
                }
                Some(Envelope::Crash) => return self.die(task, body, true),
                Some(Envelope::Shutdown) => return self.die(task, body, false),
                None => {
                    // Publish the body (and the parked gauge) BEFORE the
                    // CAS advertises PARKED: the instant the CAS succeeds a
                    // sender may re-enqueue this task and another worker
                    // resume it, and that worker must find the body in
                    // place — parking after publishing would let the wake
                    // race ahead of the state machine and be lost.
                    task.put_body(body);
                    self.parked.add(1);
                    // eden-lint: ordering(park-state-machine)
                    match bit.compare_exchange(
                        park::RUNNING,
                        park::PARKED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return Resume::Yield,
                        Err(_) => {
                            // A sender marked us dirty between the empty
                            // pop and the park attempt; reclaim the body
                            // and keep draining.
                            self.parked.add(-1);
                            // eden-lint: transition(DIRTY -> RUNNING)
                            bit.store(park::RUNNING, Ordering::Release);
                            body = match task.take_body() {
                                Some(reclaimed) => reclaimed,
                                // Unreachable: the task is in no run queue
                                // while RUNNING, so nobody else takes it.
                                None => return Resume::Yield,
                            };
                        }
                    }
                }
            }
        }
    }

    /// The in-resume half of the death path: mirror of the coordinator
    /// thread's exit tail, up to dropping the behaviour.
    fn die(&self, task: &Arc<Task>, body: TaskBody, crashed: bool) -> Resume {
        let TaskBody { mut behavior, .. } = body;
        behavior.deactivating(&task.ctx);
        task.ctx.begin_stop();
        // Dropping the behaviour releases any parked ReplyHandles,
        // unblocking whoever waits on this Eject.
        drop(behavior);
        Resume::Dead(crashed)
    }

    /// The post-behaviour half of the death path: close the mailbox (so
    /// queued invocations fail fast and later sends bounce), reap worker
    /// processes, and tell the kernel.
    fn reap(&self, task: &Arc<Task>, crashed: bool) {
        // eden-lint: transition(RUNNING|DIRTY -> DEAD)
        task.core.park_bit().store(park::DEAD, Ordering::Release);
        drop(task.core.close());
        // The Eject's worker threads may need other Ejects (hence this
        // pool) to make progress before they exit.
        blocking(|| task.ctx.join_workers());
        if let Some(kernel) = task.kernel.upgrade() {
            kernel.on_eject_exit(task.uid(), task.incarnation, crashed);
        }
        task.mark_died();
        self.tasks_alive.add(-1);
        let _death = self.death_mx.lock();
        self.death_cv.notify_all();
    }

    /// Block until every task has died, excluding (when called from a
    /// worker mid-resume) the task this thread is currently running —
    /// which cannot die before this call returns.
    pub(crate) fn wait_all_dead(&self) {
        let allow = u64::from(current_task().is_some());
        blocking(|| {
            let mut death = self.death_mx.lock();
            while self.tasks_alive.sum() > allow {
                let _ = self
                    .death_cv
                    .wait_for(&mut death, Duration::from_millis(50));
            }
        });
    }

    /// Stop the pool: workers drain what is queued, then exit. Idempotent.
    /// Never joins the calling thread (shutdown can originate on a
    /// worker).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        while let Some(parker) = self.pop_sleeper() {
            parker.notify();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.threads.lock());
        let current = std::thread::current().id();
        for handle in handles {
            if handle.thread().id() != current {
                // eden-lint: nonblocking(teardown: the joined workers are draining to exit)
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("target_workers", &self.target_workers)
            .field("injector_shards", &self.injector.len())
            .field("snapshot", &self.snapshot())
            .finish_non_exhaustive()
    }
}

fn worker_main(sched: Arc<Scheduler>, idx: usize) {
    // The first `target_workers` spawns own a slot; later spawns are
    // spares (blocking compensation, stall rescue) and work slotless.
    let me = (idx < sched.slots.len()).then_some(idx);
    let parker = match me {
        Some(i) => Arc::clone(&sched.slots[i].parker),
        None => Arc::new(Parker::new()),
    };
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerTls {
            sched: Arc::clone(&sched),
            slot: me,
            block_depth: 0,
        })
    });
    let mut lifo_streak = 0u32;
    let mut tick = 0u64;
    let mut spins = 0u32;
    // Consecutive empty sleep rounds, for the spare linger rule below.
    let mut idle_rounds = 0u32;
    // Whether this worker owes the pool a wake token: set when a notify
    // ends a park, returned on the first task pickup (or once the worker
    // concludes there is nothing to pick up). Holding it through the
    // scan keeps the producer-side wake gate closed for the whole
    // notify-to-pickup window, so queue depth during a scheduling delay
    // costs one wake, not one per push.
    let mut holds_token = false;
    loop {
        tick = tick.wrapping_add(1);
        if let Some(task) = sched.next_task(me, &mut lifo_streak, tick) {
            spins = 0;
            idle_rounds = 0;
            if holds_token {
                holds_token = false;
                sched.consume_wake_token();
            }
            sched.note_progress(me);
            sched.run_task(task);
            continue;
        }
        if sched.stopping.load(Ordering::Acquire) {
            break;
        }
        if spins < SPIN_ROUNDS {
            spins += 1;
            std::thread::yield_now();
            continue;
        }
        spins = 0;
        // Nothing claimable anywhere: a held token's claim is spent.
        // Release it before announcing idle, so producers can aim their
        // next wake at whichever sleeper is closest to new work.
        if holds_token {
            holds_token = false;
            sched.consume_wake_token();
        }
        // A spare beyond target retires only after lingering through a
        // few empty sleep rounds: blocking sections arrive in bursts,
        // and retiring on the first quiet moment makes the pool pay a
        // thread spawn per burst. The check races other retirees at
        // worst into a transient under-target, which the next blocking
        // section corrects. Slotted workers never retire.
        let live = sched.live_workers.load(Ordering::Acquire);
        let blocked = sched.blocked_workers.load(Ordering::Acquire);
        if me.is_none()
            && idle_rounds >= SPARE_LINGER_ROUNDS
            && live.saturating_sub(blocked) > sched.target_workers
        {
            break;
        }
        // Sleep protocol: register the latch, announce, then re-check.
        // The registration must precede the announce so a producer that
        // observes `idle_count > 0` finds a latch to pop; the fence
        // pairs with `maybe_wake`'s (see there).
        sched.sleepers.lock().push(Arc::clone(&parker));
        sched.idle_count.0.fetch_add(1, Ordering::SeqCst);
        // eden-lint: ordering(dekker-store-load)
        fence(Ordering::SeqCst);
        if !sched.has_runnable() && !sched.stopping.load(Ordering::Acquire) {
            // Park rounds continue across bare timeouts while the
            // active set already fills the core quota AND demonstrably
            // dispatches: a timeout is not an invitation, and a sleeper
            // that rejoined on every 10ms tick of a saturated pool
            // would reintroduce exactly the contention the wake gate
            // exists to prevent. The sleeper stays registered
            // throughout, so a producer-side notify (sent the moment
            // `active` dips below quota) still lands. Spares always
            // surface so the retire check can run, and a stranded LIFO
            // slot anywhere overrides the quota — its owner is stuck,
            // and rescuing it needs an idle thief.
            //
            // `active` can lie: a behaviour may block its worker on a
            // primitive the kernel cannot see (a bounded channel to its
            // own worker process), leaving the worker counted active
            // while it dispatches nothing. So saturation must be
            // re-proven each round by the pickup counter — a genuinely
            // busy pool advances it every few microseconds, while a
            // frozen counter with runnable work queued means the
            // "active" set is stuck and this sleeper is the rescue.
            let mut wait = IDLE_WAIT;
            let mut progress_mark = sched.total_progress();
            let mut frozen_rounds = 0u32;
            loop {
                if parker.park(wait) {
                    holds_token = true;
                    break;
                }
                idle_rounds = idle_rounds.saturating_add(1);
                if me.is_none() || sched.stopping.load(Ordering::Acquire) {
                    break;
                }
                let live = sched.live_workers.load(Ordering::Acquire);
                let blocked = sched.blocked_workers.load(Ordering::Acquire);
                let idle = sched.idle_count.0.load(Ordering::Acquire);
                let active = live.saturating_sub(blocked).saturating_sub(idle);
                if active < sched.cpu_quota || sched.lifo_any_stranded() {
                    break;
                }
                if !sched.has_runnable() {
                    break;
                }
                let progress = sched.total_progress();
                if progress == progress_mark {
                    // Runnable work, a full active set, and zero
                    // pickups for a whole wait: the actives look
                    // wedged. One frozen wait can also be the OS
                    // preempting a genuinely busy pool, so demand a
                    // second before rejoining — a real wedge holds, a
                    // preemption blip resumes ticking the counter.
                    frozen_rounds += 1;
                    if frozen_rounds >= 2 {
                        break;
                    }
                    continue;
                }
                progress_mark = progress;
                frozen_rounds = 0;
                // First timeout proved saturation; later rounds only
                // re-confirm it, so they can tick an order slower.
                wait = SATURATED_WAIT;
            }
        } else {
            // The pre-park re-check found work; a producer may still
            // have counted a notify at us — take the token and carry it
            // into the scan above.
            holds_token = parker.take_notified();
        }
        sched.remove_sleeper(&parker);
        sched.idle_count.0.fetch_sub(1, Ordering::SeqCst);
    }
    if holds_token {
        sched.consume_wake_token();
    }
    // Exit tail: anything still queued on this worker must outlive it,
    // and a notify that raced our exit must return its wake token.
    if parker.take_notified() {
        sched.consume_wake_token();
    }
    if let Some(i) = me {
        sched.flush_lifo(i);
        while let Some(task) = sched.slots[i].deque.pop() {
            sched.push_inject(task);
        }
    }
    WORKER.with(|w| *w.borrow_mut() = None);
    sched.live_workers.fetch_sub(1, Ordering::AcqRel);
}

/// The stall monitor. [`blocking`] compensates for every rendezvous the
/// kernel controls, but a behaviour may also block a worker on a
/// primitive the kernel cannot see — a bounded channel send to one of
/// its own worker processes, a bare sleep. This thread samples the
/// pickup counter: runnable tasks plus two ticks with no pickup means
/// every non-sleeping worker is stuck in such a rendezvous, so it wakes
/// a sleeper if one exists (the cheap rescue) and spawns a spare
/// otherwise (which retires itself once the pool is over target again).
/// The degenerate case — every resident Eject blocked at once —
/// converges to thread-per-Eject, the seed's behaviour. A stranded
/// LIFO-slot task counts as runnable here once stale, so a thief
/// arrives to steal it (second steal pass).
///
/// The monitor must NOT gate on `idle_count == 0`: sleepers in the
/// saturated re-park loop trust the `active` head-count, and when that
/// count lies (invisible rendezvous) the pool can sit at idle > 0 with
/// runnable work and nobody dispatching. The sleepers' own
/// frozen-progress check breaks that standoff within one park timeout;
/// the monitor's notify resolves it in ~2 ms instead.
fn monitor_main(sched: Arc<Scheduler>) {
    let mut last_progress = u64::MAX;
    let mut stalled_ticks = 0u32;
    let mut tick = MONITOR_TICK;
    while !sched.stopping.load(Ordering::Acquire) {
        // eden-lint: nonblocking(dedicated monitor thread, never a pool worker)
        std::thread::sleep(tick);
        let progress = sched.total_progress();
        let runnable = sched.has_runnable();
        // An idle pool needs no 1 kHz heartbeat; back off until work shows.
        tick = if runnable { MONITOR_TICK } else { 5 * MONITOR_TICK };
        if runnable && progress == last_progress {
            stalled_ticks += 1;
            if stalled_ticks >= 2 && !sched.stopping.load(Ordering::Acquire) {
                if let Some(parker) = sched.pop_sleeper() {
                    sched.wakes_pending.0.fetch_add(1, Ordering::SeqCst);
                    parker.notify();
                } else if sched.live_workers.load(Ordering::Acquire) < MAX_WORKERS {
                    sched.spawn_worker();
                }
                stalled_ticks = 0;
            }
        } else {
            stalled_ticks = 0;
        }
        last_progress = progress;
    }
}
