//! The observability plane: causal invocation spans, per-stage latency
//! histograms, and the export renderers behind `eden-shell`'s `stats` and
//! `trace export` commands.
//!
//! Everything here hangs off the single invocation verb. When enabled via
//! [`ObsConfig`], the kernel tags every *delivered* invocation with a
//! [`SpanContext`] child of whatever span is ambient on the sending thread
//! (see [`eden_core::span`]), stamps it with an enqueue time at dispatch and
//! a dequeue time when the coordinator picks it up, and completes the span
//! when the reply resolves — so queue wait and service time are split
//! correctly even for deferred replies (the paper's passive output: a parked
//! `ReplyHandle` is *still being serviced*).
//!
//! The store is sharded by target UID and merged on snapshot, keeping the
//! hot path to one short mutex acquisition per completed invocation; with
//! the plane disabled (the default) the kernel carries no tag at all and the
//! cost is one `Option` check per invocation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eden_core::span::SpanContext;
use eden_core::{MetricsSnapshot, OpName, PayloadSnapshot, StreamSnapshot, Uid};
use parking_lot::Mutex;

use crate::kernel::NodeId;
use crate::sched::SchedSnapshot;

/// Construction-time options for the observability plane, carried in
/// [`KernelConfig::observability`](crate::KernelConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record a causal span per delivered invocation.
    pub spans: bool,
    /// Record per-(Eject, op) queue-wait and service-time histograms.
    pub histograms: bool,
    /// Ring capacity of the span store (oldest spans are dropped beyond
    /// this, counted in [`Kernel::spans_dropped`](crate::Kernel)).
    pub span_capacity: usize,
}

impl ObsConfig {
    /// Everything off — the zero-overhead default.
    pub fn off() -> ObsConfig {
        ObsConfig {
            spans: false,
            histograms: false,
            // Sized so the ring wraps and stays cache-resident under load:
            // a cold, ever-growing span store streams every record through
            // DRAM and that traffic — not the bookkeeping — dominates the
            // plane's overhead. Raise it for deeper history at a measured
            // cost.
            span_capacity: 8_192,
        }
    }

    /// Spans and histograms both on, default capacity.
    pub fn full() -> ObsConfig {
        ObsConfig {
            spans: true,
            histograms: true,
            ..ObsConfig::off()
        }
    }

    /// True if any instrumentation is requested.
    pub fn enabled(&self) -> bool {
        self.spans || self.histograms
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

/// One completed invocation span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this invocation belongs to.
    pub trace: u64,
    /// This invocation's span id.
    pub span: u64,
    /// The causing span, if any.
    pub parent: Option<u64>,
    /// Hops from the trace root.
    pub hop: u32,
    /// The target Eject.
    pub target: Uid,
    /// The operation.
    pub op: OpName,
    /// Originating node.
    pub from: NodeId,
    /// Target's node.
    pub to: NodeId,
    /// Dispatch time, nanoseconds since the kernel's observability epoch.
    pub start_ns: u64,
    /// Time spent in the target's mailbox before the coordinator picked the
    /// invocation up (zero if it never reached a coordinator). Excludes the
    /// scheduler wait below: `queue + sched + service` decomposes the whole
    /// span exactly.
    pub queue_ns: u64,
    /// Scheduler wait: time the target's parked state machine spent on the
    /// run queue before a worker resumed it to service this invocation.
    /// Always zero in `threads` execution mode.
    pub sched_ns: u64,
    /// Time from dequeue to reply resolution — includes any time the reply
    /// was parked as passive output.
    pub service_ns: u64,
    /// Whether the reply was `Ok`.
    pub ok: bool,
}

/// A fixed-layout log2 histogram of nanosecond durations. Bucket `b` holds
/// values in `[2^(b-1), 2^b)`; 64 buckets cover every `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize).min(63)
    }

    fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket containing that rank (0 when empty). Log2 buckets make
    /// this exact to within a factor of two — the resolution the paper's
    /// order-of-magnitude cost argument needs.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b.min(63) };
            }
        }
        u64::MAX
    }

    /// Median (see [`quantile_ns`](Histogram::quantile_ns)).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th percentile (see [`quantile_ns`](Histogram::quantile_ns)).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }
}

/// Merged per-(Eject, op) latency statistics, one row per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// The target Eject.
    pub target: Uid,
    /// The operation.
    pub op: OpName,
    /// Completed invocations of this (Eject, op).
    pub count: u64,
    /// Mailbox wait distribution (run-queue time excluded).
    pub queue: Histogram,
    /// Scheduler wait distribution (run-queue time; all-zero in `threads`
    /// execution mode).
    pub sched: Histogram,
    /// Service time distribution (dequeue to reply resolution).
    pub service: Histogram,
}

/// One per-stage accumulator. The shards hold these in a flat vector and
/// find them by linear scan: completions land on the responder's own
/// coordinator thread, so a shard sees only the handful of (Eject, op)
/// pairs that thread serves, and a two-word compare over ≤ a dozen entries
/// beats hashing the key on the reply path every time.
struct StageSlot {
    target: Uid,
    op: OpName,
    queue: Histogram,
    sched: Histogram,
    service: Histogram,
}

struct ObsShard {
    spans: VecDeque<SpanRecord>,
    stages: Vec<StageSlot>,
}

impl ObsShard {
    fn stage_slot(&mut self, target: Uid, op: &OpName) -> &mut StageSlot {
        let pos = self
            .stages
            .iter()
            .position(|s| s.target == target && s.op == *op);
        let idx = match pos {
            Some(idx) => idx,
            None => {
                self.stages.push(StageSlot {
                    target,
                    op: op.clone(),
                    queue: Histogram::new(),
                    sched: Histogram::new(),
                    service: Histogram::new(),
                });
                self.stages.len() - 1
            }
        };
        &mut self.stages[idx]
    }
}

/// The sharded span + histogram store. One per kernel, present only when
/// [`ObsConfig::enabled`] — a disabled kernel pays a single pointer check.
pub(crate) struct ObsPlane {
    config: ObsConfig,
    epoch: Instant,
    shards: Box<[Mutex<ObsShard>]>,
    shard_capacity: usize,
    dropped: AtomicU64,
}

const OBS_SHARDS: usize = 16;

impl ObsPlane {
    pub(crate) fn new(config: ObsConfig) -> ObsPlane {
        let shard_capacity = (config.span_capacity / OBS_SHARDS).max(1);
        let shards = (0..OBS_SHARDS)
            .map(|_| {
                Mutex::new(ObsShard {
                    // Reserve the ring up front: growing a VecDeque under
                    // the shard lock copies every record it already holds,
                    // roughly doubling the hot path's memory traffic. The
                    // reservation is virtual memory until touched.
                    spans: VecDeque::with_capacity(if config.spans { shard_capacity } else { 0 }),
                    stages: Vec::new(),
                })
            })
            .collect();
        ObsPlane {
            config,
            epoch: Instant::now(),
            shards,
            shard_capacity,
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn config(&self) -> ObsConfig {
        self.config
    }

    /// The calling thread's shard. Completions run on the responder's
    /// coordinator thread, so handing each thread its own shard (round-
    /// robin on first use) makes the hot-path lock effectively private —
    /// sharding by target UID instead lets two coordinators collide in a
    /// shard and park on each other, which costs a context switch per
    /// collision on small machines. Snapshot-time merging handles the
    /// scatter.
    fn shard_of_thread(&self) -> &Mutex<ObsShard> {
        use std::cell::Cell;
        static NEXT_SHARD: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static SHARD_IDX: Cell<u64> = const { Cell::new(u64::MAX) };
        }
        let idx = SHARD_IDX.with(|c| {
            let mut v = c.get();
            if v == u64::MAX {
                v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
                c.set(v);
            }
            v
        });
        &self.shards[idx as usize % OBS_SHARDS]
    }

    /// Record one completed invocation. Called from whichever thread
    /// resolved the reply; one sharded lock, no allocation beyond the ring
    /// slot.
    pub(crate) fn complete(&self, tag: &ObsTag, ok: bool) {
        let end = Instant::now();
        let dequeued = tag.dequeued.unwrap_or(end);
        // The scheduler wait (stamped at pickup, zero in threads mode) is
        // carved out of the enqueue→dequeue interval, so the three stages
        // still sum to the exact span duration.
        let total_wait_ns = dequeued.saturating_duration_since(tag.enqueued).as_nanos() as u64;
        let sched_ns = tag.sched_ns.min(total_wait_ns);
        let queue_ns = total_wait_ns - sched_ns;
        let service_ns = end.saturating_duration_since(dequeued).as_nanos() as u64;
        let mut shard = self.shard_of_thread().lock();
        if self.config.histograms {
            let slot = shard.stage_slot(tag.target, &tag.op);
            slot.queue.record(queue_ns);
            slot.sched.record(sched_ns);
            slot.service.record(service_ns);
        }
        if self.config.spans {
            if shard.spans.len() == self.shard_capacity {
                shard.spans.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            shard.spans.push_back(SpanRecord {
                trace: tag.ctx.trace,
                span: tag.ctx.span,
                parent: tag.ctx.parent,
                hop: tag.ctx.hop,
                target: tag.target,
                op: tag.op.clone(),
                from: tag.from,
                to: tag.to,
                start_ns: tag.enqueued.saturating_duration_since(self.epoch).as_nanos() as u64,
                queue_ns,
                sched_ns,
                service_ns,
                ok,
            });
        }
    }

    /// Record a zero-duration failed span for a delivery attempt the fault
    /// injector killed on the invocation path. The attempt never built a
    /// reply pair — no queue wait, no service time, so no histogram
    /// sample — but it must still appear in the causal tree, or a
    /// crash-recovery trace shows retries with no visible cause.
    pub(crate) fn record_faulted(
        &self,
        ctx: SpanContext,
        target: Uid,
        op: &OpName,
        from: NodeId,
    ) {
        if !self.config.spans {
            return;
        }
        let start_ns = Instant::now().saturating_duration_since(self.epoch).as_nanos() as u64;
        let mut shard = self.shard_of_thread().lock();
        if shard.spans.len() == self.shard_capacity {
            shard.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.spans.push_back(SpanRecord {
            trace: ctx.trace,
            span: ctx.span,
            parent: ctx.parent,
            hop: ctx.hop,
            target,
            op: op.clone(),
            // The route never resolved; the span dies where it was sent.
            from,
            to: from,
            start_ns,
            queue_ns: 0,
            sched_ns: 0,
            service_ns: 0,
            ok: false,
        });
    }

    /// All recorded spans, merged across shards, ordered by start time.
    pub(crate) fn spans(&self) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = Vec::new();
        for shard in self.shards.iter() {
            all.extend(shard.lock().spans.iter().cloned());
        }
        all.sort_by_key(|s| (s.start_ns, s.span));
        all
    }

    /// Spans evicted from the ring since the kernel started.
    pub(crate) fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently held across all shards.
    pub(crate) fn span_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.lock().spans.len() as u64)
            .sum()
    }

    /// Per-stage latency summaries, busiest first.
    pub(crate) fn stage_summaries(&self) -> Vec<StageSummary> {
        let mut rows: Vec<StageSummary> = Vec::new();
        for shard in self.shards.iter() {
            for slot in shard.lock().stages.iter() {
                match rows
                    .iter_mut()
                    .find(|r| r.target == slot.target && r.op == slot.op)
                {
                    Some(row) => {
                        row.queue.merge(&slot.queue);
                        row.sched.merge(&slot.sched);
                        row.service.merge(&slot.service);
                        row.count = row.service.count();
                    }
                    None => rows.push(StageSummary {
                        target: slot.target,
                        op: slot.op.clone(),
                        count: slot.service.count(),
                        queue: slot.queue.clone(),
                        sched: slot.sched.clone(),
                        service: slot.service.clone(),
                    }),
                }
            }
        }
        rows.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.target.cmp(&b.target))
                .then_with(|| a.op.as_str().cmp(b.op.as_str()))
        });
        rows
    }
}

impl std::fmt::Debug for ObsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsPlane")
            .field("config", &self.config)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The per-invocation tag carried by a `ReplyHandle` while the plane is
/// enabled: identity, span coordinates, and the two timestamps the
/// histograms are built from.
#[derive(Debug)]
pub(crate) struct ObsTag {
    pub(crate) plane: Arc<ObsPlane>,
    pub(crate) ctx: SpanContext,
    pub(crate) target: Uid,
    pub(crate) op: OpName,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) enqueued: Instant,
    pub(crate) dequeued: Option<Instant>,
    /// Run-queue wait attributed at pickup time (scheduler mode only;
    /// stays zero in threads mode).
    pub(crate) sched_ns: u64,
}

impl ObsTag {
    pub(crate) fn new(
        plane: Arc<ObsPlane>,
        ctx: SpanContext,
        target: Uid,
        op: OpName,
        from: NodeId,
        to: NodeId,
    ) -> ObsTag {
        ObsTag {
            plane,
            ctx,
            target,
            op,
            from,
            to,
            enqueued: Instant::now(),
            dequeued: None,
            sched_ns: 0,
        }
    }
}

/// Aggregate mailbox occupancy across every *active* Eject, sampled under
/// each registry shard's read lock at snapshot time. Queue depth is the
/// overload plane's leading indicator: a bounded mailbox pinned at its
/// capacity means admission control (not the consumer) is setting the
/// service rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxSnapshot {
    /// Active mailboxes sampled.
    pub mailboxes: u64,
    /// Envelopes queued across all active mailboxes.
    pub queued_total: u64,
    /// Deepest single mailbox at sample time.
    pub queued_max: u64,
}

/// A point-in-time view of everything the kernel can report: control-plane
/// counters, the process-wide payload and stream planes, per-stage latency
/// summaries, and the trace/span bookkeeping. Produced by
/// [`Kernel::metrics_snapshot`](crate::Kernel::metrics_snapshot); rendered
/// by [`prometheus_text`] and [`json_text`].
#[derive(Debug, Clone)]
pub struct KernelSnapshot {
    /// Control-plane counters.
    pub metrics: MetricsSnapshot,
    /// Process-wide payload (bytes-moved) counters.
    pub payload: PayloadSnapshot,
    /// Process-wide stream gauges.
    pub stream: StreamSnapshot,
    /// Per-(Eject, op) latency summaries (empty unless histograms are on).
    pub stages: Vec<StageSummary>,
    /// Events evicted from the kernel trace ring.
    pub trace_dropped: u64,
    /// Spans currently held in the span store.
    pub spans_recorded: u64,
    /// Spans evicted from the span store.
    pub spans_dropped: u64,
    /// Density-plane gauges: resident/parked Ejects, steal count, worker
    /// pool state (all zero in `threads` execution mode).
    pub sched: SchedSnapshot,
    /// Durability-plane gauges from the stable store backend: segment
    /// count, log bytes, compactions and fsyncs (all zero for memory
    /// backends).
    pub stable: crate::stable::StableStats,
    /// Overload-plane gauges: mailbox occupancy across active Ejects.
    pub mailbox: MailboxSnapshot,
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The counters of a [`KernelSnapshot`] as (metric name, help, value) rows —
/// the single source both text renderers draw from.
fn counter_rows(snap: &KernelSnapshot) -> Vec<(&'static str, &'static str, u64)> {
    let m = &snap.metrics;
    let p = &snap.payload;
    vec![
        ("eden_invocations_total", "Logical invocations sent", m.invocations),
        ("eden_remote_invocations_total", "Invocation deliveries that crossed simulated nodes", m.remote_invocations),
        ("eden_replies_total", "Replies delivered", m.replies),
        ("eden_deferred_replies_total", "Replies parked as passive output", m.deferred_replies),
        ("eden_internal_messages_total", "Intra-Eject process messages", m.internal_messages),
        ("eden_bytes_invoked_total", "Payload bytes sent with invocations", m.bytes_invoked),
        ("eden_bytes_replied_total", "Payload bytes returned with replies", m.bytes_replied),
        ("eden_ejects_created_total", "Ejects created", m.ejects_created),
        ("eden_activations_total", "Eject activations (including reactivations)", m.activations),
        ("eden_deactivations_total", "Explicit deactivations", m.deactivations),
        ("eden_checkpoints_total", "Checkpoints written", m.checkpoints),
        ("eden_crashes_total", "Simulated fail-stop crashes", m.crashes),
        ("eden_route_cache_hits_total", "Invocations delivered via a cached route", m.route_cache_hits),
        ("eden_route_cache_misses_total", "Invocations that resolved through the registry", m.route_cache_misses),
        ("eden_retries_total", "Invocation re-sends by the retry policy", m.retries),
        ("eden_faults_injected_total", "Faults injected on the invocation path", m.faults_injected),
        ("eden_reactivations_total", "Activations from a passive representation", m.reactivations),
        ("eden_recovered_streams_total", "Stream stages resumed from a checkpoint", m.recovered_streams),
        ("eden_invocation_successes_total", "Logical invocations that terminally succeeded", m.successes),
        ("eden_invocation_fatal_failures_total", "Logical invocations that terminally failed", m.fatal_failures),
        ("eden_payload_bytes_moved_total", "Payload bytes physically copied", p.payload_bytes_moved),
        ("eden_payload_copies_total", "Deep-copy events", p.payload_copies),
        ("eden_payload_cow_breaks_total", "Copy-on-write breaks", p.cow_breaks),
        ("eden_payload_shares_total", "Reference-bump shares", p.payload_shares),
        ("eden_stream_records_emitted_total", "Records that entered the stream fabric", snap.stream.records_emitted),
        ("eden_stream_records_collected_total", "Records that reached a sink collector", snap.stream.records_collected),
        ("eden_trace_events_dropped_total", "Events evicted from the kernel trace ring", snap.trace_dropped),
        ("eden_spans_dropped_total", "Spans evicted from the span store", snap.spans_dropped),
        ("eden_sched_steals_total", "Tasks stolen from another worker's run-queue shard", snap.sched.sched_steals),
        ("eden_stable_compactions_total", "Completed stable-log compaction passes", snap.stable.compactions),
        ("eden_stable_fsyncs_total", "fsync calls issued by the stable-log committer", snap.stable.fsyncs),
    ]
}

/// The `eden_mailbox_sheds_total` family as (policy label, value) rows, one
/// per shed cause. Rendered with a `policy` label rather than four separate
/// metric names so dashboards can sum and facet the family directly.
fn shed_rows(snap: &KernelSnapshot) -> [(&'static str, u64); 4] {
    let m = &snap.metrics;
    [
        ("deadline-drop", m.sheds_expired),
        ("park-timeout", m.sheds_park_timeout),
        ("reject-newest", m.sheds_newest),
        ("reject-oldest", m.sheds_oldest),
    ]
}

fn gauge_rows(snap: &KernelSnapshot) -> Vec<(&'static str, &'static str, u64)> {
    vec![
        ("eden_stream_records_in_flight", "Records emitted but not yet collected", snap.stream.records_in_flight()),
        ("eden_streams_active", "Streams currently open", snap.stream.streams_active()),
        ("eden_spans_recorded", "Spans currently held in the span store", snap.spans_recorded),
        ("eden_resident_ejects", "Scheduler-mode Ejects currently resident (parked or runnable)", snap.sched.resident_ejects),
        ("eden_parked_ejects", "Scheduler-mode Ejects parked on an empty mailbox", snap.sched.parked_ejects),
        ("eden_sched_workers", "Live scheduler worker threads", snap.sched.workers),
        ("eden_sched_workers_blocked", "Scheduler workers inside a blocking rendezvous", snap.sched.workers_blocked),
        ("eden_sched_workers_idle", "Scheduler workers registered in the sleep protocol", snap.sched.workers_idle),
        ("eden_sched_wake_tokens", "Wake notifies counted but not yet consumed by a woken worker", snap.sched.wake_tokens),
        ("eden_sched_queued_tasks", "Tasks visible in dispatch queues (injector + deques + LIFO slots)", snap.sched.queued_tasks),
        ("eden_mailboxes_active", "Active Eject mailboxes at sample time", snap.mailbox.mailboxes),
        ("eden_mailbox_queued", "Envelopes queued across all active mailboxes", snap.mailbox.queued_total),
        ("eden_mailbox_queue_depth_max", "Deepest single active mailbox at sample time", snap.mailbox.queued_max),
        ("eden_stable_records", "Passive representations currently in the stable store", snap.stable.records),
        ("eden_stable_segments_live", "Stable-log segment files currently live", snap.stable.segments_live),
        ("eden_stable_log_bytes", "Bytes across all live stable-log segments", snap.stable.log_bytes),
    ]
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers, counters suffixed `_total`, stage
/// latencies as summaries with `quantile` labels, all in seconds.
pub fn prometheus_text(snap: &KernelSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in counter_rows(snap) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
    }
    out.push_str(concat!(
        "# HELP eden_mailbox_sheds_total Invocations shed by mailbox admission control\n",
        "# TYPE eden_mailbox_sheds_total counter\n",
    ));
    for (policy, value) in shed_rows(snap) {
        out.push_str(&format!("eden_mailbox_sheds_total{{policy=\"{policy}\"}} {value}\n"));
    }
    for (name, help, value) in gauge_rows(snap) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
    }
    type HistPicker = fn(&StageSummary) -> &Histogram;
    let pickers: [(&str, &str, HistPicker); 3] = [
        (
            "eden_stage_queue_seconds",
            "Mailbox wait per (Eject, op)",
            |s| &s.queue,
        ),
        (
            "eden_stage_sched_seconds",
            "Run-queue wait per (Eject, op), scheduler mode only",
            |s| &s.sched,
        ),
        (
            "eden_stage_service_seconds",
            "Service time (dequeue to reply) per (Eject, op)",
            |s| &s.service,
        ),
    ];
    for (name, help, pick) in pickers {
        if snap.stages.is_empty() {
            continue;
        }
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
        for stage in &snap.stages {
            let hist = pick(stage);
            let eject = escape_label(&stage.target.to_string());
            let op = escape_label(stage.op.as_str());
            for (q, v) in [(0.5, hist.p50_ns()), (0.99, hist.p99_ns())] {
                out.push_str(&format!(
                    "{name}{{eject=\"{eject}\",op=\"{op}\",quantile=\"{q}\"}} {}\n",
                    v as f64 / 1e9
                ));
            }
            out.push_str(&format!(
                "{name}_sum{{eject=\"{eject}\",op=\"{op}\"}} {}\n",
                hist.sum_ns as f64 / 1e9
            ));
            out.push_str(&format!(
                "{name}_count{{eject=\"{eject}\",op=\"{op}\"}} {}\n",
                hist.count()
            ));
        }
    }
    out
}

/// Render a snapshot as a JSON object mirroring [`prometheus_text`]'s
/// content: `counters`, `gauges`, and a `stages` array with p50/p99 for
/// queue wait and service time (nanoseconds).
pub fn json_text(snap: &KernelSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let counters = counter_rows(snap);
    for (i, (name, _, value)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!("{sep}\n    \"{name}\": {value}"));
    }
    out.push_str("\n  },\n  \"eden_mailbox_sheds_total\": {");
    for (i, (policy, value)) in shed_rows(snap).iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!("{sep}\n    \"{policy}\": {value}"));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = gauge_rows(snap);
    for (i, (name, _, value)) in gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!("{sep}\n    \"{name}\": {value}"));
    }
    out.push_str("\n  },\n  \"stages\": [");
    for (i, stage) in snap.stages.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "{}\n    {{\"eject\": \"{}\", \"op\": \"{}\", \"count\": {}, ",
                "\"queue_p50_ns\": {}, \"queue_p99_ns\": {}, ",
                "\"sched_p50_ns\": {}, \"sched_p99_ns\": {}, ",
                "\"service_p50_ns\": {}, \"service_p99_ns\": {}}}"
            ),
            sep,
            escape_json(&stage.target.to_string()),
            escape_json(stage.op.as_str()),
            stage.count,
            stage.queue.p50_ns(),
            stage.queue.p99_ns(),
            stage.sched.p50_ns(),
            stage.sched.p99_ns(),
            stage.service.p50_ns(),
            stage.service.p99_ns(),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Render spans as Chrome `trace_event` JSON (the format `chrome://tracing`
/// and Perfetto open): one complete (`"X"`) event per invocation, rows keyed
/// by target Eject, with the causal coordinates in `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "{}\n  {{\"name\":\"{}\",\"cat\":\"invocation\",\"ph\":\"X\",",
                "\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},",
                "\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"hop\":{},",
                "\"target\":\"{}\",\"queue_us\":{},\"sched_us\":{},",
                "\"from_node\":{},\"to_node\":{},\"ok\":{}}}}}"
            ),
            sep,
            escape_json(s.op.as_str()),
            s.start_ns / 1_000,
            ((s.queue_ns + s.sched_ns + s.service_ns) / 1_000).max(1),
            s.trace,
            s.target.seq(),
            s.trace,
            s.span,
            s.parent.map_or_else(|| "null".to_owned(), |p| p.to_string()),
            s.hop,
            escape_json(&s.target.to_string()),
            s.queue_ns / 1_000,
            s.sched_ns / 1_000,
            s.from.0,
            s.to.0,
            s.ok,
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_order() {
        let mut h = Histogram::new();
        for ns in [10, 12, 14, 100, 5_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.p50_ns();
        let p99 = h.p99_ns();
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        // The median sample (14) lives in bucket [8, 16); its upper bound.
        assert_eq!(p50, 16);
        // The top sample (5000) lives in [4096, 8192).
        assert_eq!(p99, 8192);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(8);
        b.record(8);
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.p99_ns(), 2048);
    }

    #[test]
    fn span_store_bounds_and_counts_drops() {
        let plane = ObsPlane::new(ObsConfig {
            spans: true,
            histograms: false,
            span_capacity: OBS_SHARDS, // one slot per shard
        });
        let uid = Uid::fresh();
        for _ in 0..3 {
            let tag = ObsTag::new(
                Arc::new(ObsPlane::new(ObsConfig::off())), // unused by complete()
                SpanContext::root(),
                uid,
                OpName::from("Transfer"),
                NodeId(0),
                NodeId(0),
            );
            plane.complete(&tag, true);
            // (ObsTag::new zero-initialises sched_ns; threads-mode spans
            // always carve a zero sched stage.)
        }
        // All three landed in the same shard (same uid) with capacity 1.
        assert_eq!(plane.spans().len(), 1);
        assert_eq!(plane.spans_dropped(), 2);
    }

    #[test]
    fn renderers_cover_every_counter() {
        let snap = KernelSnapshot {
            metrics: MetricsSnapshot::default(),
            payload: PayloadSnapshot::default(),
            stream: StreamSnapshot::default(),
            stages: Vec::new(),
            trace_dropped: 0,
            spans_recorded: 0,
            spans_dropped: 0,
            sched: SchedSnapshot::default(),
            stable: crate::stable::StableStats::default(),
            mailbox: MailboxSnapshot::default(),
        };
        let prom = prometheus_text(&snap);
        let json = json_text(&snap);
        for (name, _, _) in counter_rows(&snap) {
            assert!(prom.contains(name), "prometheus missing {name}");
            assert!(json.contains(name), "json missing {name}");
        }
        for (policy, _) in shed_rows(&snap) {
            let sample = format!("eden_mailbox_sheds_total{{policy=\"{policy}\"}}");
            assert!(prom.contains(&sample), "prometheus missing {sample}");
            assert!(json.contains(policy), "json missing shed policy {policy}");
        }
        assert!(prom.contains("# TYPE eden_invocations_total counter"));
        assert!(prom.contains("# TYPE eden_mailbox_sheds_total counter"));
        assert!(prom.contains("# TYPE eden_streams_active gauge"));
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = vec![SpanRecord {
            trace: 7,
            span: 8,
            parent: None,
            hop: 0,
            target: Uid::fresh(),
            op: OpName::from("Transfer"),
            from: NodeId(0),
            to: NodeId(1),
            start_ns: 2_000,
            queue_ns: 1_000,
            sched_ns: 500,
            service_ns: 3_000,
            ok: true,
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"parent\":null"));
        assert!(json.contains("\"trace\":7"));
    }
}
