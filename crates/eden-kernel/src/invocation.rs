//! Invocations and replies.
//!
//! "An invocation is a request to perform some named operation, and may be
//! thought of as a kind of remote procedure call" (§1). Two properties of
//! Eden invocation shape this module:
//!
//! 1. **Sending does not suspend the sender** — so [`PendingReply`] is a
//!    handle the sender may hold while doing other work (or wait on
//!    immediately, recovering synchronous RPC).
//! 2. **Replies are first-class on the receiving side** — an Eject may park
//!    a [`ReplyHandle`] and reply long after the handling code returned.
//!    This "deferred reply" is precisely the paper's *passive output*: a
//!    source sits on outstanding `Read` invocations ("a partial vacuum, in
//!    the form of outstanding read invocations") and answers them when data
//!    becomes available.
//!
//! The invoker's identity is deliberately absent from [`Invocation`]: §5 of
//! the paper argues that "the effect of a particular invocation ought to
//! depend only on its parameters, and not on the identity of the invoker",
//! since consulting the sender would prohibit dynamic redirection.

use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use eden_core::{EdenError, Metrics, OpName, Result, Uid, Value};

/// The default deadline used by synchronous waits. Generous enough that it
/// only fires on genuine deadlock or teardown, not on slow machines.
pub const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// A request to perform a named operation with a parameter value.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The operation name.
    pub op: OpName,
    /// The operation parameter (often a record).
    pub arg: Value,
}

impl Invocation {
    /// Build an invocation.
    pub fn new(op: impl Into<OpName>, arg: Value) -> Self {
        Invocation {
            op: op.into(),
            arg,
        }
    }
}

/// The replying half of an invocation. Consumed by [`ReplyHandle::reply`].
///
/// If the handle is dropped without replying — the Eject crashed, was shut
/// down, or simply forgot — the waiting party receives
/// [`EdenError::EjectCrashed`] rather than hanging.
#[derive(Debug)]
pub struct ReplyHandle {
    tx: Option<Sender<Result<Value>>>,
    responder: Uid,
    metrics: Metrics,
    /// Observability tag attached by the kernel dispatch path when the
    /// observability plane is enabled. Inline, not boxed: the tag is built
    /// and dropped once per delivered invocation, and a heap round trip
    /// there is measurable on the reply path, while the extra handle bytes
    /// cost only a slightly larger memcpy into the mailbox.
    obs: Option<crate::obs::ObsTag>,
    /// When true, resolving this handle settles the outcome ledger
    /// (`successes` / `fatal_failures`). The kernel sets it for plain
    /// invocations; driver-owned (retrying) invocations keep it false and
    /// let the driver meter the *terminal* outcome exactly once.
    meter_outcome: bool,
    /// The invocation's overall deadline as an absolute instant, when one
    /// was set via `InvokeOptions::deadline`. Admission control reads it on
    /// the send path: a `Park` sender bounds its wait for mailbox space by
    /// it, and `DeadlineDrop` evicts queued envelopes once it has passed.
    admit_by: Option<std::time::Instant>,
}

impl ReplyHandle {
    /// Deliver the reply, consuming the handle.
    pub fn reply(mut self, result: Result<Value>) {
        if let Some(tx) = self.tx.take() {
            let bytes = match &result {
                Ok(v) => v.size_hint(),
                Err(_) => 0,
            };
            self.metrics.record_reply(bytes);
            self.settle(result.is_ok());
            // The waiter may have given up (timeout); that is not an error
            // on the replying side.
            let _ = tx.send(result);
        }
    }

    /// Settle the outcome ledger and complete the observability span.
    /// Idempotent by construction: callers reach it only from the branch
    /// that took `tx`, and the span tag is `take`n.
    fn settle(&mut self, ok: bool) {
        self.settle_ledger(ok);
        self.settle_obs(ok);
    }

    fn settle_ledger(&mut self, ok: bool) {
        if self.meter_outcome {
            if ok {
                self.metrics.record_success();
            } else {
                self.metrics.record_fatal_failure();
            }
        }
    }

    fn settle_obs(&mut self, ok: bool) {
        if let Some(tag) = self.obs.take() {
            tag.plane.complete(&tag, ok);
        }
    }

    /// Attach the observability tag (kernel dispatch path only).
    pub(crate) fn set_obs(&mut self, tag: crate::obs::ObsTag) {
        self.obs = Some(tag);
    }

    /// Opt this handle into outcome-ledger metering (kernel dispatch path,
    /// non-driver invocations only).
    pub(crate) fn set_meter_outcome(&mut self) {
        self.meter_outcome = true;
    }

    /// Stamp the invocation's absolute deadline (kernel dispatch path,
    /// deadline-bearing invocations only).
    pub(crate) fn set_admit_by(&mut self, admit_by: std::time::Instant) {
        self.admit_by = Some(admit_by);
    }

    /// The invocation's absolute deadline, if one was set.
    pub(crate) fn admit_by(&self) -> Option<std::time::Instant> {
        self.admit_by
    }

    /// Mark the moment a coordinator picked this invocation out of its
    /// mailbox: splits queue wait from service time, and returns a guard
    /// installing the invocation's span as the thread's ambient span (so
    /// invocations sent *while handling this one* become its children).
    pub(crate) fn begin_service(&mut self) -> Option<eden_core::span::AmbientGuard> {
        self.begin_service_at(None)
    }

    /// As [`begin_service`](Self::begin_service), with the scheduler's
    /// resume instants: `(rq_enq, pickup)` are when the owning task was
    /// pushed onto the run queue and when a worker picked it up. The slice
    /// of queue time between those two — bounded below by the envelope's
    /// own enqueue time, since an envelope delivered to an already-queued
    /// task waited for less than the whole run-queue stint — is attributed
    /// to `sched_wait` rather than mailbox queueing, keeping
    /// queue + sched + service an exact decomposition of the span.
    pub(crate) fn begin_service_at(
        &mut self,
        sched: Option<(std::time::Instant, std::time::Instant)>,
    ) -> Option<eden_core::span::AmbientGuard> {
        let tag = self.obs.as_mut()?;
        if tag.dequeued.is_none() {
            tag.dequeued = Some(std::time::Instant::now());
            if let Some((rq_enq, pickup)) = sched {
                let baseline = rq_enq.max(tag.enqueued);
                tag.sched_ns = pickup.saturating_duration_since(baseline).as_nanos() as u64;
            }
        }
        tag.plane
            .config()
            .spans
            .then(|| eden_core::span::enter(Some(tag.ctx)))
    }

    /// Note that this reply is being parked for later (metrics only).
    ///
    /// Call this when storing the handle instead of replying inline; it lets
    /// the experiments count how much passive output is in flight.
    pub fn mark_deferred(&self) {
        self.metrics.record_deferred_reply();
    }

    /// The UID of the Eject this handle belongs to (the responder).
    pub fn responder(&self) -> Uid {
        self.responder
    }

    /// Resolve the waiting side with `err` without metering a reply and
    /// without `Drop`'s crash default. The cached invocation path uses this
    /// when a stale route's target no longer exists anywhere: the uncached
    /// path reports such errors at send time without counting a reply, and
    /// the cached path must be metrically indistinguishable. The outcome
    /// ledger still settles: the logical invocation terminally failed.
    pub(crate) fn resolve_silent(mut self, err: EdenError) {
        if let Some(tx) = self.tx.take() {
            self.settle(false);
            let _ = tx.send(Err(err));
        }
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            self.settle(false);
            let _ = tx.send(Err(EdenError::EjectCrashed(self.responder)));
        }
    }
}

/// The waiting half of an invocation.
///
/// Holding a `PendingReply` costs nothing; the sender is free to perform
/// other work ("the sending of an invocation does not suspend the execution
/// of the sending Eject", §1).
#[derive(Debug)]
pub enum PendingReply {
    /// The reply will arrive on this channel.
    Waiting(Receiver<Result<Value>>),
    /// The outcome was known at send time (e.g. no such Eject).
    Ready(Option<Result<Value>>),
    /// A reply governed by a retry policy or deadline (see
    /// [`InvokeOptions`](crate::InvokeOptions)): retryable failures are
    /// re-sent by whichever wait/poll call observes them, so the sender
    /// still never suspends.
    Retrying(Box<crate::options::RetryState>),
}

impl PendingReply {
    /// A reply that is already resolved.
    pub fn ready(result: Result<Value>) -> Self {
        PendingReply::Ready(Some(result))
    }

    /// Block until the reply arrives, with the default deadline.
    pub fn wait(self) -> Result<Value> {
        self.wait_timeout(DEFAULT_REPLY_TIMEOUT)
    }

    /// Block until the reply arrives or `deadline` elapses. For a retrying
    /// reply, `deadline` bounds the whole affair — attempts, backoff
    /// pauses, and re-sends together.
    pub fn wait_timeout(self, deadline: Duration) -> Result<Value> {
        match self {
            PendingReply::Ready(mut r) => r.take().unwrap_or(Err(EdenError::Timeout)),
            // A rendezvous point: a scheduler worker waiting here counts as
            // blocked so the pool can compensate with a spare.
            PendingReply::Waiting(rx) => {
                match crate::sched::blocking(|| rx.recv_timeout(deadline)) {
                    Ok(result) => result,
                    Err(RecvTimeoutError::Timeout) => Err(EdenError::Timeout),
                    // Sender dropped without replying and without the Drop
                    // impl running (only possible on panic mid-reply).
                    Err(RecvTimeoutError::Disconnected) => Err(EdenError::KernelShutdown),
                }
            }
            PendingReply::Retrying(state) => state.wait_timeout(deadline),
        }
    }

    /// Wait up to `deadline` without consuming the handle. Returns `None`
    /// if the reply has not arrived yet; after `Some` is returned once,
    /// further polls yield `Timeout`.
    ///
    /// This is the building block for stop-aware waits: poll with a short
    /// deadline and check a stop flag between polls.
    pub fn poll_timeout(&mut self, deadline: Duration) -> Option<Result<Value>> {
        match self {
            PendingReply::Ready(r) => Some(r.take().unwrap_or(Err(EdenError::Timeout))),
            PendingReply::Waiting(rx) => {
                match crate::sched::blocking(|| rx.recv_timeout(deadline)) {
                    Ok(result) => Some(result),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => Some(Err(EdenError::KernelShutdown)),
                }
            }
            PendingReply::Retrying(state) => state.poll_timeout(deadline),
        }
    }

    /// Check for the reply without blocking. Returns `self` back if the
    /// reply has not arrived yet.
    pub fn try_wait(self) -> std::result::Result<Result<Value>, PendingReply> {
        match self {
            PendingReply::Ready(mut r) => Ok(r.take().unwrap_or(Err(EdenError::Timeout))),
            PendingReply::Waiting(rx) => match rx.try_recv() {
                Ok(result) => Ok(result),
                Err(crossbeam::channel::TryRecvError::Empty) => {
                    Err(PendingReply::Waiting(rx))
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    Ok(Err(EdenError::KernelShutdown))
                }
            },
            PendingReply::Retrying(state) => state.try_wait().map_err(PendingReply::Retrying),
        }
    }
}

/// Create a connected reply pair for an invocation of `responder`.
pub fn reply_pair(responder: Uid, metrics: Metrics) -> (ReplyHandle, PendingReply) {
    let (tx, rx) = bounded(1);
    (
        ReplyHandle {
            tx: Some(tx),
            responder,
            metrics,
            obs: None,
            meter_outcome: false,
            admit_by: None,
        },
        PendingReply::Waiting(rx),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_roundtrip() {
        let m = Metrics::new();
        let (h, p) = reply_pair(Uid::fresh(), m.clone());
        h.reply(Ok(Value::from(42)));
        assert_eq!(p.wait().unwrap(), Value::Int(42));
        assert_eq!(m.snapshot().replies, 1);
    }

    #[test]
    fn dropped_handle_yields_crash_error() {
        let u = Uid::fresh();
        let (h, p) = reply_pair(u, Metrics::new());
        drop(h);
        assert_eq!(p.wait().unwrap_err(), EdenError::EjectCrashed(u));
    }

    #[test]
    fn deferred_reply_from_another_thread() {
        let m = Metrics::new();
        let (h, p) = reply_pair(Uid::fresh(), m.clone());
        h.mark_deferred();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            h.reply(Ok(Value::str("late")));
        });
        assert_eq!(p.wait().unwrap().as_str().unwrap(), "late");
        t.join().unwrap();
        assert_eq!(m.snapshot().deferred_replies, 1);
    }

    #[test]
    fn wait_timeout_fires() {
        let (_h, p) = reply_pair(Uid::fresh(), Metrics::new());
        assert_eq!(
            p.wait_timeout(Duration::from_millis(10)).unwrap_err(),
            EdenError::Timeout
        );
    }

    #[test]
    fn try_wait_returns_pending_then_value() {
        let (h, p) = reply_pair(Uid::fresh(), Metrics::new());
        let p = match p.try_wait() {
            Err(pending) => pending,
            Ok(_) => panic!("reply should not be ready yet"),
        };
        h.reply(Ok(Value::Unit));
        match p.try_wait() {
            Ok(result) => assert_eq!(result.unwrap(), Value::Unit),
            Err(_) => panic!("reply should be ready"),
        }
    }

    #[test]
    fn ready_reply_resolves_immediately() {
        let p = PendingReply::ready(Ok(Value::from(1)));
        assert_eq!(p.wait().unwrap(), Value::Int(1));
    }

    #[test]
    fn error_replies_carry_no_bytes() {
        let m = Metrics::new();
        let (h, p) = reply_pair(Uid::fresh(), m.clone());
        h.reply(Err(EdenError::EndOfStream));
        assert_eq!(p.wait().unwrap_err(), EdenError::EndOfStream);
        assert_eq!(m.snapshot().bytes_replied, 0);
    }
}
