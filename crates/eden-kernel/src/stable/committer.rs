//! Group commit for the durable log.
//!
//! Every mutation (`store`, `remove`) becomes a ticket in a shared queue.
//! The first caller to find no leader becomes the leader and drives the
//! log: it drains the queue, assigns versions, encodes one buffer of
//! frames, appends it with a single host-fs `append`, fsyncs per policy,
//! applies the batch to the index, and wakes the waiters — then drains
//! again until the queue is empty. Callers that arrive while a leader is
//! driving just enqueue and wait: their checkpoint rides the leader's
//! next batch, which is what turns N concurrent `store()` calls into one
//! append and at most one fsync.
//!
//! The durability contract per [`FsyncPolicy`]:
//!
//! * `Always` — a returned `store()` is on stable storage (the batch was
//!   fsynced before any of its tickets completed).
//! * `EveryN(n)` — the append has happened; an fsync lands at least every
//!   `n` batches, so a crash loses at most the last `n` batches.
//! * `Interval(d)` — the append has happened; an fsync lands once `d` has
//!   elapsed since the previous one. A dedicated flush timer
//!   ([`flusher_loop`]) syncs an *idle* tail too: without it the policy
//!   only ever fsynced from inside the next `commit_batch`, so a lone
//!   `store()` followed by quiet hours stayed forever unsynced — a crash
//!   then lost a checkpoint the caller had long been told was stored.
//!
//! In every policy the *index* is updated only after a successful append,
//! so a failed `store()` can never be observed as durable by a later
//! load — checkpoint-before-reply holds all the way down. After an append
//! error the active segment is sealed: later appends go to a fresh file
//! rather than after a possibly-torn region.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

use bytes::Bytes;
use eden_core::{EdenError, Result, Uid};

use super::durable::{LogInner, SegInfo};
use super::log::{self, LogEntry};
use super::PassiveRecord;

/// When the committer fsyncs the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync every batch before completing its tickets (full durability;
    /// group commit amortises the cost across coalesced callers).
    Always,
    /// fsync at least every `n` committed batches.
    EveryN(u32),
    /// fsync once the given interval has elapsed since the last one.
    Interval(Duration),
}

/// Shutdown flag for the interval-flusher thread (under the
/// `stable-flusher` lock).
#[derive(Debug, Default)]
pub(crate) struct FlushState {
    /// The backend is being dropped.
    pub shutdown: bool,
}

/// The interval-policy flush timer: wake every `d`, and if batches were
/// committed without a sync and the interval has elapsed since the last
/// one, fsync the tail. This is what makes `Interval(d)`'s contract hold
/// when the system goes idle — `due_for_sync` is only consulted inside
/// `commit_batch`, so without this thread the *next* store was the only
/// thing that could sync the last one.
pub(crate) fn flusher_loop(inner: &LogInner) {
    let FsyncPolicy::Interval(d) = inner.cfg.fsync else {
        return;
    };
    let tick = d.max(Duration::from_millis(1));
    loop {
        {
            let mut st = inner.flush_mx.lock();
            if st.shutdown {
                return;
            }
            // eden-lint: nonblocking(dedicated flusher thread, never a pool worker)
            inner.flush_cv.wait_for(&mut st, tick);
            if st.shutdown {
                return;
            }
        }
        // Nothing appended since the last sync: the tail is already
        // stable, don't touch the filing system.
        if inner.batches_since_sync.load(Ordering::Relaxed) == 0 {
            continue;
        }
        let last = inner.last_sync_micros.load(Ordering::Relaxed);
        let now = inner.created.elapsed().as_micros() as u64;
        if now.saturating_sub(last) < d.as_micros() as u64 {
            continue;
        }
        // Best-effort: an I/O error here will be retried on the next tick
        // (and surfaced by the next store or explicit flush).
        let _ = inner.flush();
    }
}

/// One queued mutation.
#[derive(Debug)]
pub(crate) enum Op {
    /// A checkpoint.
    Put {
        /// The checkpointing Eject.
        uid: Uid,
        /// Its Eden type name.
        type_name: String,
        /// The wire-encoded state (shared; never copied on this path).
        bytes: Bytes,
    },
    /// A destruction tombstone.
    Del {
        /// The destroyed Eject.
        uid: Uid,
    },
}

#[derive(Debug)]
pub(crate) struct Pending {
    ticket: u64,
    op: Op,
}

/// The committer's shared queue state (under the `stable-committer` lock).
#[derive(Debug, Default)]
pub(crate) struct CommitQueue {
    pending: Vec<Pending>,
    /// Whether some caller is currently driving batches.
    leader: bool,
    next_ticket: u64,
    /// Every ticket ≤ this has been applied (or failed).
    complete: u64,
    /// Error messages for failed tickets, collected by their waiters.
    failed: HashMap<u64, String>,
}

impl LogInner {
    /// Enqueue `op` and see it through to completion (leading a batch if
    /// nobody else is). Returns once the mutation is applied per the
    /// fsync policy's contract, or with the append/sync error.
    pub(crate) fn submit(&self, op: Op) -> Result<()> {
        let ticket;
        {
            let mut q = self.commit.lock();
            ticket = q.next_ticket;
            q.next_ticket += 1;
            q.pending.push(Pending { ticket, op });
            if q.leader {
                // A leader is driving; our ticket rides its next batch.
                while q.complete < ticket {
                    crate::sched::blocking(|| self.commit_done.wait(&mut q));
                }
                return match q.failed.remove(&ticket) {
                    Some(msg) => Err(EdenError::HostFs(msg)),
                    None => Ok(()),
                };
            }
            q.leader = true;
        }
        self.lead(ticket)
    }

    /// Drive batches until the queue drains; called with the leader flag
    /// set and no locks held.
    fn lead(&self, own_ticket: u64) -> Result<()> {
        let mut own_result = Ok(());
        loop {
            let batch = {
                let mut q = self.commit.lock();
                if q.pending.is_empty() {
                    q.leader = false;
                    self.commit_done.notify_all();
                    break;
                }
                std::mem::take(&mut q.pending)
            };
            let outcome = self.commit_batch(&batch);
            {
                let mut q = self.commit.lock();
                let last = batch.last().map_or(q.complete, |p| p.ticket);
                if let Err(e) = &outcome {
                    let msg = e.to_string();
                    for p in &batch {
                        if p.ticket == own_ticket {
                            own_result = Err(EdenError::HostFs(msg.clone()));
                        } else {
                            q.failed.insert(p.ticket, msg.clone());
                        }
                    }
                }
                if q.complete < last {
                    q.complete = last;
                }
                self.commit_done.notify_all();
            }
        }
        own_result
    }

    /// Append one batch to the active segment, fsync per policy, and
    /// apply it to the index. All-or-nothing per batch: on error the
    /// index is untouched and the active segment is sealed.
    fn commit_batch(&self, batch: &[Pending]) -> Result<()> {
        // Version assignment must linearise with log-append order, and
        // the single leader is the only appender, so assigning under a
        // brief index lock (and applying later in the same batch) is
        // race-free.
        let mut buf = Vec::new();
        let mut entries: Vec<(LogEntry, u64)> = Vec::with_capacity(batch.len());
        let seg = {
            let idx = self.index.lock();
            let mut assigned: HashMap<Uid, u64> = HashMap::new();
            for p in batch {
                let uid = match &p.op {
                    Op::Put { uid, .. } | Op::Del { uid } => *uid,
                };
                let base = assigned
                    .get(&uid)
                    .copied()
                    .or_else(|| idx.records.get(&uid).map(|e| e.record.version))
                    .or_else(|| idx.tombstones.get(&uid).copied())
                    .unwrap_or(0);
                let version = base + 1;
                assigned.insert(uid, version);
                let entry = match &p.op {
                    Op::Put {
                        uid,
                        type_name,
                        bytes,
                    } => LogEntry::Put {
                        uid: *uid,
                        record: PassiveRecord {
                            type_name: type_name.clone(),
                            // Shared buffer: framing writes the bytes into
                            // the append buffer, the index aliases them.
                            bytes: bytes.clone(),
                            version,
                        },
                    },
                    Op::Del { uid } => LogEntry::Del { uid: *uid, version },
                };
                let frame = log::encode_frame(&entry, &mut buf);
                entries.push((entry, frame));
            }
            idx.active_seg
        };

        // The slow half — append and maybe fsync — runs outside every
        // lock, under the scheduler's blocking compensation so a worker
        // stuck in fsync doesn't starve the Eject pool.
        let path = log::segment_name(seg);
        let sync_now = self.due_for_sync();
        let io = crate::sched::blocking(|| -> Result<()> {
            self.fs.append(&path, &buf)?;
            if sync_now {
                self.fs.sync(&path)?;
            }
            Ok(())
        });
        if let Err(e) = io {
            // The file may hold a torn region; seal it so the next batch
            // starts a fresh segment. Replay tolerates the tear.
            let mut idx = self.index.lock();
            let sealed = idx.next_seg;
            idx.next_seg += 1;
            idx.active_seg = sealed;
            idx.active_len = 0;
            idx.segments.insert(sealed, SegInfo::default());
            return Err(e);
        }
        if sync_now {
            self.count_fsync();
        } else {
            self.batches_since_sync.fetch_add(1, Ordering::Relaxed);
        }

        // Apply to the index: from here the new versions are loadable.
        let appended = buf.len() as u64;
        let mut wake_compactor = false;
        {
            let mut idx = self.index.lock();
            for (entry, frame) in entries {
                match entry {
                    LogEntry::Put { uid, record } => {
                        if let Some(prev) = idx.records.get(&uid).cloned() {
                            if let Some(info) = idx.segments.get_mut(&prev.seg) {
                                info.live_bytes = info.live_bytes.saturating_sub(prev.frame_bytes);
                                info.live_records = info.live_records.saturating_sub(1);
                            }
                        }
                        idx.tombstones.remove(&uid);
                        idx.records.insert(
                            uid,
                            super::durable::IndexEntry {
                                record,
                                seg,
                                frame_bytes: frame,
                            },
                        );
                        let info = idx.segments.entry(seg).or_default();
                        info.total_bytes += frame;
                        info.live_bytes += frame;
                        info.live_records += 1;
                    }
                    LogEntry::Del { uid, version } => {
                        if let Some(prev) = idx.records.remove(&uid) {
                            if let Some(info) = idx.segments.get_mut(&prev.seg) {
                                info.live_bytes = info.live_bytes.saturating_sub(prev.frame_bytes);
                                info.live_records = info.live_records.saturating_sub(1);
                            }
                        }
                        idx.tombstones.insert(uid, version);
                        idx.segments.entry(seg).or_default().total_bytes += frame;
                    }
                }
            }
            idx.active_len += appended;
            if idx.active_len >= self.cfg.segment_bytes {
                let fresh = idx.next_seg;
                idx.next_seg += 1;
                idx.active_seg = fresh;
                idx.active_len = 0;
                idx.segments.insert(fresh, SegInfo::default());
            }
            if self.cfg.auto_compact {
                let active = idx.active_seg;
                let garbage: u64 = idx
                    .segments
                    .iter()
                    .filter(|(s, _)| **s != active)
                    .map(|(_, i)| i.total_bytes.saturating_sub(i.live_bytes))
                    .sum();
                wake_compactor = garbage >= self.cfg.compact_garbage_bytes;
            }
        }
        if wake_compactor {
            let mut st = self.compact_mx.lock();
            st.wake = true;
            drop(st);
            self.compact_cv.notify_all();
        }
        Ok(())
    }

    /// Whether the policy calls for an fsync on the batch being built.
    fn due_for_sync(&self) -> bool {
        match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.batches_since_sync.load(Ordering::Relaxed) + 1 >= n.max(1)
            }
            FsyncPolicy::Interval(d) => {
                let last = self.last_sync_micros.load(Ordering::Relaxed);
                self.created.elapsed().as_micros() as u64 - last >= d.as_micros() as u64
            }
        }
    }

    /// Wait out any in-flight leader, then fsync the active segment.
    pub(crate) fn flush(&self) -> Result<()> {
        let mut q = self.commit.lock();
        while q.leader {
            crate::sched::blocking(|| self.commit_done.wait(&mut q));
        }
        // Holding the queue lock keeps new batches out while the tail
        // goes stable.
        let path = {
            let idx = self.index.lock();
            log::segment_name(idx.active_seg)
        };
        if self.fs.exists(&path) {
            crate::sched::blocking(|| self.fs.sync(&path))?;
            self.count_fsync();
        }
        drop(q);
        Ok(())
    }
}
