//! Background compaction for the durable log.
//!
//! Overwritten checkpoints and tombstoned records leave dead frames in
//! sealed segments. The compactor rewrites a victim set's *live* records
//! (plus the current tombstone set) into one fresh segment, re-points the
//! index at the copies, and deletes the victims. Correctness never
//! depends on where the fresh segment sorts: replay keeps the highest
//! version per UID, and a compacted copy carries its original version, so
//! it can never beat a newer append that landed concurrently.
//!
//! Two entry points share [`LogInner::compact_once`]:
//!
//! * the background thread ([`compactor_loop`]), woken by the committer
//!   when dead bytes across sealed segments cross the configured
//!   threshold — it takes any sealed segment that is at least half dead;
//! * the explicit [`StableBackend::compact`] hook, which seals the
//!   active segment first and then takes *every* sealed segment, giving
//!   tests and benches a deterministic "log is now minimal" point.
//!
//! [`StableBackend::compact`]: super::StableBackend::compact

use eden_core::{Result, Uid};

use super::durable::{LogInner, SegInfo};
use super::log::{self, LogEntry};
use super::PassiveRecord;

/// Wake/shutdown flags for the compactor thread (under the
/// `stable-compactor` lock).
#[derive(Debug, Default)]
pub(crate) struct CompactState {
    /// The committer saw enough sealed garbage to warrant a pass.
    pub wake: bool,
    /// The backend is being dropped.
    pub shutdown: bool,
}

/// The background thread: park until woken, compact, repeat.
pub(crate) fn compactor_loop(inner: &LogInner) {
    loop {
        {
            let mut st = inner.compact_mx.lock();
            while !st.wake && !st.shutdown {
                // eden-lint: nonblocking(dedicated compactor thread, never a pool worker)
                inner.compact_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            st.wake = false;
        }
        // Best-effort: an I/O error leaves the victims in place and the
        // index consistent; the next wake retries.
        let _ = inner.compact_once(false);
    }
}

impl LogInner {
    /// One compaction pass. `aggressive` seals the active segment first
    /// and rewrites every sealed segment; otherwise only segments at
    /// least half dead (or fully dead) are taken. Returns the bytes
    /// reclaimed.
    pub(crate) fn compact_once(&self, aggressive: bool) -> Result<u64> {
        // Phase 1 (brief index lock): pick victims, snapshot their live
        // records and the tombstone set, reserve an output segment.
        let (victims, live, tombs, out_seg) = {
            let mut idx = self.index.lock();
            if aggressive && idx.active_len > 0 {
                let fresh = idx.next_seg;
                idx.next_seg += 1;
                idx.active_seg = fresh;
                idx.active_len = 0;
                idx.segments.insert(fresh, SegInfo::default());
            }
            let active = idx.active_seg;
            let victims: Vec<u64> = idx
                .segments
                .iter()
                .filter(|(seq, info)| {
                    **seq != active
                        && (aggressive
                            || info.live_records == 0
                            || info.live_bytes * 2 <= info.total_bytes)
                })
                .map(|(seq, _)| *seq)
                .collect();
            if victims.is_empty() {
                return Ok(0);
            }
            let live: Vec<(Uid, PassiveRecord)> = idx
                .records
                .iter()
                .filter(|(_, e)| victims.contains(&e.seg))
                .map(|(u, e)| (*u, e.record.clone()))
                .collect();
            // Every tombstone rides along: a tombstone frame may live in
            // a victim while the put it kills survives in an older
            // segment, and dropping it would resurrect the record on
            // replay. Rewriting the full set is correct (replay takes
            // the max version) and the set only holds destroyed UIDs.
            let tombs: Vec<(Uid, u64)> = idx.tombstones.iter().map(|(u, v)| (*u, *v)).collect();
            let out_seg = idx.next_seg;
            idx.next_seg += 1;
            (victims, live, tombs, out_seg)
        };

        // Phase 2 (no locks): write the replacement segment whole, then
        // sync it — the victims are only deleted after their live data
        // is stable elsewhere.
        let mut buf = Vec::new();
        let mut frames: Vec<(Uid, u64, u64)> = Vec::with_capacity(live.len());
        for (uid, record) in &live {
            let version = record.version;
            let frame = log::encode_frame(
                &LogEntry::Put {
                    uid: *uid,
                    record: record.clone(),
                },
                &mut buf,
            );
            frames.push((*uid, version, frame));
        }
        for (uid, version) in &tombs {
            log::encode_frame(
                &LogEntry::Del {
                    uid: *uid,
                    version: *version,
                },
                &mut buf,
            );
        }
        let out_path = log::segment_name(out_seg);
        if !buf.is_empty() {
            self.fs.write(&out_path, &buf)?;
            // eden-lint: nonblocking(compactor thread or teardown flush, off the pool)
            self.fs.sync(&out_path)?;
            self.count_fsync();
        }

        // Phase 3 (brief index lock): re-point records that still match
        // the compacted copy — a record updated or removed concurrently
        // keeps its newer home and the stale copy is garbage on arrival.
        let reclaimed = {
            let mut idx = self.index.lock();
            let mut out_info = SegInfo {
                total_bytes: buf.len() as u64,
                ..SegInfo::default()
            };
            for (uid, version, frame) in frames {
                if let Some(e) = idx.records.get_mut(&uid) {
                    if victims.contains(&e.seg) && e.record.version == version {
                        e.seg = out_seg;
                        e.frame_bytes = frame;
                        out_info.live_bytes += frame;
                        out_info.live_records += 1;
                    }
                }
            }
            if !buf.is_empty() {
                idx.segments.insert(out_seg, out_info);
            }
            let mut reclaimed = 0u64;
            for victim in &victims {
                if let Some(info) = idx.segments.remove(victim) {
                    reclaimed += info.total_bytes;
                }
            }
            reclaimed
        };

        // Phase 4 (no locks): drop the victim files. Best-effort — a
        // leftover file is replayed and found fully dead next open.
        for victim in &victims {
            let _ = self.fs.remove(&log::segment_name(*victim));
        }
        self.compactions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(reclaimed.saturating_sub(buf.len() as u64))
    }
}
