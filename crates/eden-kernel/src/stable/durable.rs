//! The log-structured durable backend.
//!
//! [`DurableLog`] keeps every live passive representation in an in-memory
//! index (load/contains are lock-and-look, same as [`MemBacked`]) and
//! makes each mutation durable by appending a CRC-framed record to the
//! active segment before the index is updated — checkpoint-before-reply
//! extends all the way to the filing system. Concurrent `store()` calls
//! coalesce through the group committer (one append, at most one fsync per
//! batch; see [`committer`](super::committer)); a background thread
//! compacts sealed segments once their garbage crosses a threshold (see
//! [`compact`](super::compact)); and `open` replays the segments back
//! into the index, truncating a torn tail (see [`replay`](super::replay)).
//!
//! All I/O goes through [`HostFs`], so tests and loom models run the
//! identical code path over `MemFs` that production runs over `RealFs`.
//!
//! [`MemBacked`]: super::MemBacked
//! [`HostFs`]: eden_core::HostFs

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

use bytes::Bytes;
use eden_core::{HostFsHandle, Result, Uid};
use parking_lot::{Condvar, Mutex};

use super::committer::{CommitQueue, FlushState, FsyncPolicy, Op};
use super::compact::CompactState;
use super::{replay, PassiveRecord, StableBackend, StableStats};

/// Tuning for [`DurableLog`].
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// When the committer fsyncs the active segment.
    pub fsync: FsyncPolicy,
    /// Roll to a fresh segment once the active one exceeds this.
    pub segment_bytes: u64,
    /// Wake the background compactor once the dead bytes across sealed
    /// segments exceed this.
    pub compact_garbage_bytes: u64,
    /// Run the background compactor thread. Explicit
    /// [`StableBackend::compact`] calls work either way.
    pub auto_compact: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 << 20,
            compact_garbage_bytes: 1 << 20,
            auto_compact: true,
        }
    }
}

impl DurableConfig {
    /// The default configuration with an explicit fsync policy.
    pub fn with_fsync(fsync: FsyncPolicy) -> Self {
        DurableConfig {
            fsync,
            ..DurableConfig::default()
        }
    }
}

/// Where one live record sits in the log.
#[derive(Clone, Debug)]
pub(crate) struct IndexEntry {
    /// The record itself (loads never touch the filing system).
    pub record: PassiveRecord,
    /// The segment holding its latest frame.
    pub seg: u64,
    /// That frame's byte length (for live-bytes accounting).
    pub frame_bytes: u64,
}

/// Per-segment accounting.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SegInfo {
    /// Bytes of frames whose records are still live.
    pub live_bytes: u64,
    /// Bytes of valid frames in the file.
    pub total_bytes: u64,
    /// Number of live records pointing here.
    pub live_records: u64,
}

/// The mutable index: UID → latest record, plus segment bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct IndexState {
    /// Live records.
    pub records: HashMap<Uid, IndexEntry>,
    /// Destroyed UIDs and their tombstone versions (a later `Put` must
    /// out-version the tombstone to win on replay).
    pub tombstones: HashMap<Uid, u64>,
    /// Accounting per segment file present on the filing system.
    pub segments: BTreeMap<u64, SegInfo>,
    /// The segment currently taking appends.
    pub active_seg: u64,
    /// Valid bytes in the active segment.
    pub active_len: u64,
    /// Next unused segment sequence number (rolls and compaction outputs
    /// both draw from here, so names never collide).
    pub next_seg: u64,
}

/// Everything the committer, compactor and backend methods share.
pub(crate) struct LogInner {
    /// The filing system under the log (its root is the log directory).
    pub fs: HostFsHandle,
    /// Tuning knobs.
    pub cfg: DurableConfig,
    /// Group-commit queue. Lock class `stable-committer`.
    pub commit: Mutex<CommitQueue>,
    /// Signals ticket completion (and leader retirement) to waiters.
    pub commit_done: Condvar,
    /// The record index. Lock class `stable-index`.
    pub index: Mutex<IndexState>,
    /// Compactor wake/shutdown flags. Lock class `stable-compactor`.
    pub compact_mx: Mutex<CompactState>,
    /// Wakes the compactor thread.
    pub compact_cv: Condvar,
    /// Interval-flusher shutdown flag. Lock class `stable-flusher`.
    pub flush_mx: Mutex<FlushState>,
    /// Wakes (shuts down) the interval-flusher thread.
    pub flush_cv: Condvar,
    /// fsync calls issued (committer, compactor, flush).
    pub fsyncs: AtomicU64,
    /// Completed compaction passes.
    pub compactions: AtomicU64,
    /// Committed batches since the last fsync (for `FsyncPolicy::EveryN`).
    pub batches_since_sync: AtomicU32,
    /// Microseconds from `created` to the last fsync (for
    /// `FsyncPolicy::Interval`).
    pub last_sync_micros: AtomicU64,
    /// Epoch for `last_sync_micros`.
    pub created: Instant,
}

impl LogInner {
    pub(crate) fn count_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.batches_since_sync.store(0, Ordering::Relaxed);
        self.last_sync_micros
            .store(self.created.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for LogInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogInner").field("cfg", &self.cfg).finish()
    }
}

/// The log-structured durable [`StableBackend`].
pub struct DurableLog {
    inner: std::sync::Arc<LogInner>,
    /// The background compactor, joined on drop.
    compactor: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The interval-policy flush timer, joined on drop (present only
    /// under [`FsyncPolicy::Interval`]).
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Frames replayed at `open` (diagnostics).
    replayed_frames: u64,
    /// Segments whose torn tail `open` truncated (diagnostics).
    torn_segments: u64,
}

impl DurableLog {
    /// Open (or create) the log on `fs`, replaying existing segments.
    ///
    /// The filing system's root *is* the log directory: every
    /// `seg-*.log` file in it is replayed, newest version of each UID
    /// wins, tombstones kill what they out-version, and a torn tail is
    /// truncated at the last valid frame.
    pub fn open(fs: HostFsHandle, cfg: DurableConfig) -> Result<DurableLog> {
        let replayed = replay::replay(&fs)?;
        let inner = std::sync::Arc::new(LogInner {
            fs,
            cfg,
            commit: Mutex::new(CommitQueue::default()),
            commit_done: Condvar::new(),
            index: Mutex::new(replayed.index),
            compact_mx: Mutex::new(CompactState::default()),
            compact_cv: Condvar::new(),
            flush_mx: Mutex::new(FlushState::default()),
            flush_cv: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            batches_since_sync: AtomicU32::new(0),
            last_sync_micros: AtomicU64::new(0),
            created: Instant::now(),
        });
        let compactor = if cfg.auto_compact {
            let worker = std::sync::Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("eden-stable-compact".into())
                    .spawn(move || super::compact::compactor_loop(&worker))
                    .expect("spawn compactor"),
            )
        } else {
            None
        };
        let flusher = if matches!(cfg.fsync, FsyncPolicy::Interval(_)) {
            let worker = std::sync::Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("eden-stable-flush".into())
                    .spawn(move || super::committer::flusher_loop(&worker))
                    .expect("spawn flusher"),
            )
        } else {
            None
        };
        Ok(DurableLog {
            inner,
            compactor: Mutex::new(compactor),
            flusher: Mutex::new(flusher),
            replayed_frames: replayed.frames,
            torn_segments: replayed.torn_segments,
        })
    }

    /// Frames replayed from the log when this backend was opened.
    pub fn replayed_frames(&self) -> u64 {
        self.replayed_frames
    }

    /// Segments whose torn tail was truncated when this backend was
    /// opened (0 after a clean shutdown).
    pub fn torn_segments(&self) -> u64 {
        self.torn_segments
    }
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("cfg", &self.inner.cfg)
            .finish()
    }
}

impl Drop for DurableLog {
    fn drop(&mut self) {
        let handle = {
            let mut st = self.inner.compact_mx.lock();
            st.shutdown = true;
            self.inner.compact_cv.notify_all();
            self.compactor.lock().take()
        };
        if let Some(handle) = handle {
            // eden-lint: nonblocking(teardown: the compactor was told to shut down above)
            let _ = handle.join();
        }
        let handle = {
            let mut st = self.inner.flush_mx.lock();
            st.shutdown = true;
            self.inner.flush_cv.notify_all();
            self.flusher.lock().take()
        };
        if let Some(handle) = handle {
            // eden-lint: nonblocking(teardown: the flusher was told to shut down above)
            let _ = handle.join();
        }
        // Lazy fsync policies owe the tail a final sync; MemFs treats
        // this as a no-op, and a dead filing system can't be helped.
        let _ = self.flush();
    }
}

impl StableBackend for DurableLog {
    fn store(&self, uid: Uid, type_name: &str, bytes: Bytes) -> Result<()> {
        self.inner.submit(Op::Put {
            uid,
            type_name: type_name.to_owned(),
            bytes,
        })
    }

    fn load(&self, uid: Uid) -> Result<PassiveRecord> {
        self.inner
            .index
            .lock()
            .records
            .get(&uid)
            .map(|e| e.record.clone())
            .ok_or(eden_core::EdenError::NoSuchEject(uid))
    }

    fn contains(&self, uid: Uid) -> bool {
        self.inner.index.lock().records.contains_key(&uid)
    }

    fn remove(&self, uid: Uid) -> Result<()> {
        self.inner.submit(Op::Del { uid })
    }

    fn iter(&self) -> Vec<(Uid, PassiveRecord)> {
        self.inner
            .index
            .lock()
            .records
            .iter()
            .map(|(u, e)| (*u, e.record.clone()))
            .collect()
    }

    fn uids(&self) -> Vec<Uid> {
        self.inner.index.lock().records.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.inner.index.lock().records.len()
    }

    fn total_bytes(&self) -> usize {
        self.inner
            .index
            .lock()
            .records
            .values()
            .map(|e| e.record.bytes.len())
            .sum()
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn compact(&self) -> Result<()> {
        self.inner.compact_once(true).map(|_| ())
    }

    fn stats(&self) -> StableStats {
        let (records, bytes, segments_live, log_bytes) = {
            let idx = self.inner.index.lock();
            (
                idx.records.len() as u64,
                idx.records
                    .values()
                    .map(|e| e.record.bytes.len() as u64)
                    .sum(),
                idx.segments.len() as u64,
                idx.segments.values().map(|s| s.total_bytes).sum(),
            )
        };
        StableStats {
            records,
            bytes,
            segments_live,
            log_bytes,
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::StableStore;
    use super::*;
    use eden_core::MemFs;
    use std::time::Duration;

    fn store_on(fs: &HostFsHandle, fsync: FsyncPolicy) -> StableStore {
        StableStore::durable_on(
            std::sync::Arc::clone(fs),
            DurableConfig {
                fsync,
                segment_bytes: 256,
                compact_garbage_bytes: 1 << 20,
                auto_compact: false,
            },
        )
        .expect("open durable store")
    }

    #[test]
    fn durable_roundtrip_and_versions() {
        let fs = MemFs::new();
        let s = store_on(&fs, FsyncPolicy::Always);
        let uid = Uid::fresh();
        s.store(uid, "File", Bytes::from(vec![1, 2, 3])).unwrap();
        s.store(uid, "File", Bytes::from(vec![4])).unwrap();
        let rec = s.load(uid).unwrap();
        assert_eq!(rec.bytes, vec![4]);
        assert_eq!(rec.version, 2);
        assert_eq!(s.len(), 1);
        assert!(s.stats().log_bytes > 0);
    }

    #[test]
    fn survives_reopen_on_the_same_fs() {
        let fs = MemFs::new();
        let a = Uid::fresh();
        let b = Uid::fresh();
        {
            let s = store_on(&fs, FsyncPolicy::EveryN(8));
            s.store(a, "Counter", Bytes::from(vec![1])).unwrap();
            s.store(b, "Counter", Bytes::from(vec![2])).unwrap();
            s.store(a, "Counter", Bytes::from(vec![3])).unwrap();
            s.remove(b);
        }
        let s = store_on(&fs, FsyncPolicy::Always);
        assert_eq!(s.len(), 1);
        let rec = s.load(a).unwrap();
        assert_eq!(rec.bytes, vec![3]);
        assert_eq!(rec.version, 2);
        assert!(!s.contains(b), "tombstone must survive reopen");
    }

    #[test]
    fn removed_then_restored_uid_outversions_its_tombstone() {
        let fs = MemFs::new();
        let uid = Uid::fresh();
        {
            let s = store_on(&fs, FsyncPolicy::Always);
            s.store(uid, "X", Bytes::from(vec![1])).unwrap();
            s.remove(uid);
            s.store(uid, "X", Bytes::from(vec![2])).unwrap();
        }
        let s = store_on(&fs, FsyncPolicy::Always);
        assert_eq!(s.load(uid).unwrap().bytes, vec![2]);
    }

    #[test]
    fn segments_roll_and_compaction_reclaims_overwrites() {
        let fs = MemFs::new();
        let s = store_on(&fs, FsyncPolicy::Always);
        let uid = Uid::fresh();
        for i in 0..64u8 {
            s.store(uid, "Hot", Bytes::from(vec![i; 32])).unwrap();
        }
        let before = s.stats();
        assert!(before.segments_live > 1, "rolls happened: {before:?}");
        s.compact().unwrap();
        let after = s.stats();
        assert_eq!(after.records, 1);
        assert!(
            after.log_bytes < before.log_bytes / 4,
            "compaction reclaims overwritten frames: {before:?} -> {after:?}"
        );
        assert!(after.compactions >= 1);
        // The surviving state is intact and still durable across reopen.
        assert_eq!(s.load(uid).unwrap().bytes, vec![63; 32]);
        drop(s);
        let s = store_on(&fs, FsyncPolicy::Always);
        assert_eq!(s.load(uid).unwrap().bytes, vec![63; 32]);
        assert_eq!(s.load(uid).unwrap().version, 64);
    }

    #[test]
    fn fsync_policies_count_differently() {
        let fs = MemFs::new();
        let s = store_on(&fs, FsyncPolicy::Always);
        let uid = Uid::fresh();
        for _ in 0..10 {
            s.store(uid, "X", Bytes::from(vec![0])).unwrap();
        }
        let always = s.stats().fsyncs;
        assert!(always >= 10, "Always syncs every batch: {always}");

        let fs2 = MemFs::new();
        let s2 = store_on(&fs2, FsyncPolicy::EveryN(4));
        for _ in 0..10 {
            s2.store(uid, "X", Bytes::from(vec![0])).unwrap();
        }
        let lazy = s2.stats().fsyncs;
        assert!(lazy < always, "EveryN(4) syncs less: {lazy} vs {always}");
    }

    /// A crash-faithful filing system: delegates to a [`MemFs`], but
    /// remembers each file's length at its last `sync`. `crash_view()`
    /// returns what a machine that lost power *now* would see on reboot —
    /// every file truncated back to its synced prefix.
    struct SyncTrackingFs {
        inner: HostFsHandle,
        synced: Mutex<std::collections::HashMap<String, usize>>,
    }

    impl SyncTrackingFs {
        fn new() -> std::sync::Arc<SyncTrackingFs> {
            std::sync::Arc::new(SyncTrackingFs {
                inner: MemFs::new(),
                synced: Mutex::new(std::collections::HashMap::new()),
            })
        }

        fn crash_view(&self) -> HostFsHandle {
            let synced = self.synced.lock();
            let survivors = MemFs::new();
            for path in self.inner.list() {
                let stable = synced.get(&path).copied().unwrap_or(0);
                if stable == 0 {
                    continue;
                }
                let mut bytes = self.inner.read(&path).unwrap();
                bytes.truncate(stable);
                survivors.write(&path, &bytes).unwrap();
            }
            survivors
        }
    }

    impl eden_core::HostFs for SyncTrackingFs {
        fn read(&self, path: &str) -> Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn write(&self, path: &str, bytes: &[u8]) -> Result<()> {
            self.inner.write(path, bytes)
        }
        fn append(&self, path: &str, bytes: &[u8]) -> Result<u64> {
            self.inner.append(path, bytes)
        }
        fn sync(&self, path: &str) -> Result<()> {
            self.inner.sync(path)?;
            let len = self.inner.read(path).map(|b| b.len()).unwrap_or(0);
            self.synced.lock().insert(path.to_owned(), len);
            Ok(())
        }
        fn rename(&self, from: &str, to: &str) -> Result<()> {
            self.inner.rename(from, to)?;
            let mut synced = self.synced.lock();
            if let Some(len) = synced.remove(from) {
                synced.insert(to.to_owned(), len);
            }
            Ok(())
        }
        fn exists(&self, path: &str) -> bool {
            self.inner.exists(path)
        }
        fn list(&self) -> Vec<String> {
            self.inner.list()
        }
        fn remove(&self, path: &str) -> Result<()> {
            self.synced.lock().remove(path);
            self.inner.remove(path)
        }
    }

    /// The Interval idle-tail bug: `due_for_sync` is only consulted inside
    /// `commit_batch`, so a lone store followed by idleness never got its
    /// fsync — a crash after two full intervals still lost the checkpoint.
    /// The flush timer must sync the idle tail on its own.
    #[test]
    fn interval_policy_syncs_an_idle_tail() {
        let d = Duration::from_millis(40);
        let tracking = SyncTrackingFs::new();
        let fs: HostFsHandle = std::sync::Arc::clone(&tracking) as HostFsHandle;
        let s = StableStore::durable_on(
            fs,
            DurableConfig {
                fsync: FsyncPolicy::Interval(d),
                segment_bytes: 1 << 20,
                compact_garbage_bytes: 1 << 20,
                auto_compact: false,
            },
        )
        .expect("open durable store");
        let uid = Uid::fresh();
        // The lone store: appends, and (interval not yet elapsed) does
        // not sync.
        s.store(uid, "Lonely", Bytes::from(vec![9; 16])).unwrap();
        // Go idle for two full intervals; the flush timer must fire.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while s.stats().fsyncs == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "flusher never synced the idle tail"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Kill the machine (no clean drop of the store on the crashed
        // timeline): what survives is the synced prefix only.
        let rebooted = tracking.crash_view();
        let s2 = StableStore::durable_on(
            rebooted,
            DurableConfig {
                fsync: FsyncPolicy::Always,
                segment_bytes: 1 << 20,
                compact_garbage_bytes: 1 << 20,
                auto_compact: false,
            },
        )
        .expect("reopen after crash");
        let rec = s2.load(uid).expect("the idle-synced checkpoint survives the crash");
        assert_eq!(rec.bytes, vec![9; 16]);
        drop(s);
    }

    /// The flusher leaves an already-stable tail alone: with nothing
    /// appended since the last sync, ticks must not issue fsyncs.
    #[test]
    fn interval_flusher_is_quiet_when_stable() {
        let fs = MemFs::new();
        let d = Duration::from_millis(10);
        let s = StableStore::durable_on(
            fs,
            DurableConfig {
                fsync: FsyncPolicy::Interval(d),
                segment_bytes: 1 << 20,
                compact_garbage_bytes: 1 << 20,
                auto_compact: false,
            },
        )
        .expect("open durable store");
        let uid = Uid::fresh();
        s.store(uid, "X", Bytes::from(vec![1])).unwrap();
        // Wait for the tail to go stable, then several more ticks.
        while s.stats().fsyncs == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let after_first = s.stats().fsyncs;
        std::thread::sleep(d * 6);
        assert_eq!(
            s.stats().fsyncs,
            after_first,
            "an idle, already-synced log must not keep fsyncing"
        );
    }

    #[test]
    fn concurrent_stores_coalesce_and_all_survive() {
        let fs = MemFs::new();
        let s = store_on(&fs, FsyncPolicy::Always);
        let uids: Vec<Uid> = (0..64).map(|_| Uid::fresh()).collect();
        std::thread::scope(|scope| {
            for chunk in uids.chunks(16) {
                let s = s.clone();
                scope.spawn(move || {
                    for &uid in chunk {
                        s.store(uid, "W", Bytes::from(vec![7; 24])).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.len(), 64);
        drop(s);
        let s = store_on(&fs, FsyncPolicy::Always);
        assert_eq!(s.len(), 64, "all 64 survive a reopen");
        for uid in uids {
            assert_eq!(s.load(uid).unwrap().bytes, vec![7; 24]);
        }
    }
}
