//! The stable store: where passive representations live.
//!
//! "The effect of Checkpointing is to create a *Passive Representation*, a
//! data structure designed to be durable across system crashes" (§1). The
//! store survives simulated crashes of individual Ejects and of the kernel
//! object itself (it can be detached and re-attached to a new kernel, which
//! is how the tests simulate whole-system restart) — and, behind
//! [`DurableLog`], real process deaths: checkpoints land in an append-only
//! CRC-framed segment log replayed on cold restart.
//!
//! The module family:
//!
//! * [`StableStore`] — the thin façade every caller sees; clones share one
//!   backend.
//! * [`StableBackend`] — the storage contract (store/load/remove/contains/
//!   iter plus flush/compact hooks), with two implementations:
//!   [`MemBacked`] (process-lifetime map, optional one-file-per-Eject
//!   write-through) and [`DurableLog`] (the segment log).
//! * [`log`](self::log) — frame and segment codec (length-prefixed,
//!   CRC-framed records).
//! * [`committer`](self::committer) — group commit: concurrent `store()`
//!   calls coalesce into one append + at most one fsync per batch, under a
//!   configurable [`FsyncPolicy`].
//! * [`compact`](self::compact) — background compaction rewriting live
//!   records into fresh segments and dropping sealed ones.
//! * [`replay`](self::replay) — cold-restart recovery: replays segments
//!   into the index, truncating a torn tail at the last valid frame.

pub mod committer;
pub mod compact;
pub mod durable;
pub mod log;
pub mod replay;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use eden_core::{wire, EdenError, HostFsHandle, Result, Uid, Value};
use parking_lot::Mutex;

pub use committer::FsyncPolicy;
pub use durable::{DurableConfig, DurableLog};

/// One checkpointed passive representation.
#[derive(Clone, Debug, PartialEq)]
pub struct PassiveRecord {
    /// The Eden type name, used to find the reactivation constructor.
    pub type_name: String,
    /// The wire-encoded state, behind a shared buffer: reactivation
    /// decodes it zero-copy, and cloning the record (the store hands out
    /// clones) bumps a reference instead of copying the checkpoint.
    pub bytes: Bytes,
    /// How many times this Eject has checkpointed. Monotone per UID; the
    /// durable log's replay keeps the highest version it sees, which is
    /// what makes compaction's rewrites order-independent.
    pub version: u64,
}

/// Counters a backend exposes for the observability plane (all zero for
/// backends without a log).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StableStats {
    /// Checkpointed Ejects currently stored.
    pub records: u64,
    /// Bytes of checkpointed state (payload only).
    pub bytes: u64,
    /// Segment files currently on the filing system.
    pub segments_live: u64,
    /// Total bytes across all live segments (frames, not payloads).
    pub log_bytes: u64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// fsync calls issued by the committer.
    pub fsyncs: u64,
}

/// The storage contract behind [`StableStore`].
///
/// `store` takes the checkpoint's wire encoding as [`Bytes`] so the whole
/// checkpoint path moves references, never payload copies (the PR 2
/// invariant). An `Err` from `store` means the checkpoint is **not
/// durable** and the previous passive representation (if any) is still in
/// force for `load`.
pub trait StableBackend: Send + Sync + std::fmt::Debug + 'static {
    /// Write (or overwrite) the passive representation for `uid`.
    fn store(&self, uid: Uid, type_name: &str, bytes: Bytes) -> Result<()>;
    /// Read the passive representation for `uid`.
    fn load(&self, uid: Uid) -> Result<PassiveRecord>;
    /// Whether `uid` has a passive representation.
    fn contains(&self, uid: Uid) -> bool;
    /// Remove the passive representation for `uid`.
    fn remove(&self, uid: Uid) -> Result<()>;
    /// Every `(uid, record)` pair, in unspecified order.
    fn iter(&self) -> Vec<(Uid, PassiveRecord)>;
    /// All UIDs with a passive representation, in unspecified order.
    fn uids(&self) -> Vec<Uid>;
    /// Number of checkpointed Ejects.
    fn len(&self) -> usize;
    /// True when no Eject has checkpointed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total bytes of checkpointed state (diagnostics).
    fn total_bytes(&self) -> usize;
    /// Force everything stored so far to stable storage (a no-op for
    /// memory backends; an fsync of the active segment for the log).
    fn flush(&self) -> Result<()>;
    /// Rewrite live records into fresh segments and drop sealed ones
    /// (a no-op for memory backends).
    fn compact(&self) -> Result<()>;
    /// Backend counters for the observability plane.
    fn stats(&self) -> StableStats;
}

/// A durable map from UID to passive representation.
///
/// Cheap to clone; clones share the underlying backend, so a store created
/// before a kernel can outlive it. The façade adds nothing over
/// [`StableBackend`] except ergonomics (and a best-effort `remove` for the
/// destroy path); select the backend with [`StableStore::new`],
/// [`StableStore::persistent`], [`StableStore::durable`] /
/// [`StableStore::durable_on`], or bring your own via
/// [`StableStore::with_backend`].
#[derive(Clone, Debug)]
pub struct StableStore {
    backend: Arc<dyn StableBackend>,
}

impl Default for StableStore {
    fn default() -> Self {
        StableStore {
            backend: Arc::new(MemBacked::default()),
        }
    }
}

impl StableStore {
    /// An empty, purely in-memory store.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Wrap an explicit backend.
    pub fn with_backend(backend: Arc<dyn StableBackend>) -> Self {
        StableStore { backend }
    }

    /// A store persisted in `dir` (created if missing): existing records
    /// are loaded now, and every later store/remove writes through, one
    /// file per Eject. Simple and durable, but every checkpoint rewrites
    /// the whole record — prefer [`StableStore::durable`] for write-heavy
    /// workloads.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<StableStore> {
        Ok(StableStore {
            backend: Arc::new(MemBacked::persistent(dir)?),
        })
    }

    /// A log-structured durable store rooted at `path` on the real filing
    /// system (created if missing), with the given fsync policy.
    pub fn durable(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<StableStore> {
        let path = path.into();
        std::fs::create_dir_all(&path)
            .map_err(|e| EdenError::HostFs(format!("create {}: {e}", path.display())))?;
        let fs = eden_core::RealFs::new(path)?;
        StableStore::durable_on(fs, DurableConfig::with_fsync(fsync))
    }

    /// A log-structured durable store over any [`HostFs`] — `MemFs` in
    /// tests (the identical code path as disk), `RealFs` in production.
    ///
    /// [`HostFs`]: eden_core::HostFs
    pub fn durable_on(fs: HostFsHandle, config: DurableConfig) -> Result<StableStore> {
        Ok(StableStore {
            backend: Arc::new(DurableLog::open(fs, config)?),
        })
    }

    /// The backend handle (shared with every clone of this store).
    pub fn backend(&self) -> &Arc<dyn StableBackend> {
        &self.backend
    }

    /// Write (or overwrite) the passive representation for `uid`.
    ///
    /// `Err` means the checkpoint is **not durable** and the previous
    /// passive representation (if any) is still in force: a backend that
    /// fails the write keeps serving the prior record, so a failed
    /// Checkpoint can never be observed as having succeeded by a later
    /// load.
    pub fn store(&self, uid: Uid, type_name: &str, bytes: Bytes) -> Result<()> {
        self.backend.store(uid, type_name, bytes)
    }

    /// Read the passive representation for `uid`.
    pub fn load(&self, uid: Uid) -> Result<PassiveRecord> {
        self.backend.load(uid)
    }

    /// Whether `uid` has a passive representation.
    pub fn contains(&self, uid: Uid) -> bool {
        self.backend.contains(uid)
    }

    /// Remove the passive representation for `uid` (the Eject is being
    /// destroyed, not merely deactivated). Best-effort: a backend that
    /// cannot persist the tombstone still forgets the record in memory.
    pub fn remove(&self, uid: Uid) {
        let _ = self.backend.remove(uid);
    }

    /// Number of checkpointed Ejects.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when no Eject has checkpointed.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// All UIDs with a passive representation, in unspecified order.
    pub fn uids(&self) -> Vec<Uid> {
        self.backend.uids()
    }

    /// Total bytes of checkpointed state (diagnostics).
    pub fn total_bytes(&self) -> usize {
        self.backend.total_bytes()
    }

    /// Force everything stored so far to stable storage.
    pub fn flush(&self) -> Result<()> {
        self.backend.flush()
    }

    /// Ask the backend to compact its storage now (synchronous).
    pub fn compact(&self) -> Result<()> {
        self.backend.compact()
    }

    /// Backend counters for the observability plane.
    pub fn stats(&self) -> StableStats {
        self.backend.stats()
    }
}

/// Encode one record (with its UID) for the one-file-per-Eject format.
pub(crate) fn encode_record(uid: Uid, record: &PassiveRecord) -> Vec<u8> {
    wire::encode(&Value::record([
        ("uid", Value::Uid(uid)),
        ("type", Value::str(record.type_name.clone())),
        ("version", Value::Int(record.version as i64)),
        ("bytes", Value::bytes(record.bytes.clone())),
    ]))
}

pub(crate) fn decode_record(data: &[u8]) -> Result<(Uid, PassiveRecord)> {
    let v = wire::decode(data)?;
    Ok((
        v.field("uid")?.as_uid()?,
        PassiveRecord {
            type_name: v.field("type")?.as_str()?.to_owned(),
            // Aliases the decoded buffer — the one copy was the file read.
            bytes: v.field("bytes")?.as_bytes()?.clone(),
            version: v.field("version")?.as_int()?.max(0) as u64,
        },
    ))
}

/// The process-lifetime backend: a mutexed map, with an optional
/// one-file-per-Eject write-through directory (the pre-durability-plane
/// `StableStore::persistent` behaviour, kept bit-for-bit).
#[derive(Debug, Default)]
pub struct MemBacked {
    inner: Mutex<HashMap<Uid, PassiveRecord>>,
    /// When set, every record is written through to one file per Eject in
    /// this directory, and read back by [`MemBacked::persistent`].
    persist_dir: Option<PathBuf>,
}

impl MemBacked {
    /// An empty, purely in-memory backend.
    pub fn new() -> Self {
        MemBacked::default()
    }

    /// A backend persisted in `dir` (created if missing): existing records
    /// are loaded now, and every later store/remove writes through.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<MemBacked> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| EdenError::HostFs(format!("create {}: {e}", dir.display())))?;
        let mut map = HashMap::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| EdenError::HostFs(format!("read {}: {e}", dir.display())))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("rep") {
                continue;
            }
            let data = std::fs::read(&path)
                .map_err(|e| EdenError::HostFs(format!("read {}: {e}", path.display())))?;
            let (uid, record) = decode_record(&data)?;
            map.insert(uid, record);
        }
        Ok(MemBacked {
            inner: Mutex::new(map),
            persist_dir: Some(dir),
        })
    }

    fn file_for(&self, uid: Uid) -> Option<PathBuf> {
        self.persist_dir.as_ref().map(|d| d.join(format!("{uid}.rep")))
    }
}

impl StableBackend for MemBacked {
    fn store(&self, uid: Uid, type_name: &str, bytes: Bytes) -> Result<()> {
        // Hold the lock across the write-through so a concurrent store
        // cannot interleave between the map update and the file update
        // (the rollback below restores exactly what this call displaced).
        let mut map = self.inner.lock();
        let prior = map.get(&uid).cloned();
        let version = prior.as_ref().map_or(1, |r| r.version + 1);
        let record = PassiveRecord {
            type_name: type_name.to_owned(),
            bytes,
            version,
        };
        map.insert(uid, record.clone());
        if let Some(path) = self.file_for(uid) {
            // Durable write-through: write to a temp file, then rename.
            let tmp = path.with_extension("tmp");
            let encoded = encode_record(uid, &record);
            if let Err(e) =
                std::fs::write(&tmp, encoded).and_then(|()| std::fs::rename(&tmp, &path))
            {
                match prior {
                    Some(prev) => {
                        map.insert(uid, prev);
                    }
                    None => {
                        map.remove(&uid);
                    }
                }
                return Err(EdenError::HostFs(format!(
                    "checkpoint {}: {e}",
                    path.display()
                )));
            }
        }
        Ok(())
    }

    fn load(&self, uid: Uid) -> Result<PassiveRecord> {
        self.inner
            .lock()
            .get(&uid)
            .cloned()
            .ok_or(EdenError::NoSuchEject(uid))
    }

    fn contains(&self, uid: Uid) -> bool {
        self.inner.lock().contains_key(&uid)
    }

    fn remove(&self, uid: Uid) -> Result<()> {
        self.inner.lock().remove(&uid);
        if let Some(path) = self.file_for(uid) {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    fn iter(&self) -> Vec<(Uid, PassiveRecord)> {
        self.inner
            .lock()
            .iter()
            .map(|(u, r)| (*u, r.clone()))
            .collect()
    }

    fn uids(&self) -> Vec<Uid> {
        self.inner.lock().keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn total_bytes(&self) -> usize {
        self.inner.lock().values().map(|r| r.bytes.len()).sum()
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn compact(&self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> StableStats {
        let map = self.inner.lock();
        StableStats {
            records: map.len() as u64,
            bytes: map.values().map(|r| r.bytes.len() as u64).sum(),
            ..StableStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let s = StableStore::new();
        let uid = Uid::fresh();
        s.store(uid, "File", Bytes::from(vec![1, 2, 3])).unwrap();
        let rec = s.load(uid).unwrap();
        assert_eq!(rec.type_name, "File");
        assert_eq!(rec.bytes, vec![1, 2, 3]);
        assert_eq!(rec.version, 1);
    }

    #[test]
    fn versions_increment() {
        let s = StableStore::new();
        let uid = Uid::fresh();
        s.store(uid, "File", Bytes::from(vec![1])).unwrap();
        s.store(uid, "File", Bytes::from(vec![2])).unwrap();
        assert_eq!(s.load(uid).unwrap().version, 2);
        assert_eq!(s.load(uid).unwrap().bytes, vec![2]);
    }

    #[test]
    fn missing_uid_is_error() {
        let s = StableStore::new();
        assert!(matches!(
            s.load(Uid::fresh()),
            Err(EdenError::NoSuchEject(_))
        ));
    }

    #[test]
    fn clones_share_storage() {
        let s = StableStore::new();
        let s2 = s.clone();
        let uid = Uid::fresh();
        s.store(uid, "Dir", Bytes::from(vec![9])).unwrap();
        assert!(s2.contains(uid));
        s2.remove(uid);
        assert!(!s.contains(uid));
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "eden-stable-{}-{}",
            std::process::id(),
            Uid::fresh().seq()
        ));
        let uid = Uid::fresh();
        {
            let s = StableStore::persistent(&dir).unwrap();
            s.store(uid, "Counter", Bytes::from(vec![1, 2, 3])).unwrap();
            s.store(uid, "Counter", Bytes::from(vec![4, 5])).unwrap();
        }
        {
            let s = StableStore::persistent(&dir).unwrap();
            let rec = s.load(uid).unwrap();
            assert_eq!(rec.type_name, "Counter");
            assert_eq!(rec.bytes, vec![4, 5]);
            assert_eq!(rec.version, 2);
            s.remove(uid);
        }
        let s = StableStore::persistent(&dir).unwrap();
        assert!(!s.contains(uid));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_through_is_not_reported_durable() {
        let dir = std::env::temp_dir().join(format!(
            "eden-stable-gone-{}-{}",
            std::process::id(),
            Uid::fresh().seq()
        ));
        let s = StableStore::persistent(&dir).unwrap();
        let uid = Uid::fresh();
        s.store(uid, "Counter", Bytes::from(vec![1])).unwrap();
        // Yank the directory out from under the store: the next disk
        // write fails, and the store must report the failure AND keep
        // serving the last durable record, not the phantom new one.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(s.store(uid, "Counter", Bytes::from(vec![2])).is_err());
        assert_eq!(s.load(uid).unwrap().bytes, vec![1]);
        assert_eq!(s.load(uid).unwrap().version, 1);
        // A never-checkpointed Eject whose first store fails stays absent.
        let fresh = Uid::fresh();
        assert!(s.store(fresh, "Counter", Bytes::from(vec![3])).is_err());
        assert!(!s.contains(fresh));
    }

    #[test]
    fn record_codec_roundtrip() {
        let uid = Uid::fresh();
        let rec = PassiveRecord {
            type_name: "X".into(),
            bytes: Bytes::from(vec![9, 8, 7]),
            version: 3,
        };
        let (got_uid, got) = decode_record(&encode_record(uid, &rec)).unwrap();
        assert_eq!(got_uid, uid);
        assert_eq!(got.type_name, rec.type_name);
        assert_eq!(got.bytes, rec.bytes);
        assert_eq!(got.version, rec.version);
    }

    #[test]
    fn accounting() {
        let s = StableStore::new();
        assert!(s.is_empty());
        let a = Uid::fresh();
        let b = Uid::fresh();
        s.store(a, "X", Bytes::from(vec![0; 10])).unwrap();
        s.store(b, "Y", Bytes::from(vec![0; 5])).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 15);
        assert_eq!(s.uids().len(), 2);
        let stats = s.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.bytes, 15);
        assert_eq!(stats.segments_live, 0);
    }

    #[test]
    fn mem_backend_iter_matches_contents() {
        let s = StableStore::new();
        let a = Uid::fresh();
        s.store(a, "X", Bytes::from(vec![7])).unwrap();
        let all = s.backend().iter();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, a);
        assert_eq!(all[0].1.bytes, vec![7]);
    }
}
