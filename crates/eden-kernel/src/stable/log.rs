//! Segment format for the durable checkpoint log.
//!
//! A segment is a flat file of frames, each
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! where the payload is one wire-encoded [`LogEntry`] — a checkpoint
//! (`Put`) or a tombstone (`Del`), both carrying the per-UID version the
//! committer assigned. Replay keeps the **highest version per UID**, which
//! makes frame placement order-free: compaction may rewrite an old record
//! into a segment that sorts after newer appends without resurrecting it.
//!
//! A scan stops at the first frame that does not check out — header
//! truncated, length running past the file, CRC mismatch, or undecodable
//! payload — and reports the byte length of the valid prefix so recovery
//! can truncate the torn tail. One host-fs `append` is the torn unit:
//! appends are serialised per segment by the committer, so a crash leaves
//! at most one partial frame sequence at the tail.

use bytes::Bytes;
use eden_core::{wire, EdenError, Result, Uid, Value};

use super::PassiveRecord;

/// Frame header bytes: length + CRC.
pub(crate) const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame payload (sanity check on replay: a
/// corrupt length field must not allocate the moon).
pub(crate) const MAX_FRAME: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One logical log record.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum LogEntry {
    /// A checkpoint for `uid` (the record carries its version).
    Put {
        /// The checkpointing Eject.
        uid: Uid,
        /// Its passive representation.
        record: PassiveRecord,
    },
    /// A tombstone: `uid` was destroyed at `version` (kills every `Put`
    /// with a version ≤ this one).
    Del {
        /// The destroyed Eject.
        uid: Uid,
        /// The tombstone's version (assigned past the last checkpoint).
        version: u64,
    },
}

impl LogEntry {
    fn to_value(&self) -> Value {
        match self {
            LogEntry::Put { uid, record } => Value::record([
                ("op", Value::Int(0)),
                ("uid", Value::Uid(*uid)),
                ("type", Value::str(record.type_name.clone())),
                ("version", Value::Int(record.version as i64)),
                ("bytes", Value::bytes(record.bytes.clone())),
            ]),
            LogEntry::Del { uid, version } => Value::record([
                ("op", Value::Int(1)),
                ("uid", Value::Uid(*uid)),
                ("version", Value::Int(*version as i64)),
            ]),
        }
    }
}

/// Append one framed entry to `out`, returning the frame's byte length.
pub(crate) fn encode_frame(entry: &LogEntry, out: &mut Vec<u8>) -> u64 {
    let value = entry.to_value();
    let len = wire::encoded_len(&value);
    out.reserve(FRAME_HEADER + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let crc_at = out.len();
    out.extend_from_slice(&[0; 4]);
    let payload_at = out.len();
    wire::encode_into(&value, out);
    debug_assert_eq!(out.len() - payload_at, len);
    let crc = crc32(&out[payload_at..]);
    out[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    (FRAME_HEADER + len) as u64
}

/// Decode one frame payload. Zero-copy: `Put` records alias `payload`.
pub(crate) fn decode_entry(payload: &Bytes) -> Result<LogEntry> {
    let v = wire::decode_shared(payload)?;
    let uid = v.field("uid")?.as_uid()?;
    let version = v.field("version")?.as_int()?.max(0) as u64;
    match v.field("op")?.as_int()? {
        0 => Ok(LogEntry::Put {
            uid,
            record: PassiveRecord {
                type_name: v.field("type")?.as_str()?.to_owned(),
                bytes: v.field("bytes")?.as_bytes()?.clone(),
                version,
            },
        }),
        1 => Ok(LogEntry::Del { uid, version }),
        op => Err(EdenError::BadParameter(format!("unknown log op {op}"))),
    }
}

/// The result of scanning one segment.
#[derive(Debug, Default)]
pub(crate) struct FrameScan {
    /// Decoded entries from the valid prefix, with each frame's length.
    pub entries: Vec<(LogEntry, u64)>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Whether bytes past the valid prefix exist (a torn tail).
    pub torn: bool,
}

/// Read a little-endian `u32` at `pos`, or `None` past the end. Recovery
/// treats a short read like any other invalid frame: stop the scan there.
fn read_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

/// Walk `bytes` frame by frame, stopping at the first invalid frame.
pub(crate) fn scan_segment(bytes: &Bytes) -> FrameScan {
    let mut scan = FrameScan::default();
    let total = bytes.len();
    let mut pos = 0usize;
    while pos + FRAME_HEADER <= total {
        let (Some(len), Some(crc)) = (read_u32(bytes, pos), read_u32(bytes, pos + 4)) else {
            break;
        };
        if len > MAX_FRAME || pos + FRAME_HEADER + len as usize > total {
            break;
        }
        let payload = bytes.slice(pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize);
        if crc32(&payload) != crc {
            break;
        }
        let Ok(entry) = decode_entry(&payload) else {
            break;
        };
        let frame = FRAME_HEADER as u64 + len as u64;
        scan.entries.push((entry, frame));
        pos += frame as usize;
    }
    scan.valid_len = pos as u64;
    scan.torn = pos < total;
    scan
}

/// The file name for segment `seq` (sorts by sequence).
pub(crate) fn segment_name(seq: u64) -> String {
    format!("seg-{seq:08}.log")
}

/// Parse a segment file name back to its sequence number.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(uid: Uid, version: u64, payload: &[u8]) -> LogEntry {
        LogEntry::Put {
            uid,
            record: PassiveRecord {
                type_name: "T".into(),
                bytes: Bytes::copy_from_slice(payload),
                version,
            },
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let uid = Uid::fresh();
        let mut buf = Vec::new();
        let n1 = encode_frame(&put(uid, 1, &[1, 2, 3]), &mut buf);
        let n2 = encode_frame(&LogEntry::Del { uid, version: 2 }, &mut buf);
        assert_eq!(buf.len() as u64, n1 + n2);
        let scan = scan_segment(&Bytes::from(buf));
        assert!(!scan.torn);
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.entries[0].1, n1);
        match &scan.entries[0].0 {
            LogEntry::Put { uid: u, record } => {
                assert_eq!(*u, uid);
                assert_eq!(record.bytes, vec![1, 2, 3]);
                assert_eq!(record.version, 1);
            }
            other => panic!("expected put, got {other:?}"),
        }
        assert_eq!(scan.entries[1].0, LogEntry::Del { uid, version: 2 });
    }

    #[test]
    fn torn_tail_is_detected_at_every_truncation_point() {
        let uid = Uid::fresh();
        let mut buf = Vec::new();
        let n1 = encode_frame(&put(uid, 1, &[1, 2, 3]), &mut buf) as usize;
        encode_frame(&put(uid, 2, &[4, 5, 6, 7]), &mut buf);
        for cut in 0..buf.len() {
            let scan = scan_segment(&Bytes::copy_from_slice(&buf[..cut]));
            let expect = if cut < n1 {
                0
            } else if cut < buf.len() {
                1
            } else {
                2
            };
            assert_eq!(scan.entries.len(), expect, "cut at {cut}");
            assert_eq!(scan.torn, scan.valid_len < cut as u64, "cut at {cut}");
        }
        // The untouched buffer is whole.
        let scan = scan_segment(&Bytes::from(buf));
        assert_eq!(scan.entries.len(), 2);
        assert!(!scan.torn);
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let uid = Uid::fresh();
        let mut buf = Vec::new();
        let n1 = encode_frame(&put(uid, 1, &[1; 16]), &mut buf) as usize;
        encode_frame(&put(uid, 2, &[2; 16]), &mut buf);
        // Flip one payload byte in the second frame.
        buf[n1 + FRAME_HEADER + 3] ^= 0xFF;
        let scan = scan_segment(&Bytes::from(buf));
        assert_eq!(scan.entries.len(), 1);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, n1 as u64);
    }

    #[test]
    fn absurd_length_field_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0; 64]);
        let scan = scan_segment(&Bytes::from(buf));
        assert!(scan.entries.is_empty());
        assert!(scan.torn);
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(segment_name(7), "seg-00000007.log");
        assert_eq!(parse_segment_name("seg-00000007.log"), Some(7));
        assert_eq!(parse_segment_name("seg-junk.log"), None);
        assert_eq!(parse_segment_name("other.log"), None);
        assert!(segment_name(9) < segment_name(10));
    }
}
