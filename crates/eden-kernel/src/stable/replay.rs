//! Cold-restart recovery: replaying the segment log into the index.
//!
//! `replay` lists every `seg-*.log` file, scans each one frame by frame
//! ([`log::scan_segment`]), and folds the entries into a fresh
//! [`IndexState`] under one rule: **the highest version per UID wins**,
//! and a tombstone kills every put it out-versions. The rule makes replay
//! independent of segment *order*, which is what lets compaction write
//! old records into new files safely; segments are still visited in
//! sequence order so the accounting is deterministic.
//!
//! A torn tail — a crash mid-append left a partial or corrupt frame — is
//! truncated at the last valid frame: the valid prefix is rewritten in
//! place and synced, so the next append continues from a clean boundary.

use std::collections::HashMap;

use bytes::Bytes;
use eden_core::{HostFsHandle, Result, Uid};

use super::durable::{IndexEntry, IndexState, SegInfo};
use super::log::{self, LogEntry};

/// What `replay` recovered.
#[derive(Debug)]
pub(crate) struct Replayed {
    /// The rebuilt index, ready to take appends.
    pub index: IndexState,
    /// Valid frames replayed across all segments.
    pub frames: u64,
    /// Segments whose torn tail was truncated.
    pub torn_segments: u64,
}

/// Replay every segment on `fs` (its root is the log directory).
pub(crate) fn replay(fs: &HostFsHandle) -> Result<Replayed> {
    let mut segments: Vec<u64> = fs
        .list()
        .iter()
        .filter_map(|name| log::parse_segment_name(name))
        .collect();
    segments.sort_unstable();

    let mut index = IndexState::default();
    let mut frames = 0u64;
    let mut torn_segments = 0u64;
    // Candidate per UID: (version, seg, frame_bytes, record).
    let mut best: HashMap<Uid, (u64, u64, u64, IndexEntry)> = HashMap::new();

    for &seq in &segments {
        let name = log::segment_name(seq);
        let data = Bytes::from(fs.read(&name)?);
        let scan = log::scan_segment(&data);
        if scan.torn {
            // Truncate at the last valid frame: rewrite the prefix and
            // make the cut durable before anything appends after it.
            fs.write(&name, &data[..scan.valid_len as usize])?;
            // eden-lint: nonblocking(cold-start replay, before any pool worker exists)
            fs.sync(&name)?;
            torn_segments += 1;
        }
        index.segments.insert(
            seq,
            SegInfo {
                total_bytes: scan.valid_len,
                ..SegInfo::default()
            },
        );
        for (entry, frame) in scan.entries {
            frames += 1;
            match entry {
                LogEntry::Put { uid, record } => {
                    let version = record.version;
                    let candidate = (
                        version,
                        seq,
                        frame,
                        IndexEntry {
                            record,
                            seg: seq,
                            frame_bytes: frame,
                        },
                    );
                    match best.get(&uid) {
                        // `>=` so a byte-identical compacted duplicate in
                        // a later segment takes over the accounting.
                        Some((v, ..)) if version < *v => {}
                        _ => {
                            best.insert(uid, candidate);
                        }
                    }
                }
                LogEntry::Del { uid, version } => {
                    let tomb = index.tombstones.entry(uid).or_insert(version);
                    if *tomb < version {
                        *tomb = version;
                    }
                }
            }
        }
    }

    // Tombstones kill what they out-version; a put past the tombstone's
    // version (a destroyed-then-recreated UID) survives it.
    for (uid, (version, seg, frame, entry)) in best {
        if index
            .tombstones
            .get(&uid)
            .is_some_and(|tomb| version <= *tomb)
        {
            continue;
        }
        if let Some(info) = index.segments.get_mut(&seg) {
            info.live_bytes += frame;
            info.live_records += 1;
        }
        index.records.insert(uid, entry);
    }

    match segments.last() {
        Some(&last) => {
            index.active_seg = last;
            index.active_len = index
                .segments
                .get(&last)
                .map_or(0, |info| info.total_bytes);
            index.next_seg = last + 1;
        }
        None => {
            index.active_seg = 0;
            index.active_len = 0;
            index.next_seg = 1;
            index.segments.insert(0, SegInfo::default());
        }
    }
    Ok(Replayed {
        index,
        frames,
        torn_segments,
    })
}

#[cfg(test)]
mod tests {
    use super::super::durable::{DurableConfig, DurableLog};
    use super::super::{FsyncPolicy, StableBackend};
    use super::*;
    use eden_core::MemFs;

    fn cfg() -> DurableConfig {
        DurableConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 128,
            compact_garbage_bytes: 1 << 20,
            auto_compact: false,
        }
    }

    #[test]
    fn empty_fs_replays_to_an_empty_active_segment() {
        let fs = MemFs::new();
        let replayed = replay(&fs).unwrap();
        assert_eq!(replayed.frames, 0);
        assert_eq!(replayed.index.active_seg, 0);
        assert_eq!(replayed.index.next_seg, 1);
        assert!(replayed.index.records.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_the_prefix_survives() {
        let fs = MemFs::new();
        let uid = Uid::fresh();
        {
            let log = DurableLog::open(std::sync::Arc::clone(&fs), cfg()).unwrap();
            log.store(uid, "T", Bytes::from(vec![1; 8])).unwrap();
            log.store(uid, "T", Bytes::from(vec![2; 8])).unwrap();
        }
        // Tear mid-way through the last frame of the newest segment.
        let seg = fs
            .list()
            .into_iter()
            .rfind(|n| log::parse_segment_name(n).is_some())
            .expect("a segment exists");
        let bytes = fs.read(&seg).unwrap();
        fs.write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let log = DurableLog::open(std::sync::Arc::clone(&fs), cfg()).unwrap();
        assert_eq!(log.torn_segments(), 1);
        // Version 2's frame was torn, so version 1 is the durable truth.
        let rec = log.load(uid).unwrap();
        assert_eq!(rec.bytes, vec![1; 8]);
        assert_eq!(rec.version, 1);
        // The tear was cut: a re-open sees a clean log.
        drop(log);
        let log = DurableLog::open(std::sync::Arc::clone(&fs), cfg()).unwrap();
        assert_eq!(log.torn_segments(), 0);
        assert_eq!(log.load(uid).unwrap().version, 1);
    }

    #[test]
    fn replay_is_segment_order_free_for_versions() {
        // Hand-build two segments where the NEWER version sits in the
        // LOWER-numbered file (as after a compaction rewrote seg 2's
        // record into seg 1's slot) — replay must keep version 2.
        let fs = MemFs::new();
        let uid = Uid::fresh();
        let rec = |v: u64, b: u8| super::super::PassiveRecord {
            type_name: "T".into(),
            bytes: Bytes::from(vec![b; 4]),
            version: v,
        };
        let mut low = Vec::new();
        log::encode_frame(
            &LogEntry::Put {
                uid,
                record: rec(2, 9),
            },
            &mut low,
        );
        let mut high = Vec::new();
        log::encode_frame(
            &LogEntry::Put {
                uid,
                record: rec(1, 5),
            },
            &mut high,
        );
        fs.write(&log::segment_name(1), &low).unwrap();
        fs.write(&log::segment_name(2), &high).unwrap();
        let replayed = replay(&fs).unwrap();
        let entry = replayed.index.records.get(&uid).expect("uid recovered");
        assert_eq!(entry.record.version, 2);
        assert_eq!(entry.record.bytes, vec![9; 4]);
    }

    #[test]
    fn tombstone_in_any_segment_kills_older_puts() {
        let fs = MemFs::new();
        let uid = Uid::fresh();
        let mut a = Vec::new();
        log::encode_frame(
            &LogEntry::Put {
                uid,
                record: super::super::PassiveRecord {
                    type_name: "T".into(),
                    bytes: Bytes::from(vec![1]),
                    version: 1,
                },
            },
            &mut a,
        );
        let mut b = Vec::new();
        log::encode_frame(&LogEntry::Del { uid, version: 2 }, &mut b);
        fs.write(&log::segment_name(1), &a).unwrap();
        fs.write(&log::segment_name(2), &b).unwrap();
        let replayed = replay(&fs).unwrap();
        assert!(replayed.index.records.is_empty());
        assert_eq!(replayed.index.tombstones.get(&uid), Some(&2));
    }
}
