//! The Eden kernel: Eject registry, invocation routing, activation and
//! crash/recovery.
//!
//! The real Eden kernel ran on several VAXen and routed invocations over a
//! 10 Mbit Ethernet; this reproduction runs every Eject as a thread in one
//! process and models distribution with [`NodeId`] placement, a remote
//! invocation counter, and optional injected latency. The observable
//! semantics the paper relies on are preserved:
//!
//! * invocation is location independent — callers name a [`Uid`], never a
//!   machine;
//! * "if a passive eject is sent an invocation, the Eden kernel will
//!   activate it" (§1) — see [`Kernel::register_type`];
//! * checkpointed state survives crashes; an Eject that never checkpointed
//!   disappears when it deactivates or crashes (the fate of §7's `UnixFile`
//!   Ejects).
//!
//! # The invocation plane
//!
//! Routing is split into a **resolve** step (find or reactivate the target,
//! under a registry lock) and a **dispatch** step (meter, trace, inject
//! latency, send — with *no* lock held, so injected latency on one
//! invocation can never serialise unrelated senders). The registry itself
//! is sharded by UID: concurrent pipelines resolving different targets take
//! different locks, and resolutions of already-active targets take only a
//! shard *read* lock. On top of that, callers that repeatedly invoke the
//! same target can hold a [`RouteCache`](crate::RouteCache) and skip the
//! registry entirely — see [`Kernel::invoke_with_cache`] and the
//! [`routes`](crate::routes) module for the staleness protocol.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use eden_core::{wire, EdenError, Metrics, OpName, Result, Uid, Value};
use parking_lot::{Mutex, RwLock};

use crate::behavior::EjectBehavior;
use crate::context::EjectContext;
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::invocation::{reply_pair, Invocation, PendingReply, ReplyHandle};
use crate::mailbox::{mailbox, receiver, MailboxSender, SendError, SendOutcome, ShedCause, ShedPolicy};
use crate::obs::{
    KernelSnapshot, MailboxSnapshot, ObsConfig, ObsPlane, ObsTag, SpanRecord, StageSummary,
};
use crate::options::{InvokeOptions, RetryState};
use crate::routes::{Route, RouteCache};
use crate::runtime::{run_coordinator, Envelope};
use crate::sched::{Scheduler, SchedulerConfig, Task};
use crate::stable::StableStore;
use crate::trace::TraceDump;

/// A simulated machine. Ejects placed on different nodes pay the remote
/// invocation surcharge in the cost model (and optional injected latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u16);

/// Default number of registry shards (rounded up to a power of two).
pub const DEFAULT_REGISTRY_SHARDS: usize = 16;

/// How Eject coordinators are executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecMode {
    /// One dedicated thread per active Eject — the historic model, kept
    /// behind this flag for differential testing and as a fallback. Idle
    /// Ejects cost a resident thread each.
    Threads,
    /// The density plane (the default): Ejects are state machines parked
    /// on their mailboxes, resumed by a fixed worker pool. Idle Ejects
    /// cost zero threads; see [`SchedulerConfig`] for the knobs.
    Scheduler(SchedulerConfig),
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Scheduler(SchedulerConfig::default())
    }
}

/// Construction-time options for a [`Kernel`].
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Real latency added to every cross-node invocation (send side).
    pub remote_latency: Option<Duration>,
    /// Real latency added to every invocation, local or remote.
    pub invocation_latency: Option<Duration>,
    /// Keep a ring of the last N kernel events (invocations, activations,
    /// stops) readable via [`Kernel::trace_events`]. 0 disables tracing.
    pub trace_capacity: usize,
    /// Number of registry shards (rounded up to a power of two, minimum 1).
    /// `1` reproduces the old single-lock registry — useful for measuring
    /// contention on the same binary (see the `registry_contention` bench).
    pub registry_shards: usize,
    /// Mailbox capacity per Eject. `None` (the default) keeps the historic
    /// unbounded mailboxes; `Some(n)` bounds each coordinator mailbox to
    /// `n` envelopes and runs [`shed_policy`](KernelConfig::shed_policy)
    /// when full — under the default [`ShedPolicy::Park`] invocation
    /// becomes flow-controlled rather than queue-growing. Kernel control
    /// messages (crash, shutdown) bypass the bound so a full mailbox can
    /// never wedge teardown.
    pub mailbox_capacity: Option<usize>,
    /// What a full bounded mailbox does to arriving invocations (see
    /// [`ShedPolicy`]). Irrelevant when `mailbox_capacity` is `None`.
    /// The shedding policies surface as the retryable
    /// [`EdenError::Overloaded`], so `invoke_with` retry/backoff composes
    /// as client-side rate control.
    pub shed_policy: ShedPolicy,
    /// The observability plane: causal spans and per-stage latency
    /// histograms (see [`ObsConfig`]). Off by default — a disabled kernel
    /// carries no instrumentation state at all.
    pub observability: ObsConfig,
    /// How coordinators execute: the N-worker scheduler (default) or the
    /// historic thread-per-Eject model (see [`ExecMode`]).
    pub exec: ExecMode,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            remote_latency: None,
            invocation_latency: None,
            trace_capacity: 0,
            registry_shards: DEFAULT_REGISTRY_SHARDS,
            mailbox_capacity: None,
            shed_policy: ShedPolicy::default(),
            observability: ObsConfig::off(),
            exec: ExecMode::default(),
        }
    }
}

/// Fluent construction for a [`Kernel`] — the front door for the
/// execution-mode and scheduler knobs:
///
/// ```no_run
/// use eden_kernel::{Kernel, SchedulerConfig};
///
/// let kernel = Kernel::builder()
///     .scheduler(SchedulerConfig { workers: 4, ..SchedulerConfig::default() })
///     .trace_capacity(256)
///     .build();
/// ```
#[derive(Debug, Default)]
pub struct KernelBuilder {
    config: KernelConfig,
    stable: Option<StableStore>,
}

impl KernelBuilder {
    /// A builder over the default configuration.
    pub fn new() -> KernelBuilder {
        KernelBuilder::default()
    }

    /// Run coordinators on the N-worker scheduler with explicit knobs
    /// (the default mode uses [`SchedulerConfig::default`]).
    pub fn scheduler(mut self, config: SchedulerConfig) -> Self {
        self.config.exec = ExecMode::Scheduler(config);
        self
    }

    /// Run one dedicated thread per Eject — the fallback mode, for
    /// differential testing against the scheduler.
    pub fn threads_mode(mut self) -> Self {
        self.config.exec = ExecMode::Threads;
        self
    }

    /// See [`KernelConfig::remote_latency`].
    pub fn remote_latency(mut self, latency: Duration) -> Self {
        self.config.remote_latency = Some(latency);
        self
    }

    /// See [`KernelConfig::invocation_latency`].
    pub fn invocation_latency(mut self, latency: Duration) -> Self {
        self.config.invocation_latency = Some(latency);
        self
    }

    /// See [`KernelConfig::trace_capacity`].
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.config.trace_capacity = capacity;
        self
    }

    /// See [`KernelConfig::registry_shards`].
    pub fn registry_shards(mut self, shards: usize) -> Self {
        self.config.registry_shards = shards;
        self
    }

    /// See [`KernelConfig::mailbox_capacity`].
    pub fn mailbox_capacity(mut self, capacity: usize) -> Self {
        self.config.mailbox_capacity = Some(capacity);
        self
    }

    /// See [`KernelConfig::shed_policy`]. Takes effect only together with
    /// [`mailbox_capacity`](KernelBuilder::mailbox_capacity).
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.config.shed_policy = policy;
        self
    }

    /// See [`KernelConfig::observability`].
    pub fn observability(mut self, obs: ObsConfig) -> Self {
        self.config.observability = obs;
        self
    }

    /// Attach an existing stable store (whole-system restart).
    pub fn stable_store(mut self, store: StableStore) -> Self {
        self.stable = Some(store);
        self
    }

    /// Checkpoint into a log-structured durable store rooted at `path`
    /// on the real filing system (created if missing), with the given
    /// fsync policy. Existing segments are replayed first, so building
    /// the kernel after a cold restart resurrects every passive Eject.
    pub fn durable_store(
        mut self,
        path: impl Into<std::path::PathBuf>,
        fsync: crate::stable::FsyncPolicy,
    ) -> Result<Self> {
        self.stable = Some(StableStore::durable(path, fsync)?);
        Ok(self)
    }

    /// Build the kernel.
    pub fn build(self) -> Kernel {
        let store = self.stable.unwrap_or_default();
        Kernel::with_stable_store(self.config, store)
    }
}

/// A reactivation constructor: turns a decoded passive representation back
/// into a running behaviour.
pub type TypeFactory =
    Arc<dyn Fn(Option<Value>) -> Result<Box<dyn EjectBehavior>> + Send + Sync>;

/// Whether a UID currently names a running coordinator or a passive
/// representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EjectState {
    /// The Eject has a running coordinator thread.
    Active,
    /// The Eject exists only as its passive representation; the next
    /// invocation will reactivate it.
    Passive,
}

/// Everything the kernel knows about one UID, merged into a single record
/// so resolution touches exactly one shard lock (the old layout spread an
/// Eject across three maps behind three mutexes).
struct Slot {
    state: SlotState,
    node: NodeId,
    /// Increments on every (re)activation and *survives passivation*, so an
    /// exiting incarnation cannot demote its successor and cached routes
    /// can tell incarnations apart.
    incarnation: u64,
}

enum SlotState {
    Active {
        tx: MailboxSender,
        exec: ExecHandle,
        type_name: &'static str,
    },
    Passive {
        type_name: String,
    },
}

/// The execution resource behind an active Eject: a dedicated coordinator
/// thread (threads mode) or a parked-mailbox task owned by the scheduler.
/// The registry slot is what keeps a task alive — the mailbox holds only
/// weak references back to it, so dropping the slot (after teardown) frees
/// the state machine.
enum ExecHandle {
    Thread(Option<JoinHandle<()>>),
    Task(Arc<Task>),
}

/// One registry shard. Non-mutating resolutions (the overwhelmingly common
/// case: target already active) take the read lock only.
#[derive(Default)]
struct Shard {
    slots: RwLock<HashMap<Uid, Slot>>,
}

/// One row of [`Kernel::list_ejects`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EjectInfo {
    /// The Eject's UID.
    pub uid: Uid,
    /// Running or passive.
    pub state: EjectState,
    /// Its Eden type name.
    pub type_name: String,
    /// Its simulated node.
    pub node: NodeId,
}

pub(crate) struct KernelInner {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: usize,
    types: Mutex<HashMap<String, TypeFactory>>,
    stable: StableStore,
    metrics: Metrics,
    config: KernelConfig,
    trace: Option<crate::trace::TraceLog>,
    obs: Option<Arc<ObsPlane>>,
    faults: FaultInjector,
    /// The worker pool, present in [`ExecMode::Scheduler`] only.
    sched: Option<Arc<Scheduler>>,
    shutting_down: AtomicBool,
}

impl KernelInner {
    fn shard(&self, uid: Uid) -> &Shard {
        // Sequence numbers are sequential; a multiply-shift spreads
        // neighbouring UIDs across shards.
        let h = uid.seq().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize & self.shard_mask]
    }
}

impl Drop for KernelInner {
    fn drop(&mut self) {
        // Reached only when every strong handle (user-visible or the
        // short-lived upgrades inside Eject contexts) is gone. Normally
        // `Kernel::drop` has already shut everything down; this is the
        // backstop for the race where two handles drop concurrently and
        // each thought the other would do it.
        self.shutting_down.store(true, Ordering::Release);
        let mut entries: Vec<(MailboxSender, ExecHandle)> = Vec::new();
        for shard in self.shards.iter_mut() {
            entries.extend(shard.slots.get_mut().drain().filter_map(|(_, slot)| {
                match slot.state {
                    SlotState::Active { tx, exec, .. } => Some((tx, exec)),
                    SlotState::Passive { .. } => None,
                }
            }));
        }
        shutdown_entries(entries, self.sched.as_ref());
        if let Some(sched) = &self.sched {
            sched.stop();
        }
    }
}

/// Tell every coordinator to stop, release our senders, then wait. The
/// sender release must precede the waits: a coordinator may be blocked
/// waiting for an envelope queued at another (already exited) coordinator
/// to be dropped, which happens only once every sender for that mailbox is
/// gone. Shutdown envelopes bypass any mailbox bound (`force_send`): with
/// bounded mailboxes a plain send could park forever behind a full mailbox
/// whose coordinator is itself waiting to shut down. Threads-mode entries
/// are joined (skipping the current thread — shutdown can be triggered
/// from inside a coordinator); scheduler-mode entries are awaited via the
/// pool's death latch, which excuses the calling worker's own task.
fn shutdown_entries(entries: Vec<(MailboxSender, ExecHandle)>, sched: Option<&Arc<Scheduler>>) {
    let mut joins = Vec::new();
    let mut tasks = Vec::new();
    for (tx, exec) in entries {
        let _ = tx.force_send(Envelope::Shutdown);
        drop(tx);
        match exec {
            ExecHandle::Thread(join) => joins.push(join),
            ExecHandle::Task(task) => tasks.push(task),
        }
    }
    let current = std::thread::current().id();
    for join in joins.into_iter().flatten() {
        if join.thread().id() != current {
            // eden-lint: nonblocking(threads-mode coordinator joins; no pool exists in that mode)
            let _ = join.join();
        }
    }
    if let Some(sched) = sched {
        if !tasks.is_empty() {
            sched.wait_all_dead();
        }
    }
    // Dropping `tasks` here releases the dead state machines.
    drop(tasks);
}

/// A weak reference to the kernel, held by Eject contexts so the kernel can
/// shut down when the last user-visible [`Kernel`] handle drops.
#[derive(Clone)]
#[derive(Debug)]
pub struct WeakKernel(Weak<KernelInner>);

impl WeakKernel {
    /// Upgrade to a full handle if the kernel is still alive.
    pub fn upgrade(&self) -> Option<Kernel> {
        self.0.upgrade().map(|inner| Kernel { inner })
    }
}

/// Handle to a simulated Eden kernel.
///
/// Clones share the kernel. When the last clone drops, the kernel shuts
/// down: every coordinator receives a shutdown envelope and is joined.
/// Prefer calling [`Kernel::shutdown`] explicitly in tests so teardown
/// problems surface where they happen.
pub struct Kernel {
    inner: Arc<KernelInner>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("ejects", &self.eject_count())
            .field("shards", &self.inner.shards.len())
            .finish_non_exhaustive()
    }
}

impl Clone for Kernel {
    fn clone(&self) -> Self {
        Kernel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Kernel {
    /// A kernel with default configuration and a fresh stable store.
    pub fn new() -> Self {
        Kernel::with_config(KernelConfig::default())
    }

    /// A kernel with explicit configuration.
    pub fn with_config(config: KernelConfig) -> Self {
        Kernel::with_stable_store(config, StableStore::new())
    }

    /// A kernel attached to an existing stable store — how the tests
    /// simulate whole-system restart: build a new kernel over the old
    /// store and re-register the type constructors. Checkpointed Ejects
    /// from the previous life are immediately invocable (they reactivate
    /// on first invocation).
    pub fn with_stable_store(config: KernelConfig, stable: StableStore) -> Self {
        let shard_count = config.registry_shards.max(1).next_power_of_two();
        let shards: Box<[Shard]> = (0..shard_count).map(|_| Shard::default()).collect();
        let trace = (config.trace_capacity > 0)
            .then(|| crate::trace::TraceLog::new(config.trace_capacity));
        let obs = config
            .observability
            .enabled()
            .then(|| Arc::new(ObsPlane::new(config.observability)));
        let sched = match &config.exec {
            ExecMode::Scheduler(sched_config) => Some(Scheduler::new(*sched_config)),
            ExecMode::Threads => None,
        };
        let inner = KernelInner {
            shards,
            shard_mask: shard_count - 1,
            types: Mutex::new(HashMap::new()),
            stable,
            metrics: Metrics::new(),
            config,
            trace,
            obs,
            faults: FaultInjector::default(),
            sched,
            shutting_down: AtomicBool::new(false),
        };
        for uid in inner.stable.uids() {
            if let Ok(rec) = inner.stable.load(uid) {
                inner.shard(uid).slots.write().insert(
                    uid,
                    Slot {
                        state: SlotState::Passive {
                            type_name: rec.type_name,
                        },
                        node: NodeId::default(),
                        incarnation: 0,
                    },
                );
            }
        }
        Kernel {
            inner: Arc::new(inner),
        }
    }

    /// A weak handle for storage inside Eject contexts.
    pub fn downgrade(&self) -> WeakKernel {
        WeakKernel(Arc::downgrade(&self.inner))
    }

    /// The kernel-wide metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The traced kernel events, oldest first, with the count of events the
    /// bounded ring has evicted (empty unless
    /// [`KernelConfig::trace_capacity`] was set). The dump derefs to
    /// `[TraceEvent]`, so iteration and indexing work directly on it.
    pub fn trace_events(&self) -> TraceDump {
        self.inner
            .trace
            .as_ref()
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// Events evicted from the trace ring since the kernel started (0 when
    /// tracing is disabled). Monotonic — it never resets while the kernel
    /// lives, so two reads bound how much history was lost between them.
    pub fn trace_dropped(&self) -> u64 {
        self.inner.trace.as_ref().map(|t| t.dropped()).unwrap_or(0)
    }

    /// True if the kernel was built with causal span recording on.
    pub fn spans_enabled(&self) -> bool {
        self.inner
            .obs
            .as_ref()
            .is_some_and(|obs| obs.config().spans)
    }

    /// All completed invocation spans, ordered by start time (empty unless
    /// [`ObsConfig::spans`] was set).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .obs
            .as_ref()
            .map(|obs| obs.spans())
            .unwrap_or_default()
    }

    /// Spans evicted from the bounded span store since the kernel started.
    pub fn spans_dropped(&self) -> u64 {
        self.inner
            .obs
            .as_ref()
            .map(|obs| obs.spans_dropped())
            .unwrap_or(0)
    }

    /// Per-(Eject, op) latency summaries, busiest first (empty unless
    /// [`ObsConfig::histograms`] was set).
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.inner
            .obs
            .as_ref()
            .map(|obs| obs.stage_summaries())
            .unwrap_or_default()
    }

    /// Everything the kernel can report, in one consistent-enough snapshot:
    /// control-plane counters, the process-wide payload and stream planes,
    /// per-stage latency summaries, and trace/span bookkeeping. This is the
    /// source for the Prometheus and JSON export surfaces (see
    /// [`prometheus_text`](crate::prometheus_text) and
    /// [`json_text`](crate::json_text)).
    pub fn metrics_snapshot(&self) -> KernelSnapshot {
        let obs = self.inner.obs.as_ref();
        KernelSnapshot {
            metrics: self.inner.metrics.snapshot(),
            payload: eden_core::payload::snapshot(),
            stream: eden_core::stream::snapshot(),
            stages: obs.map(|o| o.stage_summaries()).unwrap_or_default(),
            trace_dropped: self.trace_dropped(),
            spans_recorded: obs.map(|o| o.span_count()).unwrap_or(0),
            spans_dropped: obs.map(|o| o.spans_dropped()).unwrap_or(0),
            sched: self
                .inner
                .sched
                .as_ref()
                .map(|s| s.snapshot())
                .unwrap_or_default(),
            stable: self.inner.stable.stats(),
            mailbox: self.mailbox_snapshot(),
        }
    }

    /// Sample mailbox occupancy across every active Eject. Takes each
    /// registry shard's read lock once plus one mailbox-queue lock per
    /// active slot — cheap enough for a stats poll, and depths across
    /// mailboxes are only consistent per-mailbox (an envelope in flight
    /// between two Ejects may be counted in neither).
    fn mailbox_snapshot(&self) -> MailboxSnapshot {
        let mut snap = MailboxSnapshot::default();
        for shard in self.inner.shards.iter() {
            for slot in shard.slots.read().values() {
                if let SlotState::Active { tx, .. } = &slot.state {
                    let depth = tx.depth() as u64;
                    snap.mailboxes += 1;
                    snap.queued_total += depth;
                    snap.queued_max = snap.queued_max.max(depth);
                }
            }
        }
        snap
    }

    /// A convenient entry point to [`KernelBuilder`].
    pub fn builder() -> KernelBuilder {
        KernelBuilder::new()
    }

    /// Invocation tallies per target Eject, busiest first (empty unless
    /// tracing is enabled).
    pub fn invocations_by_target(&self) -> Vec<(Uid, u64)> {
        self.inner
            .trace
            .as_ref()
            .map(|t| t.per_target())
            .unwrap_or_default()
    }

    /// The stable store backing this kernel.
    pub fn stable_store(&self) -> &StableStore {
        &self.inner.stable
    }

    /// Register the reactivation constructor for an Eden type. Required
    /// before any Eject of that type can be reactivated from its passive
    /// representation.
    pub fn register_type<F>(&self, type_name: &str, factory: F)
    where
        F: Fn(Option<Value>) -> Result<Box<dyn EjectBehavior>> + Send + Sync + 'static,
    {
        self.inner
            .types
            .lock()
            .insert(type_name.to_owned(), Arc::new(factory));
    }

    /// Create and start an Eject on node 0. Returns its UID.
    pub fn spawn(&self, behavior: Box<dyn EjectBehavior>) -> Result<Uid> {
        self.spawn_on(NodeId::default(), behavior)
    }

    /// Create and start an Eject on a specific simulated node.
    pub fn spawn_on(&self, node: NodeId, behavior: Box<dyn EjectBehavior>) -> Result<Uid> {
        let uid = Uid::fresh();
        self.inner.metrics.record_eject_created();
        let shard = self.inner.shard(uid);
        let mut slots = shard.slots.write();
        self.start_coordinator(&mut slots, uid, node, behavior)?;
        Ok(uid)
    }

    /// Send an invocation from outside the Eden system (a "user
    /// terminal"). External callers originate on node 0.
    ///
    /// This is the single invocation verb. It returns a [`PendingReply`]
    /// ("the sending of an invocation does not suspend the execution of
    /// the sending Eject", §1); recover synchronous RPC by waiting on it.
    /// Deadlines, retry policy, route caching, and fault immunity are
    /// configured through [`Kernel::invoke_with`].
    pub fn invoke(&self, target: Uid, op: impl Into<OpName>, arg: Value) -> PendingReply {
        self.invoke_inner(NodeId::default(), target, op.into(), arg, true, true, false, None)
    }

    /// [`Kernel::invoke`] with explicit [`InvokeOptions`]: an overall
    /// per-invocation deadline, bounded retries with exponential backoff
    /// (driven lazily by whoever waits on the reply), a caller-owned route
    /// cache for the first delivery attempt, and fault-plan immunity.
    pub fn invoke_with(
        &self,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
        opts: InvokeOptions<'_>,
    ) -> PendingReply {
        self.invoke_with_from(NodeId::default(), target, op.into(), arg, opts)
    }

    /// Deprecated synchronous shim. `invoke_sync(t, op, a)` is exactly
    /// `invoke(t, op, a).wait()`.
    #[cfg(feature = "legacy-shims")]
    #[deprecated(since = "0.3.0", note = "use `invoke(..).wait()`")]
    pub fn invoke_sync(
        &self,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
    ) -> Result<Value> {
        self.invoke(target, op, arg).wait()
    }

    /// Deprecated cached-route shim. Equivalent to [`Kernel::invoke_with`]
    /// with [`InvokeOptions::route_cache`].
    #[cfg(feature = "legacy-shims")]
    #[deprecated(since = "0.3.0", note = "use `invoke_with(.., InvokeOptions::new().route_cache(cache))`")]
    pub fn invoke_with_cache(
        &self,
        cache: &mut RouteCache,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
    ) -> PendingReply {
        self.invoke_with(target, op, arg, InvokeOptions::new().route_cache(cache))
    }

    /// The options-bearing invocation path, with an explicit originating
    /// node (Eject contexts pass their own placement).
    pub(crate) fn invoke_with_from(
        &self,
        from: NodeId,
        target: Uid,
        op: OpName,
        arg: Value,
        opts: InvokeOptions<'_>,
    ) -> PendingReply {
        let subject = opts.subject_to_faults();
        // The deadline as an absolute instant, stamped on every delivery
        // attempt's reply handle so the mailbox admission path can see it
        // (deadline-bounded parks, `DeadlineDrop` eviction).
        let admit_by = opts.deadline.map(|d| std::time::Instant::now() + d);
        if !opts.needs_driver() {
            return match opts.route_cache {
                Some(cache) => {
                    self.invoke_cached(from, cache, target, op, arg, subject, false, None)
                }
                None => self.invoke_inner(from, target, op, arg, subject, true, false, None),
            };
        }
        // Deadline or retries requested: keep the request around so the
        // reply can re-send it. Value clones are reference bumps (the
        // payload plane), so this costs a few pointers, not a copy.
        let (op_kept, arg_kept) = (op.clone(), arg.clone());
        let inner = match opts.route_cache {
            Some(cache) => {
                self.invoke_cached(from, cache, target, op, arg, subject, true, admit_by)
            }
            None => self.invoke_inner(from, target, op, arg, subject, true, true, admit_by),
        };
        PendingReply::Retrying(Box::new(RetryState::new(
            self.downgrade(),
            from,
            target,
            op_kept,
            arg_kept,
            opts.retry,
            opts.deadline,
            subject,
            inner,
            self.inner.metrics.clone(),
        )))
    }

    /// Route an invocation originating on `from` to `target`, reactivating
    /// a passive target if necessary.
    pub(crate) fn invoke_from(
        &self,
        from: NodeId,
        target: Uid,
        op: OpName,
        arg: Value,
    ) -> PendingReply {
        self.invoke_inner(from, target, op, arg, true, true, false, None)
    }

    /// The uncached delivery path: meter, shutdown check, fault decision,
    /// resolve, dispatch.
    ///
    /// `first_attempt` opens the ledger entry for this *logical*
    /// invocation (`invocations`, `bytes_invoked`); the retry driver's
    /// re-sends pass `false` so a retried invocation counts once however
    /// many times it is re-sent. `driver_owned` marks invocations whose
    /// terminal outcome is settled by a [`RetryState`] — every failure
    /// here is per-attempt, not terminal, so the ledger's outcome side is
    /// left to the driver.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn invoke_inner(
        &self,
        from: NodeId,
        target: Uid,
        op: OpName,
        arg: Value,
        subject_to_faults: bool,
        first_attempt: bool,
        driver_owned: bool,
        admit_by: Option<std::time::Instant>,
    ) -> PendingReply {
        let metrics = &self.inner.metrics;
        if first_attempt {
            metrics.record_invocation(arg.size_hint());
        }
        let fail = |e: EdenError| {
            if !driver_owned {
                metrics.record_fatal_failure();
            }
            PendingReply::ready(Err(e))
        };
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return fail(EdenError::KernelShutdown);
        }
        if subject_to_faults {
            if let Some(err) = self.apply_fault(target, &op) {
                self.record_faulted_span(from, target, &op);
                return fail(err);
            }
        }
        let route = match self.resolve_route(target) {
            Ok(route) => route,
            Err(e) => return fail(e),
        };
        let (mut handle, pending) = self.reply_pair_for(target, &op, from, &route, driver_owned);
        if let Some(admit_by) = admit_by {
            handle.set_admit_by(admit_by);
        }
        self.dispatch_route(from, &route, Invocation { op, arg }, handle);
        pending
    }

    /// Build the reply pair for a resolved dispatch, wiring in outcome
    /// metering (non-driver invocations settle the ledger at reply time)
    /// and the observability tag (span coordinates + enqueue timestamp)
    /// when the plane is enabled.
    fn reply_pair_for(
        &self,
        target: Uid,
        op: &OpName,
        from: NodeId,
        route: &Route,
        driver_owned: bool,
    ) -> (ReplyHandle, PendingReply) {
        let (mut handle, pending) = reply_pair(target, self.inner.metrics.clone());
        if !driver_owned {
            handle.set_meter_outcome();
        }
        if let Some(obs) = &self.inner.obs {
            // Histogram-only mode never reads the span coordinates; skip
            // the thread-local lookup and the span-id allocation.
            let ctx = if obs.config().spans {
                eden_core::span::child_of_current()
            } else {
                eden_core::span::SpanContext {
                    trace: 0,
                    span: 0,
                    parent: None,
                    hop: 0,
                }
            };
            handle.set_obs(ObsTag::new(
                Arc::clone(obs),
                ctx,
                target,
                op.clone(),
                from,
                route.node,
            ));
        }
        (handle, pending)
    }

    /// Make a fault-injected delivery visible to the observability plane.
    /// The attempt never built a reply pair (and so carries no [`ObsTag`]);
    /// a zero-duration failed span is recorded directly, keeping injected
    /// drops, errors, and crashes in the causal tree their retries belong
    /// to.
    fn record_faulted_span(&self, from: NodeId, target: Uid, op: &OpName) {
        if let Some(obs) = &self.inner.obs {
            if obs.config().spans {
                obs.record_faulted(eden_core::span::child_of_current(), target, op, from);
            }
        }
    }

    /// Consult the fault injector for this delivery attempt. `Some` means
    /// the invocation's fate was decided here (dropped, failed, or its
    /// target crashed); `None` means deliver normally, possibly after an
    /// injected delay. Faulted invocations never reach a mailbox; the
    /// logical invocation is still in the ledger (metered at first
    /// attempt), and `faults_injected` counts the decision.
    fn apply_fault(&self, target: Uid, op: &OpName) -> Option<EdenError> {
        if !self.inner.faults.armed() {
            return None;
        }
        let decision = self.inner.faults.decide(target, op)?;
        self.inner.metrics.record_fault_injected();
        match decision.kind {
            // A lost invocation, observed as the timeout it would become —
            // immediately, so retry backoff (not a 30 s deadline) paces
            // the recovery.
            FaultKind::Drop => Some(EdenError::Timeout),
            FaultKind::Error => Some(EdenError::FaultInjected(decision.label)),
            FaultKind::CrashTarget => {
                // Fail-stop the target, then fail this invocation the way
                // an in-flight invocation dies with its responder. If the
                // target ever checkpointed, a retry reactivates it.
                let _ = self.crash(target);
                Some(EdenError::EjectCrashed(target))
            }
            FaultKind::Delay(latency) => {
                crate::sched::blocking(|| std::thread::sleep(latency));
                None
            }
        }
    }

    /// Install a fault plan on the invocation path, replacing any previous
    /// plan. Every delivery attempt (including retries) of a non-immune
    /// invocation consults the plan.
    pub fn install_faults(&self, plan: FaultPlan) {
        self.inner.faults.install(plan);
    }

    /// Remove the installed fault plan.
    pub fn clear_faults(&self) {
        self.inner.faults.clear();
    }

    /// The cached-route invocation path. Semantically identical to
    /// [`Kernel::invoke_from`]; differs only in cost (a hit skips the
    /// registry) and in the `route_cache_hits`/`route_cache_misses`
    /// counters. This path is always a first attempt (retry re-sends never
    /// carry a cache), so it opens the ledger entry unconditionally; a
    /// stale-route fallback redelivers the same logical invocation and
    /// meters nothing extra.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn invoke_cached(
        &self,
        from: NodeId,
        cache: &mut RouteCache,
        target: Uid,
        op: OpName,
        arg: Value,
        subject_to_faults: bool,
        driver_owned: bool,
        admit_by: Option<std::time::Instant>,
    ) -> PendingReply {
        let metrics = &self.inner.metrics;
        // Meter BEFORE the send: the receiver may handle the envelope (and
        // an observer snapshot the counters) before this thread runs again,
        // so the count must be visible no later than the envelope.
        metrics.record_invocation(arg.size_hint());
        let fail = |e: EdenError| {
            if !driver_owned {
                metrics.record_fatal_failure();
            }
            PendingReply::ready(Err(e))
        };
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return fail(EdenError::KernelShutdown);
        }
        if subject_to_faults {
            if let Some(err) = self.apply_fault(target, &op) {
                self.record_faulted_span(from, target, &op);
                return fail(err);
            }
        }
        if let Some(route) = cache.lookup(target) {
            if let Some(trace) = &self.inner.trace {
                trace.record_invoke(target, &op, from, route.node);
            }
            if route.node != from {
                metrics.record_remote_invocation();
                if let Some(latency) = self.inner.config.remote_latency {
                    crate::sched::blocking(|| std::thread::sleep(latency));
                }
            }
            if let Some(latency) = self.inner.config.invocation_latency {
                crate::sched::blocking(|| std::thread::sleep(latency));
            }
            let (mut handle, pending) = self.reply_pair_for(target, &op, from, &route, driver_owned);
            if let Some(admit_by) = admit_by {
                handle.set_admit_by(admit_by);
            }
            match route
                .tx
                .send(Envelope::Invocation(Invocation { op, arg }, handle))
            {
                Ok(outcome) => {
                    metrics.record_route_cache_hit();
                    self.settle_send_outcome(outcome);
                    pending
                }
                Err(SendError(envelope)) => {
                    // The cached coordinator exited. Recover the very same
                    // invocation and reply handle from the bounced envelope
                    // and retry through the registry, which reactivates a
                    // passive target exactly as an uncached send would.
                    // The logical invocation is already in the ledger; the
                    // redelivery must not meter again, or a stale route
                    // would count two invocations where the uncached path
                    // counts one.
                    cache.invalidate(target);
                    metrics.record_route_cache_miss();
                    let Envelope::Invocation(invocation, handle) = envelope else {
                        unreachable!("bounced envelope is the invocation just sent");
                    };
                    match self.resolve_route(target) {
                        Ok(fresh) => {
                            cache.insert(fresh.clone());
                            // A second bounce (send error) means the fresh
                            // coordinator also exited; dropping the envelope
                            // resolves the reply with EjectCrashed.
                            if let Ok(outcome) =
                                fresh.tx.send(Envelope::Invocation(invocation, handle))
                            {
                                self.settle_send_outcome(outcome);
                            }
                        }
                        // Resolve silently: the uncached path reports a
                        // missing target without metering a reply, so the
                        // cached path must too. (The handle still settles
                        // the outcome ledger — the invocation failed.)
                        Err(e) => handle.resolve_silent(e),
                    }
                    pending
                }
            }
        } else {
            metrics.record_route_cache_miss();
            let route = match self.resolve_route(target) {
                Ok(route) => route,
                Err(e) => return fail(e),
            };
            cache.insert(route.clone());
            let (mut handle, pending) = self.reply_pair_for(target, &op, from, &route, driver_owned);
            if let Some(admit_by) = admit_by {
                handle.set_admit_by(admit_by);
            }
            self.dispatch_route(from, &route, Invocation { op, arg }, handle);
            pending
        }
    }

    /// Resolve whatever admission control did on a successful send: count
    /// each shed under its policy label and resolve its reply with the
    /// retryable [`EdenError::Overloaded`], so waiters observe the shed as
    /// overload (not as a crash) and retry drivers back off and re-send.
    fn settle_send_outcome(&self, outcome: SendOutcome) {
        match outcome {
            SendOutcome::Delivered => {}
            SendOutcome::DeliveredEvicting(evicted) => {
                for (envelope, cause) in evicted {
                    self.resolve_shed(envelope, cause);
                }
            }
            SendOutcome::Rejected(envelope, cause) => self.resolve_shed(envelope, cause),
        }
    }

    fn resolve_shed(&self, envelope: Envelope, cause: ShedCause) {
        match cause {
            ShedCause::Newest => self.inner.metrics.record_shed_newest(),
            ShedCause::Oldest => self.inner.metrics.record_shed_oldest(),
            ShedCause::Expired => self.inner.metrics.record_shed_expired(),
            ShedCause::ParkTimeout => self.inner.metrics.record_shed_park_timeout(),
        }
        // The mailbox only ever sheds invocations; anything else would be
        // a protocol bug, and dropping it here is the safe failure mode.
        if let Envelope::Invocation(_, handle) = envelope {
            let target = handle.responder();
            handle.resolve_silent(EdenError::Overloaded {
                target,
                policy: cause.policy_label(),
            });
        }
    }

    /// Resolve `target` to a live mailbox route, reactivating it from its
    /// passive representation if needed. The fast path (target already
    /// active) takes only a shard read lock; reactivation upgrades to the
    /// shard write lock and re-checks, so concurrent resolvers of the same
    /// passive target activate it exactly once.
    fn resolve_route(&self, target: Uid) -> Result<Route> {
        let shard = self.inner.shard(target);
        {
            let slots = shard.slots.read();
            match slots.get(&target) {
                None => return Err(EdenError::NoSuchEject(target)),
                Some(slot) => {
                    if let SlotState::Active { tx, .. } = &slot.state {
                        return Ok(Route {
                            target,
                            tx: tx.clone(),
                            node: slot.node,
                            incarnation: slot.incarnation,
                        });
                    }
                }
            }
        }
        let mut slots = shard.slots.write();
        loop {
            match slots.get(&target) {
                None => return Err(EdenError::NoSuchEject(target)),
                Some(slot) => match &slot.state {
                    SlotState::Active { tx, .. } => {
                        return Ok(Route {
                            target,
                            tx: tx.clone(),
                            node: slot.node,
                            incarnation: slot.incarnation,
                        })
                    }
                    SlotState::Passive { .. } => {
                        // "If a passive eject is sent an invocation, the
                        // Eden kernel will activate it" (§1).
                        self.reactivate(&mut slots, target)?;
                    }
                },
            }
        }
    }

    /// Deliver a resolved invocation: trace, inject latency, send. (The
    /// ledger entry was opened by the caller — once per logical
    /// invocation, not per delivery attempt.) Runs with no kernel lock
    /// held — the route owns clones of everything it needs — so injected
    /// latency delays only this sender and can never serialise unrelated
    /// invocations.
    fn dispatch_route(
        &self,
        from: NodeId,
        route: &Route,
        invocation: Invocation,
        handle: ReplyHandle,
    ) {
        let metrics = &self.inner.metrics;
        if let Some(trace) = &self.inner.trace {
            trace.record_invoke(route.target, &invocation.op, from, route.node);
        }
        if route.node != from {
            metrics.record_remote_invocation();
            if let Some(latency) = self.inner.config.remote_latency {
                crate::sched::blocking(|| std::thread::sleep(latency));
            }
        }
        if let Some(latency) = self.inner.config.invocation_latency {
            crate::sched::blocking(|| std::thread::sleep(latency));
        }
        // A send failure means the coordinator already exited; dropping
        // `handle` resolves the pending reply with EjectCrashed, which is
        // the correct observation for the caller. A successful send may
        // still have shed envelopes (admission control at a full bounded
        // mailbox); those resolve with `Overloaded`.
        if let Ok(outcome) = route.tx.send(Envelope::Invocation(invocation, handle)) {
            self.settle_send_outcome(outcome);
        }
    }

    /// The node an Eject is placed on (node 0 if never placed).
    pub fn node_of(&self, uid: Uid) -> NodeId {
        self.inner
            .shard(uid)
            .slots
            .read()
            .get(&uid)
            .map(|slot| slot.node)
            .unwrap_or_default()
    }

    /// The Eden type name of a *passive* Eject, read from its registry
    /// entry. Active Ejects answer `Describe` instead.
    pub fn passive_type_name(&self, uid: Uid) -> Option<String> {
        let slots = self.inner.shard(uid).slots.read();
        match slots.get(&uid).map(|slot| &slot.state) {
            Some(SlotState::Passive { type_name }) => Some(type_name.clone()),
            _ => None,
        }
    }

    /// The current state of `uid`, if the kernel knows it.
    pub fn eject_state(&self, uid: Uid) -> Option<EjectState> {
        let slots = self.inner.shard(uid).slots.read();
        slots.get(&uid).map(|slot| match slot.state {
            SlotState::Active { .. } => EjectState::Active,
            SlotState::Passive { .. } => EjectState::Passive,
        })
    }

    /// Number of Ejects the kernel currently knows (active + passive).
    pub fn eject_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|shard| shard.slots.read().len())
            .sum()
    }

    /// A snapshot of every known Eject, sorted by UID.
    pub fn list_ejects(&self) -> Vec<EjectInfo> {
        let mut rows: Vec<EjectInfo> = Vec::new();
        for shard in self.inner.shards.iter() {
            let slots = shard.slots.read();
            rows.extend(slots.iter().map(|(uid, slot)| match &slot.state {
                SlotState::Active { type_name, .. } => EjectInfo {
                    uid: *uid,
                    state: EjectState::Active,
                    type_name: (*type_name).to_owned(),
                    node: slot.node,
                },
                SlotState::Passive { type_name } => EjectInfo {
                    uid: *uid,
                    state: EjectState::Passive,
                    type_name: type_name.clone(),
                    node: slot.node,
                },
            }));
        }
        rows.sort_by_key(|r| r.uid);
        rows
    }

    /// Simulated fail-stop crash of one Eject. The coordinator stops at
    /// its next dispatch point without replying to anything outstanding;
    /// waiters observe [`EdenError::EjectCrashed`]. Blocks until the
    /// coordinator has exited — except when an Eject crashes *itself*
    /// (scheduler mode detects this and returns without waiting; in
    /// threads mode a self-crash must not be attempted from the
    /// coordinator thread).
    pub fn crash(&self, uid: Uid) -> Result<()> {
        enum CrashWait {
            Join(Option<JoinHandle<()>>),
            Task(Arc<Task>),
        }
        let (tx, wait) = {
            let mut slots = self.inner.shard(uid).slots.write();
            match slots.get_mut(&uid).map(|slot| &mut slot.state) {
                Some(SlotState::Active { tx, exec, .. }) => {
                    let wait = match exec {
                        ExecHandle::Thread(join) => CrashWait::Join(join.take()),
                        ExecHandle::Task(task) => CrashWait::Task(Arc::clone(task)),
                    };
                    (tx.clone(), wait)
                }
                Some(SlotState::Passive { .. }) => return Ok(()),
                None => return Err(EdenError::NoSuchEject(uid)),
            }
        };
        self.inner.metrics.record_crash();
        // Crash must land even if the mailbox is bounded and full.
        let _ = tx.force_send(Envelope::Crash);
        drop(tx);
        match wait {
            CrashWait::Join(Some(join)) => {
                // eden-lint: nonblocking(threads-mode coordinator joins; no pool exists in that mode)
                let _ = join.join();
            }
            CrashWait::Join(None) => {}
            CrashWait::Task(task) => {
                // A worker crashing the very task it is resuming cannot
                // wait for that task to die — it dies when this dispatch
                // returns. Every other caller gets the blocking semantics.
                if crate::sched::current_task() != Some(uid) {
                    task.wait_dead();
                }
            }
        }
        Ok(())
    }

    /// Store a checkpoint on behalf of an Eject (used by `EjectContext`).
    /// A checkpoint that fails to persist is *not* durable, and the error
    /// must reach the Eject so it does not acknowledge work it would lose.
    pub(crate) fn store_checkpoint(&self, uid: Uid, type_name: &str, bytes: Bytes) -> Result<()> {
        self.inner.stable.store(uid, type_name, bytes)
    }

    /// Called by a coordinator as its last act. Decides the Eject's fate:
    /// passive if it ever checkpointed, gone otherwise.
    pub(crate) fn on_eject_exit(&self, uid: Uid, incarnation: u64, crashed: bool) {
        if let Some(trace) = &self.inner.trace {
            trace.record_stop(uid, crashed);
        }
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let mut slots = self.inner.shard(uid).slots.write();
        let is_current = matches!(
            slots.get(&uid),
            Some(Slot { state: SlotState::Active { .. }, incarnation: cur, .. })
                if *cur == incarnation
        );
        if !is_current {
            return;
        }
        match self.inner.stable.load(uid) {
            Ok(record) => {
                // The shard write lock has been held since the currency
                // check, so the slot is still there; the exit path must
                // not carry a panic, so degrade to a no-op if it is not.
                if let Some(slot) = slots.get_mut(&uid) {
                    slot.state = SlotState::Passive {
                        type_name: record.type_name,
                    };
                }
            }
            Err(_) => {
                // Never checkpointed: "since it has never Checkpointed,
                // [it] disappears" (§7).
                slots.remove(&uid);
            }
        }
    }

    /// Reactivate a passive Eject: load its checkpoint, run its type's
    /// constructor, and start a fresh coordinator under the same UID.
    /// Called with the target's shard write lock held.
    // eden-lint: holds(registry-shard)
    fn reactivate(&self, slots: &mut HashMap<Uid, Slot>, uid: Uid) -> Result<()> {
        let record = self.inner.stable.load(uid)?;
        let factory = self
            .inner
            .types
            .lock()
            .get(&record.type_name)
            .cloned()
            .ok_or_else(|| {
                EdenError::Application(format!(
                    "no type constructor registered for `{}`",
                    record.type_name
                ))
            })?;
        // Zero-copy reactivation: the state's payloads alias the
        // checkpoint buffer instead of being copied out of it.
        let state = wire::decode_shared(&record.bytes)?;
        let behavior = factory(Some(state))?;
        let node = slots.get(&uid).map(|slot| slot.node).unwrap_or_default();
        self.inner.metrics.record_reactivation();
        self.start_coordinator(slots, uid, node, behavior)
    }

    // Receives the shard guard's map from its caller (spawn or
    // reactivate), so the shard lock is held for the whole body.
    // eden-lint: holds(registry-shard)
    fn start_coordinator(
        &self,
        slots: &mut HashMap<Uid, Slot>,
        uid: Uid,
        node: NodeId,
        behavior: Box<dyn EjectBehavior>,
    ) -> Result<()> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(EdenError::KernelShutdown);
        }
        let incarnation = slots.get(&uid).map(|slot| slot.incarnation).unwrap_or(0) + 1;
        let (tx, core) = mailbox(
            self.inner.config.mailbox_capacity,
            self.inner.config.shed_policy,
        );
        let type_name = behavior.type_name();
        let ctx = Arc::new(EjectContext {
            uid,
            node,
            type_name,
            kernel: self.downgrade(),
            mailbox: tx.clone(),
            metrics: self.inner.metrics.clone(),
            stop: Arc::new(AtomicBool::new(false)),
            deactivate: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        self.inner.metrics.record_activation();
        if let Some(trace) = &self.inner.trace {
            trace.record_activate(uid, type_name);
        }
        let weak = self.downgrade();
        // The coordinator inherits the spawner's ambient span: an Eject
        // activated while a pipeline (or a retry holding its origin span)
        // is ambient joins that trace, so invocations its `activate` hook
        // sends — e.g. a conventional pump spawning — and a
        // crash/reactivate cycle both stay causally connected.
        let ambient = eden_core::span::current();
        let exec = match &self.inner.sched {
            Some(sched) => ExecHandle::Task(sched.spawn_task(
                core, ctx, weak, incarnation, behavior, ambient,
            )),
            None => {
                let rx = receiver(core);
                let join = std::thread::Builder::new()
                    .name(format!("eject-{}-{type_name}", uid.seq()))
                    .spawn(move || {
                        let _span = ambient.map(|ctx| eden_core::span::enter(Some(ctx)));
                        run_coordinator(behavior, ctx, rx, weak, incarnation)
                    })
                    .map_err(|e| {
                        EdenError::Application(format!("cannot spawn coordinator: {e}"))
                    })?;
                ExecHandle::Thread(Some(join))
            }
        };
        slots.insert(
            uid,
            Slot {
                state: SlotState::Active {
                    tx,
                    exec,
                    type_name,
                },
                node,
                incarnation,
            },
        );
        Ok(())
    }

    /// Stop every Eject and join every coordinator, then (in scheduler
    /// mode) stop the worker pool. Idempotent. Passive representations
    /// survive in the stable store.
    pub fn shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        let mut entries: Vec<(MailboxSender, ExecHandle)> = Vec::new();
        for shard in self.inner.shards.iter() {
            let mut slots = shard.slots.write();
            entries.extend(slots.drain().filter_map(|(_, slot)| match slot.state {
                SlotState::Active { tx, exec, .. } => Some((tx, exec)),
                SlotState::Passive { .. } => None,
            }));
        }
        shutdown_entries(entries, self.inner.sched.as_ref());
        if let Some(sched) = &self.inner.sched {
            sched.stop();
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        // Last user-visible handle: shut the kernel down. Coordinators
        // hold only weak references, so they do not keep the kernel alive.
        // (If a racing upgrade makes the count transiently higher, the
        // KernelInner::drop backstop finishes the job.)
        if Arc::strong_count(&self.inner) == 1 {
            self.shutdown();
        }
    }
}
