//! The Eden kernel: Eject registry, invocation routing, activation and
//! crash/recovery.
//!
//! The real Eden kernel ran on several VAXen and routed invocations over a
//! 10 Mbit Ethernet; this reproduction runs every Eject as a thread in one
//! process and models distribution with [`NodeId`] placement, a remote
//! invocation counter, and optional injected latency. The observable
//! semantics the paper relies on are preserved:
//!
//! * invocation is location independent — callers name a [`Uid`], never a
//!   machine;
//! * "if a passive eject is sent an invocation, the Eden kernel will
//!   activate it" (§1) — see [`Kernel::register_type`];
//! * checkpointed state survives crashes; an Eject that never checkpointed
//!   disappears when it deactivates or crashes (the fate of §7's `UnixFile`
//!   Ejects).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use eden_core::{wire, EdenError, Metrics, OpName, Result, Uid, Value};
use parking_lot::Mutex;

use crate::behavior::EjectBehavior;
use crate::context::EjectContext;
use crate::invocation::{reply_pair, Invocation, PendingReply};
use crate::runtime::{run_coordinator, Envelope};
use crate::stable::StableStore;

/// A simulated machine. Ejects placed on different nodes pay the remote
/// invocation surcharge in the cost model (and optional injected latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u16);

/// Construction-time options for a [`Kernel`].
#[derive(Debug, Clone, Default)]
pub struct KernelConfig {
    /// Real latency added to every cross-node invocation (send side).
    pub remote_latency: Option<Duration>,
    /// Real latency added to every invocation, local or remote.
    pub invocation_latency: Option<Duration>,
    /// Keep a ring of the last N kernel events (invocations, activations,
    /// stops) readable via [`Kernel::trace_events`]. 0 disables tracing.
    pub trace_capacity: usize,
}

/// A reactivation constructor: turns a decoded passive representation back
/// into a running behaviour.
pub type TypeFactory =
    Arc<dyn Fn(Option<Value>) -> Result<Box<dyn EjectBehavior>> + Send + Sync>;

/// Whether a UID currently names a running coordinator or a passive
/// representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EjectState {
    /// The Eject has a running coordinator thread.
    Active,
    /// The Eject exists only as its passive representation; the next
    /// invocation will reactivate it.
    Passive,
}

enum Entry {
    Active {
        tx: Sender<Envelope>,
        join: Option<JoinHandle<()>>,
        /// Increments on every (re)activation, so an exiting incarnation
        /// cannot demote a successor that reused its UID.
        incarnation: u64,
        type_name: &'static str,
    },
    Passive {
        type_name: String,
    },
}

/// One row of [`Kernel::list_ejects`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EjectInfo {
    /// The Eject's UID.
    pub uid: Uid,
    /// Running or passive.
    pub state: EjectState,
    /// Its Eden type name.
    pub type_name: String,
    /// Its simulated node.
    pub node: NodeId,
}

pub(crate) struct KernelInner {
    registry: Mutex<HashMap<Uid, Entry>>,
    types: Mutex<HashMap<String, TypeFactory>>,
    nodes: Mutex<HashMap<Uid, NodeId>>,
    incarnations: Mutex<HashMap<Uid, u64>>,
    stable: StableStore,
    metrics: Metrics,
    config: KernelConfig,
    trace: Option<crate::trace::TraceLog>,
    shutting_down: AtomicBool,
}

impl Drop for KernelInner {
    fn drop(&mut self) {
        // Reached only when every strong handle (user-visible or the
        // short-lived upgrades inside Eject contexts) is gone. Normally
        // `Kernel::drop` has already shut everything down; this is the
        // backstop for the race where two handles drop concurrently and
        // each thought the other would do it.
        self.shutting_down.store(true, Ordering::Release);
        let entries: Vec<(Sender<Envelope>, Option<JoinHandle<()>>)> = self
            .registry
            .get_mut()
            .drain()
            .filter_map(|(_, e)| match e {
                Entry::Active { tx, join, .. } => Some((tx, join)),
                Entry::Passive { .. } => None,
            })
            .collect();
        shutdown_entries(entries);
    }
}

/// Tell every coordinator to stop, release our senders, then join. The
/// sender release must precede the joins: a coordinator may be blocked
/// waiting for an envelope queued at another (already exited) coordinator
/// to be dropped, which happens only once every sender for that mailbox is
/// gone.
fn shutdown_entries(entries: Vec<(Sender<Envelope>, Option<JoinHandle<()>>)>) {
    let mut joins = Vec::with_capacity(entries.len());
    for (tx, join) in entries {
        let _ = tx.send(Envelope::Shutdown);
        drop(tx);
        joins.push(join);
    }
    let current = std::thread::current().id();
    for join in joins.into_iter().flatten() {
        // Never join the current thread: shutdown can be triggered from
        // inside a coordinator when it drops the last kernel handle.
        if join.thread().id() != current {
            let _ = join.join();
        }
    }
}

/// A weak reference to the kernel, held by Eject contexts so the kernel can
/// shut down when the last user-visible [`Kernel`] handle drops.
#[derive(Clone)]
pub struct WeakKernel(Weak<KernelInner>);

impl WeakKernel {
    /// Upgrade to a full handle if the kernel is still alive.
    pub fn upgrade(&self) -> Option<Kernel> {
        self.0.upgrade().map(|inner| Kernel { inner })
    }
}

/// Handle to a simulated Eden kernel.
///
/// Clones share the kernel. When the last clone drops, the kernel shuts
/// down: every coordinator receives a shutdown envelope and is joined.
/// Prefer calling [`Kernel::shutdown`] explicitly in tests so teardown
/// problems surface where they happen.
pub struct Kernel {
    inner: Arc<KernelInner>,
}

impl Clone for Kernel {
    fn clone(&self) -> Self {
        Kernel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Kernel {
    /// A kernel with default configuration and a fresh stable store.
    pub fn new() -> Self {
        Kernel::with_config(KernelConfig::default())
    }

    /// A kernel with explicit configuration.
    pub fn with_config(config: KernelConfig) -> Self {
        Kernel::with_stable_store(config, StableStore::new())
    }

    /// A kernel attached to an existing stable store — how the tests
    /// simulate whole-system restart: build a new kernel over the old
    /// store and re-register the type constructors. Checkpointed Ejects
    /// from the previous life are immediately invocable (they reactivate
    /// on first invocation).
    pub fn with_stable_store(config: KernelConfig, stable: StableStore) -> Self {
        let registry: HashMap<Uid, Entry> = stable
            .uids()
            .into_iter()
            .filter_map(|uid| {
                stable
                    .load(uid)
                    .ok()
                    .map(|rec| (uid, Entry::Passive { type_name: rec.type_name }))
            })
            .collect();
        let trace = (config.trace_capacity > 0)
            .then(|| crate::trace::TraceLog::new(config.trace_capacity));
        Kernel {
            inner: Arc::new(KernelInner {
                registry: Mutex::new(registry),
                types: Mutex::new(HashMap::new()),
                nodes: Mutex::new(HashMap::new()),
                incarnations: Mutex::new(HashMap::new()),
                stable,
                metrics: Metrics::new(),
                config,
                trace,
                shutting_down: AtomicBool::new(false),
            }),
        }
    }

    /// A weak handle for storage inside Eject contexts.
    pub fn downgrade(&self) -> WeakKernel {
        WeakKernel(Arc::downgrade(&self.inner))
    }

    /// The kernel-wide metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The traced kernel events, oldest first (empty unless
    /// [`KernelConfig::trace_capacity`] was set).
    pub fn trace_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.inner
            .trace
            .as_ref()
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// Invocation tallies per target Eject, busiest first (empty unless
    /// tracing is enabled).
    pub fn invocations_by_target(&self) -> Vec<(Uid, u64)> {
        self.inner
            .trace
            .as_ref()
            .map(|t| t.per_target())
            .unwrap_or_default()
    }

    /// The stable store backing this kernel.
    pub fn stable_store(&self) -> &StableStore {
        &self.inner.stable
    }

    /// Register the reactivation constructor for an Eden type. Required
    /// before any Eject of that type can be reactivated from its passive
    /// representation.
    pub fn register_type<F>(&self, type_name: &str, factory: F)
    where
        F: Fn(Option<Value>) -> Result<Box<dyn EjectBehavior>> + Send + Sync + 'static,
    {
        self.inner
            .types
            .lock()
            .insert(type_name.to_owned(), Arc::new(factory));
    }

    /// Create and start an Eject on node 0. Returns its UID.
    pub fn spawn(&self, behavior: Box<dyn EjectBehavior>) -> Result<Uid> {
        self.spawn_on(NodeId::default(), behavior)
    }

    /// Create and start an Eject on a specific simulated node.
    pub fn spawn_on(&self, node: NodeId, behavior: Box<dyn EjectBehavior>) -> Result<Uid> {
        let uid = Uid::fresh();
        self.inner.metrics.record_eject_created();
        self.inner.nodes.lock().insert(uid, node);
        let mut registry = self.inner.registry.lock();
        self.start_coordinator(&mut registry, uid, node, behavior)?;
        Ok(uid)
    }

    /// Send an invocation from outside the Eden system (a "user
    /// terminal"). External callers originate on node 0.
    pub fn invoke(&self, target: Uid, op: impl Into<OpName>, arg: Value) -> PendingReply {
        self.invoke_from(NodeId::default(), target, op.into(), arg)
    }

    /// Send an invocation and wait for the reply.
    pub fn invoke_sync(
        &self,
        target: Uid,
        op: impl Into<OpName>,
        arg: Value,
    ) -> Result<Value> {
        self.invoke(target, op, arg).wait()
    }

    /// Route an invocation originating on `from` to `target`, reactivating
    /// a passive target if necessary.
    pub(crate) fn invoke_from(
        &self,
        from: NodeId,
        target: Uid,
        op: OpName,
        arg: Value,
    ) -> PendingReply {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return PendingReply::ready(Err(EdenError::KernelShutdown));
        }
        let tx = {
            let mut registry = self.inner.registry.lock();
            loop {
                match registry.get(&target) {
                    None => {
                        return PendingReply::ready(Err(EdenError::NoSuchEject(target)))
                    }
                    Some(Entry::Active { tx, .. }) => break tx.clone(),
                    Some(Entry::Passive { .. }) => {
                        // "If a passive eject is sent an invocation, the
                        // Eden kernel will activate it" (§1).
                        if let Err(e) = self.reactivate(&mut registry, target) {
                            return PendingReply::ready(Err(e));
                        }
                    }
                }
            }
        };
        let metrics = &self.inner.metrics;
        metrics.record_invocation(arg.size_hint());
        let target_node = self.node_of(target);
        if let Some(trace) = &self.inner.trace {
            trace.record_invoke(target, &op, from, target_node);
        }
        if target_node != from {
            metrics.record_remote_invocation();
            if let Some(latency) = self.inner.config.remote_latency {
                std::thread::sleep(latency);
            }
        }
        if let Some(latency) = self.inner.config.invocation_latency {
            std::thread::sleep(latency);
        }
        let (handle, pending) = reply_pair(target, metrics.clone());
        // A send failure means the coordinator already exited; dropping
        // `handle` resolves `pending` with EjectCrashed, which is the
        // correct observation for the caller.
        let _ = tx.send(Envelope::Invocation(Invocation { op, arg }, handle));
        pending
    }

    /// The node an Eject is placed on (node 0 if never placed).
    pub fn node_of(&self, uid: Uid) -> NodeId {
        self.inner
            .nodes
            .lock()
            .get(&uid)
            .copied()
            .unwrap_or_default()
    }

    /// The Eden type name of a *passive* Eject, read from its registry
    /// entry. Active Ejects answer `Describe` instead.
    pub fn passive_type_name(&self, uid: Uid) -> Option<String> {
        let registry = self.inner.registry.lock();
        match registry.get(&uid) {
            Some(Entry::Passive { type_name }) => Some(type_name.clone()),
            _ => None,
        }
    }

    /// The current state of `uid`, if the kernel knows it.
    pub fn eject_state(&self, uid: Uid) -> Option<EjectState> {
        let registry = self.inner.registry.lock();
        registry.get(&uid).map(|entry| match entry {
            Entry::Active { .. } => EjectState::Active,
            Entry::Passive { .. } => EjectState::Passive,
        })
    }

    /// Number of Ejects the kernel currently knows (active + passive).
    pub fn eject_count(&self) -> usize {
        self.inner.registry.lock().len()
    }

    /// A snapshot of every known Eject, sorted by UID.
    pub fn list_ejects(&self) -> Vec<EjectInfo> {
        let registry = self.inner.registry.lock();
        let mut rows: Vec<EjectInfo> = registry
            .iter()
            .map(|(uid, entry)| match entry {
                Entry::Active { type_name, .. } => EjectInfo {
                    uid: *uid,
                    state: EjectState::Active,
                    type_name: (*type_name).to_owned(),
                    node: self.node_of(*uid),
                },
                Entry::Passive { type_name } => EjectInfo {
                    uid: *uid,
                    state: EjectState::Passive,
                    type_name: type_name.clone(),
                    node: self.node_of(*uid),
                },
            })
            .collect();
        rows.sort_by_key(|r| r.uid);
        rows
    }

    /// Simulated fail-stop crash of one Eject. The coordinator stops at
    /// its next dispatch point without replying to anything outstanding;
    /// waiters observe [`EdenError::EjectCrashed`]. Blocks until the
    /// coordinator has exited. Must not be called from the Eject's own
    /// threads.
    pub fn crash(&self, uid: Uid) -> Result<()> {
        let (tx, join) = {
            let mut registry = self.inner.registry.lock();
            match registry.get_mut(&uid) {
                Some(Entry::Active { tx, join, .. }) => (tx.clone(), join.take()),
                Some(Entry::Passive { .. }) => return Ok(()),
                None => return Err(EdenError::NoSuchEject(uid)),
            }
        };
        self.inner.metrics.record_crash();
        let _ = tx.send(Envelope::Crash);
        drop(tx);
        if let Some(join) = join {
            let _ = join.join();
        }
        Ok(())
    }

    /// Store a checkpoint on behalf of an Eject (used by `EjectContext`).
    pub(crate) fn store_checkpoint(&self, uid: Uid, type_name: &str, bytes: Vec<u8>) {
        self.inner.stable.store(uid, type_name, bytes);
    }

    /// Called by a coordinator as its last act. Decides the Eject's fate:
    /// passive if it ever checkpointed, gone otherwise.
    pub(crate) fn on_eject_exit(&self, uid: Uid, incarnation: u64, crashed: bool) {
        if let Some(trace) = &self.inner.trace {
            trace.record_stop(uid, crashed);
        }
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let mut registry = self.inner.registry.lock();
        let is_current = matches!(
            registry.get(&uid),
            Some(Entry::Active { incarnation: cur, .. }) if *cur == incarnation
        );
        if !is_current {
            return;
        }
        match self.inner.stable.load(uid) {
            Ok(record) => {
                registry.insert(
                    uid,
                    Entry::Passive {
                        type_name: record.type_name,
                    },
                );
            }
            Err(_) => {
                // Never checkpointed: "since it has never Checkpointed,
                // [it] disappears" (§7).
                registry.remove(&uid);
                self.inner.nodes.lock().remove(&uid);
            }
        }
    }

    /// Reactivate a passive Eject: load its checkpoint, run its type's
    /// constructor, and start a fresh coordinator under the same UID.
    /// Called with the registry lock held.
    fn reactivate(&self, registry: &mut HashMap<Uid, Entry>, uid: Uid) -> Result<()> {
        let record = self.inner.stable.load(uid)?;
        let factory = self
            .inner
            .types
            .lock()
            .get(&record.type_name)
            .cloned()
            .ok_or_else(|| {
                EdenError::Application(format!(
                    "no type constructor registered for `{}`",
                    record.type_name
                ))
            })?;
        let state = wire::decode(&record.bytes)?;
        let behavior = factory(Some(state))?;
        let node = self.node_of(uid);
        self.start_coordinator(registry, uid, node, behavior)
    }

    fn start_coordinator(
        &self,
        registry: &mut HashMap<Uid, Entry>,
        uid: Uid,
        node: NodeId,
        behavior: Box<dyn EjectBehavior>,
    ) -> Result<()> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(EdenError::KernelShutdown);
        }
        let incarnation = {
            let mut incs = self.inner.incarnations.lock();
            let slot = incs.entry(uid).or_insert(0);
            *slot += 1;
            *slot
        };
        let (tx, rx) = unbounded();
        let type_name = behavior.type_name();
        let ctx = Arc::new(EjectContext {
            uid,
            node,
            type_name,
            kernel: self.downgrade(),
            mailbox: tx.clone(),
            metrics: self.inner.metrics.clone(),
            stop: Arc::new(AtomicBool::new(false)),
            deactivate: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        self.inner.metrics.record_activation();
        if let Some(trace) = &self.inner.trace {
            trace.record_activate(uid, type_name);
        }
        let weak = self.downgrade();
        let join = std::thread::Builder::new()
            .name(format!("eject-{}-{type_name}", uid.seq()))
            .spawn(move || run_coordinator(behavior, ctx, rx, weak, incarnation))
            .map_err(|e| EdenError::Application(format!("cannot spawn coordinator: {e}")))?;
        registry.insert(
            uid,
            Entry::Active {
                tx,
                join: Some(join),
                incarnation,
                type_name,
            },
        );
        Ok(())
    }

    /// Stop every Eject and join every coordinator. Idempotent. Passive
    /// representations survive in the stable store.
    pub fn shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        let entries: Vec<(Sender<Envelope>, Option<JoinHandle<()>>)> = {
            let mut registry = self.inner.registry.lock();
            registry
                .drain()
                .filter_map(|(_, entry)| match entry {
                    Entry::Active { tx, join, .. } => Some((tx, join)),
                    Entry::Passive { .. } => None,
                })
                .collect()
        };
        shutdown_entries(entries);
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        // Last user-visible handle: shut the kernel down. Coordinators
        // hold only weak references, so they do not keep the kernel alive.
        // (If a racing upgrade makes the count transiently higher, the
        // KernelInner::drop backstop finishes the job.)
        if Arc::strong_count(&self.inner) == 1 {
            self.shutdown();
        }
    }
}
