//! The per-Eject coordinator loop.
//!
//! Each Eject "has its own thread of control and may be thought of as active
//! at all times" (§1). The coordinator receives envelopes — invocations,
//! internal events from the Eject's own worker processes, and kernel control
//! messages — and dispatches them one at a time to the behaviour.

use eden_core::op::ops;
use eden_core::{EdenError, Value};

use crate::behavior::EjectBehavior;
use crate::context::EjectContext;
use crate::invocation::{Invocation, ReplyHandle};
use crate::kernel::WeakKernel;
use crate::mailbox::MailboxReceiver;
use std::sync::Arc;

/// A message in an Eject's mailbox.
// Envelopes live by value in the mailbox ring; boxing the invocation arm
// to shrink the three control arms would buy nothing (rings size for the
// largest arm anyway) and cost an allocation per send on the hot path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Envelope {
    /// An invocation from another Eject (or from outside the kernel).
    Invocation(Invocation, ReplyHandle),
    /// An intra-Eject event from a worker process.
    Internal(Value),
    /// Fault injection: stop immediately, reply to nothing.
    Crash,
    /// Kernel shutdown: stop immediately.
    Shutdown,
}

impl Envelope {
    /// The admission deadline of an invocation envelope (`None` for
    /// deadline-free invocations and for non-invocation traffic). Read by
    /// the mailbox admission-control path: a `Park` sender bounds its wait
    /// by it, and `DeadlineDrop` evicts entries once it has passed.
    pub(crate) fn admit_by(&self) -> Option<std::time::Instant> {
        match self {
            Envelope::Invocation(_, reply) => reply.admit_by(),
            _ => None,
        }
    }
}

/// Why the coordinator loop ended.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum ExitCause {
    Deactivated,
    Crashed,
    Shutdown,
}

/// Run an Eject to completion. This is the body of the coordinator thread
/// (`threads` execution mode only — scheduler mode runs the same protocol
/// as a state machine in [`crate::sched`]).
pub(crate) fn run_coordinator(
    mut behavior: Box<dyn EjectBehavior>,
    ctx: Arc<EjectContext>,
    mailbox: MailboxReceiver,
    kernel: WeakKernel,
    incarnation: u64,
) {
    behavior.activate(&ctx);
    let cause = loop {
        if ctx.deactivate_requested() {
            break ExitCause::Deactivated;
        }
        // eden-lint: nonblocking(threads-mode coordinator thread, never a pool worker)
        match mailbox.recv() {
            Ok(Envelope::Invocation(inv, mut reply)) => {
                // Stamp the dequeue time (splitting queue wait from service
                // time) and make the invocation's span ambient for the whole
                // dispatch, so invocations sent while handling this one
                // become its children in the trace tree.
                let _span = reply.begin_service();
                dispatch(behavior.as_mut(), &ctx, &kernel, inv, reply);
            }
            Ok(Envelope::Internal(event)) => behavior.internal(&ctx, event),
            Ok(Envelope::Crash) => break ExitCause::Crashed,
            Ok(Envelope::Shutdown) => break ExitCause::Shutdown,
            // All senders gone: the kernel entry was removed.
            Err(()) => break ExitCause::Shutdown,
        }
    };
    behavior.deactivating(&ctx);
    ctx.begin_stop();
    // Dropping the behaviour releases any parked ReplyHandles, unblocking
    // Ejects (and workers) waiting on this one — required for workers of
    // *other* Ejects to observe teardown and exit, which in turn lets their
    // coordinators join them.
    drop(behavior);
    // Drain the mailbox so queued invocations fail fast instead of waiting
    // for a timeout: dropping their ReplyHandles delivers EjectCrashed.
    while let Some(envelope) = mailbox.try_recv() {
        drop(envelope);
    }
    ctx.join_workers();
    if let Some(kernel) = kernel.upgrade() {
        kernel.on_eject_exit(ctx.uid(), incarnation, cause == ExitCause::Crashed);
    }
}

/// Dispatch one invocation, intercepting the runtime-provided operations.
/// Shared by the coordinator loop above and the scheduler's resume loop.
pub(crate) fn dispatch(
    behavior: &mut dyn EjectBehavior,
    ctx: &EjectContext,
    kernel: &WeakKernel,
    inv: Invocation,
    reply: ReplyHandle,
) {
    match inv.op.as_str() {
        ops::CHECKPOINT => match behavior.passive_representation() {
            Some(rep) => {
                let result = ctx.checkpoint(&rep).map(|()| Value::Unit);
                reply.reply(result);
            }
            None => reply.reply(Err(EdenError::Application(format!(
                "Eject type `{}` does not checkpoint",
                behavior.type_name()
            )))),
        },
        ops::DEACTIVATE => {
            ctx.metrics().record_deactivation();
            ctx.request_deactivate();
            reply.reply(Ok(Value::Unit));
        }
        ops::DESCRIBE => {
            reply.reply(Ok(Value::str(behavior.type_name())));
        }
        _ => {
            // Keep `kernel` threaded through for symmetry with the
            // intercepted operations; behaviours reach the kernel via ctx.
            let _ = kernel;
            behavior.handle(ctx, inv, reply);
        }
    }
}
