//! Cached invocation routes: the fast path of the invocation plane.
//!
//! Resolving a UID through the registry costs a shard lock on every
//! invocation. For stream transput that is pure overhead: a connection
//! invokes the *same* upstream Eject thousands of times in a row. A
//! [`Route`] snapshots the outcome of one resolution — the target's mailbox
//! sender, node placement, and incarnation — and a [`RouteCache`] lets a
//! connection reuse it for every subsequent invocation without touching the
//! registry at all.
//!
//! Staleness is detected, never prevented: a route goes stale when its
//! coordinator exits (deactivation, crash, shutdown), which drops the
//! mailbox receiver and makes the cached sender's `send` fail. The kernel
//! then falls back to the slow registry path — reactivating a passive
//! target exactly as an uncached invocation would ("if a passive eject is
//! sent an invocation, the Eden kernel will activate it", §1) — refreshes
//! the cache, and delivers the *same* invocation. Callers cannot observe
//! the difference except in the `route_cache_hits` / `route_cache_misses`
//! counters; location independence is preserved because the cache is an
//! optimisation below the UID abstraction, not an address handed to users.

use std::fmt;

use eden_core::Uid;

use crate::kernel::NodeId;
use crate::mailbox::MailboxSender;

/// A resolved fast path to one Eject: its mailbox, node, and incarnation
/// at resolution time. Cheap to clone (a channel-sender `Arc` bump).
///
/// A `Route` never becomes *wrong*, only *stale*: holding one does not keep
/// the target active, and sending through a stale route transparently falls
/// back to the registry.
#[derive(Clone)]
pub struct Route {
    pub(crate) target: Uid,
    pub(crate) tx: MailboxSender,
    pub(crate) node: NodeId,
    pub(crate) incarnation: u64,
}

impl Route {
    /// The UID this route leads to.
    pub fn target(&self) -> Uid {
        self.target
    }

    /// The simulated node the target was placed on when resolved.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The target's incarnation number when resolved. A reactivated Eject
    /// has a higher incarnation; comparing against
    /// [`Kernel::eject_state`](crate::Kernel::eject_state) is unnecessary —
    /// staleness is detected on send.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }
}

impl fmt::Debug for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Route")
            .field("target", &self.target)
            .field("node", &self.node)
            .field("incarnation", &self.incarnation)
            .finish_non_exhaustive()
    }
}

/// Routes kept per cache. Connections talk to a handful of Ejects (their
/// upstream, occasionally a secondary input), so a small linear map beats a
/// hash map; the cap only matters for callers that sweep many targets
/// through one cache.
const ROUTE_CACHE_CAP: usize = 32;

/// A small per-caller map from UID to [`Route`].
///
/// Deliberately *not* shared or synchronised: each connection (or external
/// caller) owns its cache, so the fast path is lock-free by construction.
/// Create one with [`RouteCache::new`] and pass it to
/// [`Kernel::invoke_with_cache`](crate::Kernel::invoke_with_cache),
/// [`EjectContext::invoke_routed`](crate::EjectContext::invoke_routed), or
/// [`ProcessContext::invoke_routed`](crate::ProcessContext::invoke_routed).
#[derive(Default, Debug)]
pub struct RouteCache {
    routes: Vec<Route>,
}

impl RouteCache {
    /// An empty cache.
    pub fn new() -> Self {
        RouteCache::default()
    }

    /// The cached route for `target`, if any.
    pub(crate) fn lookup(&self, target: Uid) -> Option<Route> {
        self.routes.iter().find(|r| r.target == target).cloned()
    }

    /// Cache `route`, replacing any previous route to the same target.
    /// Evicts the oldest entry when full.
    pub(crate) fn insert(&mut self, route: Route) {
        if let Some(existing) = self.routes.iter_mut().find(|r| r.target == route.target) {
            *existing = route;
            return;
        }
        if self.routes.len() == ROUTE_CACHE_CAP {
            self.routes.remove(0);
        }
        self.routes.push(route);
    }

    /// Drop the cached route for `target`, if any. The next invocation of
    /// that target through this cache takes the slow registry path.
    pub fn invalidate(&mut self, target: Uid) {
        self.routes.retain(|r| r.target != target);
    }

    /// Drop every cached route.
    pub fn clear(&mut self) {
        self.routes.clear();
    }

    /// Whether a route to `target` is currently cached (it may be stale).
    pub fn contains(&self, target: Uid) -> bool {
        self.routes.iter().any(|r| r.target == target)
    }

    /// Number of cached routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are cached.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}
