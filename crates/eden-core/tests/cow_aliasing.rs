//! Aliasing soundness of the zero-copy payload plane, written to run
//! under `cargo miri test -p eden-core` (the `static-analysis` CI job).
//!
//! The payload plane's whole point is that clones alias: `Text` views a
//! shared `Bytes` buffer through `str::from_utf8_unchecked`, and
//! `SharedList`/`SharedRecord` hand out `&mut` into an `Arc` via
//! `make_mut`. Those are exactly the patterns where a provenance or
//! stacked-borrows mistake would be invisible to normal tests (the bytes
//! still compare equal) but caught by miri. Each test interleaves reads
//! through one alias with mutation through another, the shape miri is
//! pickiest about.

use bytes::Bytes;
use eden_core::{SharedList, SharedRecord, Text, Value};

#[test]
fn text_aliases_survive_buffer_handle_drops() {
    let buf = Bytes::from("checkpoint record payload");
    let whole = Text::from_shared(buf.clone()).unwrap();
    let window = Text::from_shared(buf.slice(11..17)).unwrap();
    assert_eq!(window.as_str(), "record");

    // Drop the original handle: the texts keep the allocation alive, and
    // the unchecked UTF-8 view must still be readable through both.
    drop(buf);
    assert_eq!(whole.as_str(), "checkpoint record payload");
    assert_eq!(window.as_str(), "record");

    // A clone is the same span, not a copy.
    let again = window.clone();
    assert!(again.ptr_eq(&window));
    assert_eq!(again.as_str(), "record");
}

#[test]
fn list_cow_break_leaves_the_other_alias_untouched() {
    let mut a = SharedList::new(vec![Value::Int(1), Value::Int(2)]);
    let b = a.clone();
    assert!(a.ptr_eq(&b));
    assert!(a.is_aliased());

    // Mutating through `a` while `b` is alive must copy the spine, and
    // reads through `b` must stay valid across the mutation.
    a.to_mut().push(Value::Int(3));
    assert!(!a.ptr_eq(&b));
    assert_eq!(a.len(), 3);
    assert_eq!(b.len(), 2);
    assert_eq!(b[1], Value::Int(2));

    // Now unique: a second mutation must reuse the allocation in place.
    assert!(!a.is_aliased());
    let spine_before = a.as_ptr();
    a.to_mut()[0] = Value::Int(10);
    assert_eq!(a.as_ptr(), spine_before);
    assert_eq!(a[0], Value::Int(10));
}

#[test]
fn record_cow_break_and_consuming_reads_are_independent() {
    let mut a = SharedRecord::new(vec![
        (Text::from("seq"), Value::Int(7)),
        (Text::from("body"), Value::Str(Text::from("datum"))),
    ]);
    let b = a.clone();

    a.to_mut()[0].1 = Value::Int(8);
    assert!(!a.ptr_eq(&b));
    assert_eq!(b[0].1, Value::Int(7));
    assert_eq!(a[0].1, Value::Int(8));

    // Consuming an aliased record copies; consuming the now-unique one
    // must hand back the original allocation without a copy.
    let fields_b = b.into_fields();
    assert_eq!(fields_b.len(), 2);
    let fields_a = a.into_fields();
    assert_eq!(fields_a[0].1, Value::Int(8));
}

#[test]
fn nested_payload_clone_shares_every_level() {
    let inner = SharedList::new(vec![Value::Str(Text::from("shared"))]);
    let outer = Value::List(SharedList::new(vec![
        Value::List(inner.clone()),
        Value::Int(0),
    ]));
    let copy = outer.clone();

    // Clone is a reference bump at every level: mutating a deep copy
    // must not disturb the original's nested allocation.
    let mut deep = copy.deep_copy();
    if let Value::List(l) = &mut deep {
        if let Value::List(nested) = &mut l.to_mut()[0] {
            nested.to_mut().push(Value::Int(99));
        }
    }
    assert_eq!(inner.len(), 1, "deep copy mutated a shared child");
    if let Value::List(l) = &outer {
        if let Value::List(nested) = &l[0] {
            assert!(nested.ptr_eq(&inner));
        } else {
            panic!("nested value lost its list shape");
        }
    } else {
        panic!("outer value lost its list shape");
    }
}
