//! Property tests for the wire codec: arbitrary values roundtrip, and
//! arbitrary byte soup never panics the decoder.

use bytes::Bytes;
use eden_core::{wire, Uid, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary `Value` trees of bounded depth and size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        ".{0,64}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..128)
            .prop_map(|v| Value::Bytes(Bytes::from(v))),
        Just(Value::Uid(Uid::fresh())),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::List),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..8)
                .prop_map(Value::Record),
        ]
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(v in arb_value()) {
        let encoded = wire::encode(&v);
        let decoded = wire::decode(&encoded).expect("well-formed encoding must decode");
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking is not.
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn encoding_is_deterministic(v in arb_value()) {
        prop_assert_eq!(wire::encode(&v), wire::encode(&v));
    }

    #[test]
    fn size_hint_never_panics(v in arb_value()) {
        let _ = v.size_hint();
    }
}
