//! Property tests for the wire codec: arbitrary values roundtrip, and
//! arbitrary byte soup never panics the decoder. The zero-copy properties
//! of `decode_shared` are checked with pointer-range assertions: decoded
//! `Str`/`Bytes` payloads must *alias* the input buffer, not copy it.

use bytes::Bytes;
use eden_core::{wire, Uid, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary `Value` trees of bounded depth and size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        ".{0,64}".prop_map(Value::str),
        proptest::collection::vec(any::<u8>(), 0..128)
            .prop_map(|v| Value::Bytes(Bytes::from(v))),
        Just(Value::Uid(Uid::fresh())),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::list),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..8)
                .prop_map(Value::record),
        ]
    })
}

/// Assert every `Str`/`Bytes` payload (and record field name) in `v` lies
/// inside `range` — i.e. the decode aliased the input buffer rather than
/// copying. Empty payloads are exempt: a zero-length slice carries no
/// bytes to alias.
fn assert_aliases(v: &Value, range: &std::ops::Range<*const u8>) -> Result<(), String> {
    match v {
        Value::Str(s) if !s.is_empty() => {
            prop_assert!(
                range.contains(&s.as_str().as_ptr()),
                "decoded text was copied, not aliased"
            );
        }
        Value::Bytes(b) if !b.is_empty() => {
            prop_assert!(
                range.contains(&b.as_ref().as_ptr()),
                "decoded bytes were copied, not aliased"
            );
        }
        Value::List(items) => {
            for item in items.iter() {
                assert_aliases(item, range)?;
            }
        }
        Value::Record(fields) => {
            for (k, val) in fields.iter() {
                if !k.is_empty() {
                    prop_assert!(
                        range.contains(&k.as_str().as_ptr()),
                        "decoded field name was copied, not aliased"
                    );
                }
                assert_aliases(val, range)?;
            }
        }
        _ => {}
    }
    Ok(())
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(v in arb_value()) {
        let encoded = wire::encode(&v);
        let decoded = wire::decode(&encoded).expect("well-formed encoding must decode");
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn decode_shared_roundtrips_and_aliases(v in arb_value()) {
        let buf = Bytes::from(wire::encode(&v));
        let decoded = wire::decode_shared(&buf).expect("well-formed encoding must decode");
        prop_assert_eq!(&decoded, &v);
        // The aliasing check is the zero-copy proof: every decoded payload
        // pointer lies inside the input buffer. (The process-wide
        // payload-copy counters are not asserted here — sibling tests
        // encode concurrently and would race the delta.)
        assert_aliases(&decoded, &buf.as_ref().as_ptr_range())?;
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking is not.
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn encoding_is_deterministic(v in arb_value()) {
        prop_assert_eq!(wire::encode(&v), wire::encode(&v));
    }

    #[test]
    fn size_hint_never_panics(v in arb_value()) {
        let _ = v.size_hint();
    }

    #[test]
    fn encoded_len_is_exact(v in arb_value()) {
        prop_assert_eq!(wire::encode(&v).len(), v.encoded_len());
    }

    #[test]
    fn deep_copy_preserves_equality(v in arb_value()) {
        prop_assert_eq!(v.deep_copy(), v);
    }
}
