//! The dynamically-typed datum carried by invocations.
//!
//! §6 of the paper: "Nothing I have said about Eden transput constrains Eden
//! streams to be streams of bytes. Streams of arbitrary records fit into the
//! protocol just as well, provided only that they are homogeneous." The Eden
//! Programming Language lacked type parameterisation; in Rust we model the
//! untyped invocation payload with this enum and let higher layers impose
//! homogeneity where the protocol requires it.

use bytes::Bytes;

use crate::error::{EdenError, Result};
use crate::uid::Uid;

/// A self-describing datum: invocation parameter, reply, or stream record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// The absence of a datum (a bare acknowledgement).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A text string. Stream protocols that carry lines use this variant.
    Str(String),
    /// An opaque byte string. Byte-stream transput uses this variant.
    Bytes(Bytes),
    /// A UID — how capabilities travel inside invocations.
    Uid(Uid),
    /// A heterogeneous sequence.
    List(Vec<Value>),
    /// A record of named fields, in insertion order.
    Record(Vec<(String, Value)>),
}

impl Value {
    /// Build a record from field pairs.
    pub fn record<I>(fields: I) -> Value
    where
        I: IntoIterator<Item = (&'static str, Value)>,
    {
        Value::Record(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a bytes value from anything `Bytes` can be built from.
    pub fn bytes(b: impl Into<Bytes>) -> Value {
        Value::Bytes(b.into())
    }

    /// Look up a record field by name.
    pub fn field(&self, name: &str) -> Result<&Value> {
        match self {
            Value::Record(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| EdenError::BadParameter(format!("missing field `{name}`"))),
            other => Err(EdenError::BadParameter(format!(
                "expected record with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Look up an optional record field by name.
    pub fn field_opt(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Interpret as an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(other.type_error("int")),
        }
    }

    /// Interpret as a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(other.type_error("bool")),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.type_error("str")),
        }
    }

    /// Interpret as a byte string.
    pub fn as_bytes(&self) -> Result<&Bytes> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(other.type_error("bytes")),
        }
    }

    /// Interpret as a UID.
    pub fn as_uid(&self) -> Result<Uid> {
        match self {
            Value::Uid(u) => Ok(*u),
            other => Err(other.type_error("uid")),
        }
    }

    /// Interpret as a list.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(other.type_error("list")),
        }
    }

    /// Consume as a list.
    pub fn into_list(self) -> Result<Vec<Value>> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(other.type_error("list")),
        }
    }

    /// Consume as a string.
    pub fn into_str(self) -> Result<String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.type_error("str")),
        }
    }

    /// The name of this value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::Uid(_) => "uid",
            Value::List(_) => "list",
            Value::Record(_) => "record",
        }
    }

    /// An estimate of the payload size in bytes, used by the metrics layer
    /// to account for data volume moved by invocations.
    pub fn size_hint(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Uid(_) => 16,
            Value::List(items) => items.iter().map(Value::size_hint).sum::<usize>() + 4,
            Value::Record(fields) => fields
                .iter()
                .map(|(k, v)| k.len() + v.size_hint())
                .sum::<usize>()
                .saturating_add(4),
        }
    }

    fn type_error(&self, wanted: &str) -> EdenError {
        EdenError::BadParameter(format!("expected {wanted}, got {}", self.kind()))
    }
}

impl std::fmt::Display for Value {
    /// Human-oriented rendering: top-level strings print bare (stream
    /// lines look like lines); nested strings are quoted; records render
    /// as `{k: v, ...}` and lists as `[a, b]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => fmt_nested(other, f),
        }
    }
}

fn fmt_nested(v: &Value, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match v {
        Value::Unit => f.write_str("()"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Str(s) => write!(f, "{s:?}"),
        Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        Value::Uid(u) => write!(f, "{u}"),
        Value::List(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_nested(item, f)?;
            }
            f.write_str("]")
        }
        Value::Record(fields) => {
            f.write_str("{")?;
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}: ")?;
                fmt_nested(val, f)?;
            }
            f.write_str("}")
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Uid> for Value {
    fn from(u: Uid) -> Self {
        Value::Uid(u)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_lookup() {
        let v = Value::record([("status", Value::from("more")), ("count", Value::from(3))]);
        assert_eq!(v.field("status").unwrap().as_str().unwrap(), "more");
        assert_eq!(v.field("count").unwrap().as_int().unwrap(), 3);
        assert!(v.field("missing").is_err());
        assert!(v.field_opt("missing").is_none());
    }

    #[test]
    fn field_on_non_record_is_error() {
        let err = Value::Int(1).field("x").unwrap_err();
        assert!(matches!(err, EdenError::BadParameter(_)));
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::from(7).as_int().unwrap(), 7);
        assert!(Value::from(7).as_str().is_err());
        assert!(Value::from("x").as_int().is_err());
        assert!(Value::from(true).as_bool().unwrap());
        let u = Uid::fresh();
        assert_eq!(Value::from(u).as_uid().unwrap(), u);
    }

    #[test]
    fn list_accessors() {
        let v = Value::List(vec![Value::from(1), Value::from(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(v.into_list().unwrap().len(), 2);
        assert!(Value::Unit.into_list().is_err());
    }

    #[test]
    fn size_hint_reflects_payload() {
        assert_eq!(Value::str("hello").size_hint(), 5);
        assert_eq!(Value::bytes(vec![0u8; 100]).size_hint(), 100);
        let list = Value::List(vec![Value::str("ab"), Value::str("cd")]);
        assert_eq!(list.size_hint(), 2 + 2 + 4);
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Unit.kind(), "unit");
        assert_eq!(Value::record([]).kind(), "record");
    }

    #[test]
    fn display_renders_human_readably() {
        assert_eq!(Value::str("a line").to_string(), "a line");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::List(vec![Value::str("q"), Value::Int(2)]).to_string(),
            "[\"q\", 2]"
        );
        assert_eq!(
            Value::record([("n", Value::Int(1)), ("s", Value::str("x"))]).to_string(),
            "{n: 1, s: \"x\"}"
        );
        assert_eq!(Value::bytes(vec![0u8; 3]).to_string(), "<3 bytes>");
    }
}
