//! The dynamically-typed datum carried by invocations.
//!
//! §6 of the paper: "Nothing I have said about Eden transput constrains Eden
//! streams to be streams of bytes. Streams of arbitrary records fit into the
//! protocol just as well, provided only that they are homogeneous." The Eden
//! Programming Language lacked type parameterisation; in Rust we model the
//! untyped invocation payload with this enum and let higher layers impose
//! homogeneity where the protocol requires it.
//!
//! # The zero-copy payload plane
//!
//! Every payload-bearing variant is *shared, not copied*, on clone:
//!
//! * [`Value::Str`] holds a [`Text`] — an immutable UTF-8 buffer backed by
//!   [`Bytes`], so cloning is a reference bump and `wire::decode_shared`
//!   can alias string payloads straight out of a checkpoint buffer.
//! * [`Value::List`] and [`Value::Record`] hold their elements behind an
//!   `Arc` ([`SharedList`] / [`SharedRecord`]) with make-mut copy-on-write:
//!   a transform that edits a datum in place pays for a spine copy only
//!   when the datum is actually aliased (metered as a `cow_break`).
//!
//! Sharing is semantically invisible — equality, encoding, display and the
//! accessor API are unchanged — but turns the per-hop, per-consumer deep
//! copies of a stream pipeline into O(1) reference bumps. The
//! [`crate::payload`] counters meter both worlds; [`Value::deep_copy`]
//! reproduces the old copying behaviour for baseline comparisons.

use std::sync::Arc;

use bytes::Bytes;

use crate::error::{EdenError, Result};
use crate::payload;
use crate::uid::Uid;

/// An immutable, cheaply-clonable UTF-8 string backed by [`Bytes`].
///
/// Invariant: the underlying buffer is always valid UTF-8 — enforced at
/// every construction site, which is what makes the unchecked view in
/// [`Text::as_str`] sound.
#[derive(Clone)]
pub struct Text(Bytes);

impl Text {
    /// An empty text (no allocation).
    pub fn new() -> Text {
        Text(Bytes::new())
    }

    /// View as a string slice.
    pub fn as_str(&self) -> &str {
        // SAFETY: every constructor validates (or starts from) UTF-8, and
        // the buffer is immutable thereafter.
        unsafe { std::str::from_utf8_unchecked(self.0.as_ref()) }
    }

    /// The shared byte buffer backing this text. Exposed so tests can
    /// assert that decoded texts alias their input buffer.
    pub fn as_shared_bytes(&self) -> &Bytes {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Build from a shared buffer, validating UTF-8. Zero-copy: the text
    /// aliases `bytes`.
    pub fn from_shared(bytes: Bytes) -> std::result::Result<Text, std::str::Utf8Error> {
        std::str::from_utf8(bytes.as_ref())?;
        Ok(Text(bytes))
    }

    /// Copy out into an owned `String`.
    pub fn to_string_owned(&self) -> String {
        self.as_str().to_owned()
    }

    /// True if both texts share the same underlying allocation *and* span.
    pub fn ptr_eq(&self, other: &Text) -> bool {
        let a = self.0.as_ref();
        let b = other.0.as_ref();
        std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len()
    }
}

impl Default for Text {
    fn default() -> Self {
        Text::new()
    }
}

impl std::ops::Deref for Text {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Text {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::borrow::Borrow<str> for Text {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<String> for Text {
    fn from(s: String) -> Text {
        Text(Bytes::from(s))
    }
}

impl From<&str> for Text {
    fn from(s: &str) -> Text {
        Text(Bytes::from(s))
    }
}

impl From<&String> for Text {
    fn from(s: &String) -> Text {
        Text(Bytes::from(s.as_str()))
    }
}

impl From<Text> for String {
    fn from(t: Text) -> String {
        t.to_string_owned()
    }
}

impl PartialEq for Text {
    fn eq(&self, other: &Text) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Text {}

impl PartialEq<str> for Text {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Text {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Text {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Text> for str {
    fn eq(&self, other: &Text) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Text> for &str {
    fn eq(&self, other: &Text) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Text> for String {
    fn eq(&self, other: &Text) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Text {
    fn partial_cmp(&self, other: &Text) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Text {
    fn cmp(&self, other: &Text) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Text {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl std::fmt::Debug for Text {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl std::fmt::Display for Text {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A reference-counted sequence of values with make-mut copy-on-write.
#[derive(Clone, Debug)]
pub struct SharedList(Arc<Vec<Value>>);

impl SharedList {
    /// Wrap an owned vector (one allocation; never copies the elements).
    pub fn new(items: Vec<Value>) -> SharedList {
        SharedList(Arc::new(items))
    }

    /// Mutable access to the elements. If the list is aliased this breaks
    /// the sharing by copying the spine (the elements themselves are
    /// cheap-cloned, not deep-copied); the break is metered as a
    /// `cow_break`.
    pub fn to_mut(&mut self) -> &mut Vec<Value> {
        if Arc::strong_count(&self.0) > 1 {
            payload::note_cow_break();
        }
        Arc::make_mut(&mut self.0)
    }

    /// Consume into an owned vector. Free when this is the only reference;
    /// otherwise the spine is copied (elements are cheap-cloned).
    pub fn into_vec(self) -> Vec<Value> {
        match Arc::try_unwrap(self.0) {
            Ok(v) => v,
            Err(shared) => (*shared).clone(),
        }
    }

    /// True if both lists share the same allocation.
    pub fn ptr_eq(&self, other: &SharedList) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// True if any other reference to this allocation exists.
    pub fn is_aliased(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }
}

impl std::ops::Deref for SharedList {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for SharedList {
    fn from(v: Vec<Value>) -> SharedList {
        SharedList::new(v)
    }
}

impl FromIterator<Value> for SharedList {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> SharedList {
        SharedList::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SharedList {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for SharedList {
    fn eq(&self, other: &SharedList) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl Eq for SharedList {}

/// A reference-counted record (named fields, in insertion order) with
/// make-mut copy-on-write.
#[derive(Clone, Debug)]
pub struct SharedRecord(Arc<Vec<(Text, Value)>>);

impl SharedRecord {
    /// Wrap owned fields (one allocation; never copies the values).
    pub fn new(fields: Vec<(Text, Value)>) -> SharedRecord {
        SharedRecord(Arc::new(fields))
    }

    /// Mutable access to the fields; breaks sharing like
    /// [`SharedList::to_mut`].
    pub fn to_mut(&mut self) -> &mut Vec<(Text, Value)> {
        if Arc::strong_count(&self.0) > 1 {
            payload::note_cow_break();
        }
        Arc::make_mut(&mut self.0)
    }

    /// Consume into owned fields. Free when unique; spine-copied when
    /// aliased.
    pub fn into_fields(self) -> Vec<(Text, Value)> {
        match Arc::try_unwrap(self.0) {
            Ok(v) => v,
            Err(shared) => (*shared).clone(),
        }
    }

    /// True if both records share the same allocation.
    pub fn ptr_eq(&self, other: &SharedRecord) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// True if any other reference to this allocation exists.
    pub fn is_aliased(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }
}

impl std::ops::Deref for SharedRecord {
    type Target = [(Text, Value)];
    fn deref(&self) -> &[(Text, Value)] {
        &self.0
    }
}

impl From<Vec<(Text, Value)>> for SharedRecord {
    fn from(v: Vec<(Text, Value)>) -> SharedRecord {
        SharedRecord::new(v)
    }
}

impl From<Vec<(String, Value)>> for SharedRecord {
    fn from(v: Vec<(String, Value)>) -> SharedRecord {
        SharedRecord::new(v.into_iter().map(|(k, val)| (Text::from(k), val)).collect())
    }
}

impl FromIterator<(Text, Value)> for SharedRecord {
    fn from_iter<I: IntoIterator<Item = (Text, Value)>>(iter: I) -> SharedRecord {
        SharedRecord::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SharedRecord {
    type Item = &'a (Text, Value);
    type IntoIter = std::slice::Iter<'a, (Text, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for SharedRecord {
    fn eq(&self, other: &SharedRecord) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl Eq for SharedRecord {}

/// A self-describing datum: invocation parameter, reply, or stream record.
#[derive(Debug, PartialEq, Eq)]
pub enum Value {
    /// The absence of a datum (a bare acknowledgement).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A text string. Stream protocols that carry lines use this variant.
    Str(Text),
    /// An opaque byte string. Byte-stream transput uses this variant.
    Bytes(Bytes),
    /// A UID — how capabilities travel inside invocations.
    Uid(Uid),
    /// A heterogeneous sequence.
    List(SharedList),
    /// A record of named fields, in insertion order.
    Record(SharedRecord),
}

impl Clone for Value {
    /// Cloning a payload-bearing value is a reference bump, metered as a
    /// `payload_share` — before the zero-copy plane it was a deep copy.
    fn clone(&self) -> Value {
        match self {
            Value::Unit => Value::Unit,
            Value::Bool(b) => Value::Bool(*b),
            Value::Int(i) => Value::Int(*i),
            Value::Uid(u) => Value::Uid(*u),
            Value::Str(s) => {
                payload::note_share();
                Value::Str(s.clone())
            }
            Value::Bytes(b) => {
                payload::note_share();
                Value::Bytes(b.clone())
            }
            Value::List(items) => {
                payload::note_share();
                Value::List(items.clone())
            }
            Value::Record(fields) => {
                payload::note_share();
                Value::Record(fields.clone())
            }
        }
    }
}

impl Value {
    /// Build a record from field pairs.
    pub fn record<K, I>(fields: I) -> Value
    where
        K: Into<Text>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Record(SharedRecord::new(
            fields
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect(),
        ))
    }

    /// Build a list value (one allocation; elements are moved, not copied).
    pub fn list(items: impl Into<SharedList>) -> Value {
        Value::List(items.into())
    }

    /// Build a string value.
    pub fn str(s: impl Into<Text>) -> Value {
        Value::Str(s.into())
    }

    /// Build a bytes value from anything `Bytes` can be built from.
    pub fn bytes(b: impl Into<Bytes>) -> Value {
        Value::Bytes(b.into())
    }

    /// Look up a record field by name.
    pub fn field(&self, name: &str) -> Result<&Value> {
        match self {
            Value::Record(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| EdenError::BadParameter(format!("missing field `{name}`"))),
            other => Err(EdenError::BadParameter(format!(
                "expected record with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Look up an optional record field by name.
    pub fn field_opt(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Consume the record, extracting one field by name. Avoids cloning
    /// the field's payload when this value is the only reference.
    pub fn take_field(self, name: &str) -> Result<Value> {
        match self {
            Value::Record(fields) => {
                let mut fields = fields.into_fields();
                match fields.iter().position(|(k, _)| k == name) {
                    Some(i) => Ok(fields.swap_remove(i).1),
                    None => Err(EdenError::BadParameter(format!("missing field `{name}`"))),
                }
            }
            other => Err(EdenError::BadParameter(format!(
                "expected record with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Interpret as an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(other.type_error("int")),
        }
    }

    /// Interpret as a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(other.type_error("bool")),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s.as_str()),
            other => Err(other.type_error("str")),
        }
    }

    /// Interpret as a shared text.
    pub fn as_text(&self) -> Result<&Text> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.type_error("str")),
        }
    }

    /// Interpret as a byte string.
    pub fn as_bytes(&self) -> Result<&Bytes> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(other.type_error("bytes")),
        }
    }

    /// Interpret as a UID.
    pub fn as_uid(&self) -> Result<Uid> {
        match self {
            Value::Uid(u) => Ok(*u),
            other => Err(other.type_error("uid")),
        }
    }

    /// Interpret as a list.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(other.type_error("list")),
        }
    }

    /// Consume as a list. Free when this is the only reference to the
    /// list; a spine copy (cheap element clones) when aliased.
    pub fn into_list(self) -> Result<Vec<Value>> {
        match self {
            Value::List(items) => Ok(items.into_vec()),
            other => Err(other.type_error("list")),
        }
    }

    /// Consume as a string.
    pub fn into_str(self) -> Result<Text> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.type_error("str")),
        }
    }

    /// The name of this value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::Uid(_) => "uid",
            Value::List(_) => "list",
            Value::Record(_) => "record",
        }
    }

    /// The payload size in bytes, used by the metrics layer to account for
    /// data volume moved by invocations. Exact for nested lists and
    /// records: each container contributes its elements plus a fixed
    /// 4-byte framing term, each field its name plus its value.
    pub fn size_hint(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Uid(_) => 16,
            Value::List(items) => items.iter().map(Value::size_hint).sum::<usize>() + 4,
            Value::Record(fields) => fields
                .iter()
                .map(|(k, v)| k.len() + v.size_hint())
                .sum::<usize>()
                .saturating_add(4),
        }
    }

    /// The exact number of bytes [`crate::wire::encode`] will produce for
    /// this value. Used to size encode buffers so the checkpoint path
    /// never reallocates mid-encode.
    pub fn encoded_len(&self) -> usize {
        crate::wire::encoded_len(self)
    }

    /// Physically duplicate this value: every payload byte is copied into
    /// fresh allocations and metered via [`crate::payload::note_copy`].
    ///
    /// Sharing makes `clone` O(1), so nothing in the system needs this for
    /// correctness; it exists to reproduce the pre-zero-copy cost model in
    /// benchmarks and tests.
    pub fn deep_copy(&self) -> Value {
        match self {
            Value::Unit => Value::Unit,
            Value::Bool(b) => Value::Bool(*b),
            Value::Int(i) => Value::Int(*i),
            Value::Uid(u) => Value::Uid(*u),
            Value::Str(s) => {
                payload::note_copy(s.len());
                Value::Str(Text::from(s.as_str()))
            }
            Value::Bytes(b) => {
                payload::note_copy(b.len());
                Value::Bytes(Bytes::copy_from_slice(b))
            }
            Value::List(items) => Value::List(SharedList::new(
                items.iter().map(Value::deep_copy).collect(),
            )),
            Value::Record(fields) => Value::Record(SharedRecord::new(
                fields
                    .iter()
                    .map(|(k, v)| {
                        payload::note_copy(k.len());
                        (Text::from(k.as_str()), v.deep_copy())
                    })
                    .collect(),
            )),
        }
    }

    fn type_error(&self, wanted: &str) -> EdenError {
        EdenError::BadParameter(format!("expected {wanted}, got {}", self.kind()))
    }
}

impl std::fmt::Display for Value {
    /// Human-oriented rendering: top-level strings print bare (stream
    /// lines look like lines); nested strings are quoted; records render
    /// as `{k: v, ...}` and lists as `[a, b]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => fmt_nested(other, f),
        }
    }
}

fn fmt_nested(v: &Value, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match v {
        Value::Unit => f.write_str("()"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Str(s) => write!(f, "{:?}", s.as_str()),
        Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        Value::Uid(u) => write!(f, "{u}"),
        Value::List(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_nested(item, f)?;
            }
            f.write_str("]")
        }
        Value::Record(fields) => {
            f.write_str("{")?;
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}: ")?;
                fmt_nested(val, f)?;
            }
            f.write_str("}")
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Text::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Text::from(s))
    }
}

impl From<Text> for Value {
    fn from(t: Text) -> Self {
        Value::Str(t)
    }
}

impl From<Uid> for Value {
    fn from(u: Uid) -> Self {
        Value::Uid(u)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(SharedList::new(v))
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_lookup() {
        let v = Value::record([("status", Value::from("more")), ("count", Value::from(3))]);
        assert_eq!(v.field("status").unwrap().as_str().unwrap(), "more");
        assert_eq!(v.field("count").unwrap().as_int().unwrap(), 3);
        assert!(v.field("missing").is_err());
        assert!(v.field_opt("missing").is_none());
    }

    #[test]
    fn take_field_extracts_without_lookup_clone() {
        let v = Value::record([("a", Value::from(1)), ("b", Value::str("x"))]);
        assert_eq!(v.clone().take_field("b").unwrap().as_str().unwrap(), "x");
        assert!(v.clone().take_field("zzz").is_err());
        assert!(Value::Int(1).take_field("a").is_err());
    }

    #[test]
    fn field_on_non_record_is_error() {
        let err = Value::Int(1).field("x").unwrap_err();
        assert!(matches!(err, EdenError::BadParameter(_)));
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::from(7).as_int().unwrap(), 7);
        assert!(Value::from(7).as_str().is_err());
        assert!(Value::from("x").as_int().is_err());
        assert!(Value::from(true).as_bool().unwrap());
        let u = Uid::fresh();
        assert_eq!(Value::from(u).as_uid().unwrap(), u);
    }

    #[test]
    fn list_accessors() {
        let v = Value::list(vec![Value::from(1), Value::from(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(v.into_list().unwrap().len(), 2);
        assert!(Value::Unit.into_list().is_err());
    }

    #[test]
    fn size_hint_reflects_payload() {
        assert_eq!(Value::str("hello").size_hint(), 5);
        assert_eq!(Value::bytes(vec![0u8; 100]).size_hint(), 100);
        let list = Value::list(vec![Value::str("ab"), Value::str("cd")]);
        assert_eq!(list.size_hint(), 2 + 2 + 4);
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Unit.kind(), "unit");
        assert_eq!(
            Value::record(Vec::<(&str, Value)>::new()).kind(),
            "record"
        );
    }

    #[test]
    fn display_renders_human_readably() {
        assert_eq!(Value::str("a line").to_string(), "a line");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::list(vec![Value::str("q"), Value::Int(2)]).to_string(),
            "[\"q\", 2]"
        );
        assert_eq!(
            Value::record([("n", Value::Int(1)), ("s", Value::str("x"))]).to_string(),
            "{n: 1, s: \"x\"}"
        );
        assert_eq!(Value::bytes(vec![0u8; 3]).to_string(), "<3 bytes>");
    }

    #[test]
    fn clone_shares_not_copies() {
        let v = Value::list(vec![Value::str("payload"), Value::Int(1)]);
        let before = payload::snapshot();
        let c = v.clone();
        let delta = payload::snapshot().since(&before);
        assert_eq!(delta.payload_copies, 0, "clone must not copy payload");
        assert_eq!(delta.payload_bytes_moved, 0);
        assert_eq!(delta.payload_shares, 1);
        match (&v, &c) {
            (Value::List(a), Value::List(b)) => assert!(a.ptr_eq(b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cow_break_only_when_aliased() {
        // Unique list: mutation is free, no cow_break.
        let mut unique = SharedList::new(vec![Value::Int(1)]);
        let before = payload::snapshot();
        unique.to_mut().push(Value::Int(2));
        assert_eq!(payload::snapshot().since(&before).cow_breaks, 0);

        // Aliased list: mutation breaks the sharing, once.
        let mut a = SharedList::new(vec![Value::Int(1)]);
        let b = a.clone();
        let before = payload::snapshot();
        a.to_mut().push(Value::Int(2));
        assert_eq!(payload::snapshot().since(&before).cow_breaks, 1);
        // The alias is unaffected: semantics of the old deep-copy world.
        assert_eq!(b.len(), 1);
        assert_eq!(a.len(), 2);
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    fn record_cow_break_preserves_alias() {
        let v = Value::record([("k", Value::Int(1))]);
        let mut edited = v.clone();
        if let Value::Record(fields) = &mut edited {
            fields.to_mut()[0].1 = Value::Int(99);
        }
        assert_eq!(v.field("k").unwrap().as_int().unwrap(), 1);
        assert_eq!(edited.field("k").unwrap().as_int().unwrap(), 99);
    }

    #[test]
    fn deep_copy_moves_every_payload_byte() {
        let v = Value::record([
            ("s", Value::str("hello")),
            ("b", Value::bytes(vec![0u8; 10])),
            ("l", Value::list(vec![Value::str("xy")])),
        ]);
        let before = payload::snapshot();
        let copy = v.deep_copy();
        let delta = payload::snapshot().since(&before);
        assert_eq!(copy, v);
        // Payload leaves: "hello" (5) + bytes (10) + "xy" (2) + keys (1+1+1).
        assert_eq!(delta.payload_bytes_moved, 5 + 10 + 2 + 3);
        assert!(delta.payload_copies >= 3);
        match (&v, &copy) {
            (Value::Record(a), Value::Record(b)) => assert!(!a.ptr_eq(b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn text_equality_and_order() {
        let t = Text::from("abc");
        assert_eq!(t, "abc");
        assert_eq!(t, "abc".to_owned());
        let u = Text::from("abd");
        assert!(t < u);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Text::new().is_empty());
        assert_eq!(format!("{t}"), "abc");
        assert_eq!(format!("{t:?}"), "\"abc\"");
    }

    #[test]
    fn text_from_shared_validates_utf8() {
        assert!(Text::from_shared(Bytes::from(&b"ok"[..])).is_ok());
        assert!(Text::from_shared(Bytes::from(&[0xffu8, 0xfe][..])).is_err());
    }
}
