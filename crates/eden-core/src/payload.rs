//! Process-wide data-plane counters: the cost of *moving bytes*, kept
//! separate from the control-plane counters in [`crate::metrics`].
//!
//! The paper's n+1 / 2n+2 formulas count *invocations* per datum; these
//! counters give the companion invariant for *payload bytes per datum per
//! hop*. After the copy-on-write refactor of [`crate::value::Value`], a
//! record allocated at a source is shared — not copied — through every
//! filter hop and across every fan-out branch, so:
//!
//! * `payload_copies` / `payload_bytes_moved` stay **constant** as fan-out
//!   width grows (before: one deep copy of the whole batch per consumer),
//! * `cow_breaks` counts the only remaining copies: a mutation of a datum
//!   that is actually aliased somewhere else,
//! * `payload_shares` counts the cheap reference-bump clones that replaced
//!   deep copies.
//!
//! The counters are process-wide statics (relaxed atomics) rather than a
//! per-kernel [`crate::Metrics`] handle because sharing decisions happen
//! inside `Value` itself, far below any context that carries a metrics
//! handle. They are statistics, not synchronisation; benchmarks meter a
//! region by subtracting two [`snapshot`]s.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_MOVED: AtomicU64 = AtomicU64::new(0);
static COPIES: AtomicU64 = AtomicU64::new(0);
static COW_BREAKS: AtomicU64 = AtomicU64::new(0);
static SHARES: AtomicU64 = AtomicU64::new(0);

/// Record one deep-copy event that physically moved `bytes` payload bytes
/// (serialisation, a copying decode, or an explicit
/// [`crate::value::Value::deep_copy`]).
#[inline]
pub fn note_copy(bytes: usize) {
    COPIES.fetch_add(1, Ordering::Relaxed);
    BYTES_MOVED.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Record a copy-on-write break: a mutable access to a container that was
/// aliased, forcing the spine to be duplicated before the edit.
#[inline]
pub fn note_cow_break() {
    COW_BREAKS.fetch_add(1, Ordering::Relaxed);
}

/// Record a cheap share (reference bump) of a payload-bearing datum —
/// an event that, before the zero-copy plane, was a deep copy.
#[inline]
pub fn note_share() {
    SHARES.fetch_add(1, Ordering::Relaxed);
}

/// Capture the current data-plane counters.
pub fn snapshot() -> PayloadSnapshot {
    PayloadSnapshot {
        payload_bytes_moved: BYTES_MOVED.load(Ordering::Relaxed),
        payload_copies: COPIES.load(Ordering::Relaxed),
        cow_breaks: COW_BREAKS.load(Ordering::Relaxed),
        payload_shares: SHARES.load(Ordering::Relaxed),
    }
}

/// A point-in-time copy of the data-plane counters. Subtract two snapshots
/// (via [`PayloadSnapshot::since`]) to meter a region of execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are self-describing counter names.
pub struct PayloadSnapshot {
    pub payload_bytes_moved: u64,
    pub payload_copies: u64,
    pub cow_breaks: u64,
    pub payload_shares: u64,
}

impl PayloadSnapshot {
    /// Events that occurred between `earlier` and `self`.
    pub fn since(&self, earlier: &PayloadSnapshot) -> PayloadSnapshot {
        PayloadSnapshot {
            payload_bytes_moved: self.payload_bytes_moved - earlier.payload_bytes_moved,
            payload_copies: self.payload_copies - earlier.payload_copies,
            cow_breaks: self.cow_breaks - earlier.cow_breaks,
            payload_shares: self.payload_shares - earlier.payload_shares,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let before = snapshot();
        note_copy(100);
        note_cow_break();
        note_share();
        note_share();
        let delta = snapshot().since(&before);
        assert_eq!(delta.payload_copies, 1);
        assert_eq!(delta.payload_bytes_moved, 100);
        assert_eq!(delta.cow_breaks, 1);
        assert_eq!(delta.payload_shares, 2);
    }
}
