//! Core types for the Eden asymmetric-stream reproduction.
//!
//! This crate contains the vocabulary shared by every other crate in the
//! workspace: unforgeable identifiers ([`Uid`]), the dynamically-typed
//! [`Value`] carried by invocations, the tag-length-value [`wire`] codec used
//! for checkpointed passive representations, the [`EdenError`] type, interned
//! operation names ([`OpName`]), and the [`metrics`] counters and
//! [`CostModel`] used to reproduce the paper's analytic cost comparisons.
//!
//! The paper this workspace reproduces is Andrew P. Black, *An Asymmetric
//! Stream Communication System*, Proc. 9th ACM Symposium on Operating
//! Systems Principles (SOSP), 1983. See `DESIGN.md` at the workspace root
//! for the full system inventory.


pub mod error;
pub mod hostfs;
pub mod metrics;
pub mod op;
pub mod payload;
pub mod span;
pub mod stream;
pub mod uid;
pub mod value;
pub mod wire;

pub use error::{EdenError, Result};
pub use hostfs::{HostFs, HostFsHandle, MemFs, RealFs};
pub use metrics::{CostModel, Metrics, MetricsSnapshot};
pub use op::OpName;
pub use payload::PayloadSnapshot;
pub use span::SpanContext;
pub use stream::StreamSnapshot;
pub use uid::{Capability, Uid};
pub use value::{SharedList, SharedRecord, Text, Value};
