//! Operation names.
//!
//! An invocation is "a request to perform some named operation" (§1). Names
//! are cheap-to-clone interned strings. The well-known names of the transput
//! protocol and the filing system live here so that every crate agrees on
//! spelling.

use std::fmt;
use std::sync::Arc;

/// The name of an invocable operation.
///
/// Cloning is an `Arc` bump; comparison is by string content.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpName(Arc<str>);

impl OpName {
    /// View the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName(Arc::from(s))
    }
}

impl From<String> for OpName {
    fn from(s: String) -> Self {
        OpName(Arc::from(s.as_str()))
    }
}

impl fmt::Debug for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpName({})", self.0)
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq<&str> for OpName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Well-known operation names used throughout the workspace.
pub mod ops {
    /// Stream protocol (§4, §7): request a batch of data from a source.
    /// The paper's bootstrap system calls this invocation *Transfer*.
    pub const TRANSFER: &str = "Transfer";
    /// Stream protocol, write-only discipline (§5): push a batch of data.
    pub const WRITE: &str = "Write";
    /// Announce end-of-stream to a passive-input Eject (write-only model).
    pub const END_STREAM: &str = "EndStream";
    /// Ask a source for the capability UIDs of its named channels (§5).
    pub const GET_CHANNEL: &str = "GetChannel";
    /// Directory operations (§2).
    pub const LOOKUP: &str = "Lookup";
    /// Add a (name, UID) pair to a directory (§2).
    pub const ADD_ENTRY: &str = "AddEntry";
    /// Remove a named entry from a directory (§2).
    pub const DELETE_ENTRY: &str = "DeleteEntry";
    /// Prepare a directory to stream a printable listing (§2, §4).
    pub const LIST: &str = "List";
    /// File operations (§2).
    pub const OPEN: &str = "Open";
    /// Close a previously opened file or stream.
    pub const CLOSE: &str = "Close";
    /// Ask a file Eject to pull its new contents from a source (§4: "a file
    /// opened for output would immediately issue a Read invocation").
    pub const WRITE_FROM: &str = "WriteFrom";
    /// Checkpoint: create a passive representation on stable storage (§1).
    pub const CHECKPOINT: &str = "Checkpoint";
    /// Ask an Eject to deactivate itself (§1).
    pub const DEACTIVATE: &str = "Deactivate";
    /// Bootstrap Unix file system (§7): create a read stream for a path.
    pub const NEW_STREAM: &str = "NewStream";
    /// Bootstrap Unix file system (§7): copy a stream into a path.
    pub const USE_STREAM: &str = "UseStream";
    /// Generic introspection: report the Eject's abstract type name.
    pub const DESCRIBE: &str = "Describe";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compare_by_content() {
        assert_eq!(OpName::from("Transfer"), OpName::from("Transfer"));
        assert_ne!(OpName::from("Transfer"), OpName::from("Write"));
        assert_eq!(OpName::from(ops::TRANSFER), "Transfer");
    }

    #[test]
    fn clone_is_same_content() {
        let a = OpName::from("Lookup");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_str(), "Lookup");
    }

    #[test]
    fn display_is_bare_name() {
        assert_eq!(OpName::from("List").to_string(), "List");
    }
}
