//! Unique, unforgeable identifiers for Ejects.
//!
//! The paper: "Each Eject has a unique unforgeable identifier (*UID*); one
//! Eject may communicate with another only by knowing its UID."
//!
//! Inside a single simulated Eden a [`Uid`] is a 128-bit quantity composed of
//! a per-process random session nonce and a monotonically increasing
//! sequence number. The nonce makes UIDs from distinct kernel instances
//! (distinct simulated Edens) disjoint; the sequence number makes them
//! unique within one. Unforgeability in the simulation is a matter of API
//! discipline: the only way to obtain a fresh `Uid` is [`Uid::fresh`], and
//! the constructors of meaningful UIDs (Ejects, capability channels) are in
//! kernel-controlled code paths. There is no `from_raw` in the public API.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::RngCore;

/// The session nonce, drawn once per process from the OS entropy source.
fn session_nonce() -> u64 {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let mut cur = NONCE.load(Ordering::Relaxed);
    if cur == 0 {
        let mut fresh = rand::thread_rng().next_u64();
        if fresh == 0 {
            fresh = 1;
        }
        // If several threads race, the first store wins and everyone reloads.
        let _ = NONCE.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed);
        cur = NONCE.load(Ordering::Relaxed);
    }
    cur
}

/// Process-wide sequence counter for UID allocation.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// A unique, unforgeable identifier.
///
/// UIDs identify Ejects, and — in the capability-channel scheme of §5 of the
/// paper — individual output channels. They are location independent: "It is
/// not necessary to know the physical location of an Eject within the Eden
/// system."
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid {
    nonce: u64,
    seq: u64,
}

impl Uid {
    /// Allocate a fresh UID, distinct from every UID previously allocated in
    /// this process, and (with overwhelming probability) from those of other
    /// processes.
    pub fn fresh() -> Self {
        Uid {
            nonce: session_nonce(),
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The sequence component. Exposed for diagnostics and stable display
    /// ordering only; it is not sufficient to reconstruct the UID.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Encode to 16 bytes for the wire codec.
    pub(crate) fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.nonce.to_le_bytes());
        b[8..].copy_from_slice(&self.seq.to_le_bytes());
        b
    }

    /// Decode from 16 bytes, for the wire codec.
    ///
    /// This is `pub(crate)` deliberately: decoding checkpoints is a
    /// kernel-mediated path, and keeping it out of the public API preserves
    /// the unforgeability discipline described in the module docs.
    pub(crate) fn from_bytes(b: &[u8; 16]) -> Self {
        let mut n = [0u8; 8];
        let mut s = [0u8; 8];
        n.copy_from_slice(&b[..8]);
        s.copy_from_slice(&b[8..]);
        Uid {
            nonce: u64::from_le_bytes(n),
            seq: u64::from_le_bytes(s),
        }
    }
}

impl fmt::Debug for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uid({:08x}:{})", self.nonce as u32, self.seq)
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid-{:08x}-{}", self.nonce as u32, self.seq)
    }
}

/// A capability: a UID together with a human-readable hint of what it names.
///
/// §7 of the paper: "*NewStream* takes as input a Unix path name, and returns
/// as its result an Eden stream, i.e. a Capability." In Eden a capability is
/// just knowledge of a UID; the hint exists only for diagnostics and is never
/// consulted by access checks.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Capability {
    uid: Uid,
    hint: &'static str,
}

impl Capability {
    /// Wrap a UID as a capability with a diagnostic hint.
    pub fn new(uid: Uid, hint: &'static str) -> Self {
        Capability { uid, hint }
    }

    /// The UID this capability confers.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The diagnostic hint supplied at construction.
    pub fn hint(&self) -> &'static str {
        self.hint
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Capability<{}>({:?})", self.hint, self.uid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn fresh_uids_are_distinct() {
        let a = Uid::fresh();
        let b = Uid::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn uids_distinct_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| thread::spawn(|| (0..1000).map(|_| Uid::fresh()).collect::<Vec<_>>()))
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for uid in h.join().expect("thread panicked") {
                assert!(seen.insert(uid), "duplicate UID {uid}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn uid_byte_roundtrip() {
        let u = Uid::fresh();
        assert_eq!(Uid::from_bytes(&u.to_bytes()), u);
    }

    #[test]
    fn uid_display_is_stable() {
        let u = Uid::fresh();
        assert_eq!(format!("{u}"), format!("{u}"));
        assert!(format!("{u}").starts_with("uid-"));
    }

    #[test]
    fn capability_carries_uid_and_hint() {
        let u = Uid::fresh();
        let c = Capability::new(u, "stream");
        assert_eq!(c.uid(), u);
        assert_eq!(c.hint(), "stream");
    }

    #[test]
    fn session_nonce_is_nonzero_and_stable() {
        assert_ne!(session_nonce(), 0);
        assert_eq!(session_nonce(), session_nonce());
    }
}
