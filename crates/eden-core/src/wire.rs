//! A tag-length-value codec for [`Value`].
//!
//! Checkpointing (§1 of the paper) requires a durable byte representation of
//! an Eject's state — its *passive representation*. Every Eject in this
//! workspace represents its state as a [`Value`], and this module provides
//! the byte encoding. The format is a conventional TLV scheme: a one-byte
//! tag, LEB128 ("varint") lengths, little-endian fixed-width scalars.
//!
//! The decoder is defensive: it bounds recursion depth, validates UTF-8, and
//! never panics on malformed input — corrupt checkpoints surface as
//! [`EdenError::CorruptCheckpoint`].
//!
//! # Zero-copy decode
//!
//! [`decode_shared`] decodes out of a shared [`Bytes`] buffer: string,
//! byte-string and field-name payloads are O(1) *slices* of the input
//! buffer rather than fresh allocations, so reactivating an Eject from a
//! checkpoint moves no payload bytes. [`decode`] remains for callers that
//! only hold a `&[u8]`; it pays one copy of the whole input up front and
//! then shares slices of that copy.
//!
//! [`encoded_len`] returns the exact output size of [`encode`], which sizes
//! its buffer with it — the checkpoint path never reallocates mid-encode.

use bytes::Bytes;

use crate::error::{EdenError, Result};
use crate::payload;
use crate::uid::Uid;
use crate::value::{SharedList, SharedRecord, Text, Value};

/// Maximum nesting depth the decoder will accept. Checkpoints produced by
/// this workspace are shallow; the bound exists to keep malformed input from
/// exhausting the stack.
const MAX_DEPTH: usize = 64;

const TAG_UNIT: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_BYTES: u8 = 0x05;
const TAG_UID: u8 = 0x06;
const TAG_LIST: u8 = 0x07;
const TAG_RECORD: u8 = 0x08;

/// The number of bytes `put_varint` emits for `v`.
fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7).max(1)
}

/// The exact number of bytes [`encode`] produces for `value`.
pub fn encoded_len(value: &Value) -> usize {
    match value {
        Value::Unit | Value::Bool(_) => 1,
        Value::Int(_) => 9,
        Value::Uid(_) => 17,
        Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
        Value::Bytes(b) => 1 + varint_len(b.len() as u64) + b.len(),
        Value::List(items) => {
            1 + varint_len(items.len() as u64)
                + items.iter().map(encoded_len).sum::<usize>()
        }
        Value::Record(fields) => {
            1 + varint_len(fields.len() as u64)
                + fields
                    .iter()
                    .map(|(name, v)| {
                        varint_len(name.len() as u64) + name.len() + encoded_len(v)
                    })
                    .sum::<usize>()
        }
    }
}

/// Encode a value to bytes. The buffer is sized with [`encoded_len`] so no
/// mid-encode reallocation occurs; the serialisation is metered as one
/// payload copy (the datum's bytes physically move into the output).
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(value));
    encode_into(value, &mut out);
    payload::note_copy(out.len());
    out
}

/// Encode a value, appending to an existing buffer.
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_str().as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            put_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::Uid(u) => {
            out.push(TAG_UID);
            out.extend_from_slice(&u.to_bytes());
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            put_varint(out, items.len() as u64);
            for item in items.iter() {
                encode_into(item, out);
            }
        }
        Value::Record(fields) => {
            out.push(TAG_RECORD);
            put_varint(out, fields.len() as u64);
            for (name, v) in fields.iter() {
                put_varint(out, name.len() as u64);
                out.extend_from_slice(name.as_str().as_bytes());
                encode_into(v, out);
            }
        }
    }
}

/// Decode a value from a plain byte slice. The entire input must be
/// consumed.
///
/// Pays one copy of `input` into a shared buffer, then aliases slices of
/// that copy — callers that already hold a [`Bytes`] should use
/// [`decode_shared`] and move nothing.
pub fn decode(input: &[u8]) -> Result<Value> {
    if !input.is_empty() {
        payload::note_copy(input.len());
    }
    decode_shared(&Bytes::copy_from_slice(input))
}

/// Decode a value out of a shared buffer, zero-copy: `Str`, `Bytes` and
/// record field names are O(1) slices aliasing `input`. The entire input
/// must be consumed.
pub fn decode_shared(input: &Bytes) -> Result<Value> {
    let mut cursor = Cursor { buf: input, pos: 0 };
    let value = decode_one(&mut cursor, 0)?;
    if cursor.pos != input.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after value",
            input.len() - cursor.pos
        )));
    }
    Ok(value)
}

struct Cursor<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn advance(&mut self, n: usize) -> Result<usize> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt(format!("truncated: wanted {n} bytes at {}", self.pos)))?;
        let start = self.pos;
        self.pos = end;
        Ok(start)
    }

    /// A borrowed view of the next `n` bytes (for scalars).
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let start = self.advance(n)?;
        Ok(&self.buf.as_ref()[start..start + n])
    }

    /// A shared, zero-copy slice of the next `n` bytes (for payloads).
    fn take_shared(&mut self, n: usize) -> Result<Bytes> {
        let start = self.advance(n)?;
        Ok(self.buf.slice(start..start + n))
    }

    fn byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
}

fn corrupt(msg: String) -> EdenError {
    EdenError::CorruptCheckpoint(msg)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(cur: &mut Cursor<'_>) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = cur.byte()?;
        if shift >= 63 && byte > 1 {
            return Err(corrupt("varint overflow".to_owned()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint too long".to_owned()));
        }
    }
}

fn decode_len(cur: &mut Cursor<'_>) -> Result<usize> {
    let len = get_varint(cur)?;
    // A length can never exceed the remaining input; this check stops
    // malicious lengths from causing huge pre-allocations.
    let remaining = (cur.buf.len() - cur.pos) as u64;
    if len > remaining {
        return Err(corrupt(format!("length {len} exceeds remaining {remaining}")));
    }
    Ok(len as usize)
}

/// Take a UTF-8-validated, zero-copy text of `len` bytes.
fn take_text(cur: &mut Cursor<'_>, len: usize, what: &str) -> Result<Text> {
    let shared = cur.take_shared(len)?;
    Text::from_shared(shared).map_err(|e| corrupt(format!("invalid utf-8 in {what}: {e}")))
}

fn decode_one(cur: &mut Cursor<'_>, depth: usize) -> Result<Value> {
    if depth > MAX_DEPTH {
        return Err(corrupt("nesting too deep".to_owned()));
    }
    match cur.byte()? {
        TAG_UNIT => Ok(Value::Unit),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            let mut b = [0u8; 8];
            b.copy_from_slice(cur.take(8)?);
            Ok(Value::Int(i64::from_le_bytes(b)))
        }
        TAG_STR => {
            let len = decode_len(cur)?;
            Ok(Value::Str(take_text(cur, len, "string")?))
        }
        TAG_BYTES => {
            let len = decode_len(cur)?;
            Ok(Value::Bytes(cur.take_shared(len)?))
        }
        TAG_UID => {
            let mut b = [0u8; 16];
            b.copy_from_slice(cur.take(16)?);
            Ok(Value::Uid(Uid::from_bytes(&b)))
        }
        TAG_LIST => {
            let len = decode_len(cur)?;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode_one(cur, depth + 1)?);
            }
            Ok(Value::List(SharedList::new(items)))
        }
        TAG_RECORD => {
            let len = decode_len(cur)?;
            let mut fields = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                let name_len = decode_len(cur)?;
                let name = take_text(cur, name_len, "field name")?;
                fields.push((name, decode_one(cur, depth + 1)?));
            }
            Ok(Value::Record(SharedRecord::new(fields)))
        }
        tag => Err(corrupt(format!("unknown tag 0x{tag:02x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload;

    fn roundtrip(v: Value) {
        let enc = encode(&v);
        let dec = decode(&enc).expect("decode");
        assert_eq!(dec, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Unit);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::str(""));
        roundtrip(Value::str("héllo, wörld"));
        roundtrip(Value::bytes(vec![0u8, 255, 1, 2]));
        roundtrip(Value::Uid(Uid::fresh()));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Value::list(vec![]));
        roundtrip(Value::list(vec![
            Value::Int(1),
            Value::str("two"),
            Value::list(vec![Value::Unit]),
        ]));
        roundtrip(Value::record([
            ("name", Value::str("readme")),
            ("uid", Value::Uid(Uid::fresh())),
            ("entries", Value::list(vec![Value::Int(3)])),
        ]));
    }

    #[test]
    fn encoded_len_is_exact() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-5),
            Value::Uid(Uid::fresh()),
            Value::str(""),
            Value::str("hello"),
            Value::str("x".repeat(200)),
            Value::bytes(vec![7u8; 300]),
            Value::list(vec![Value::Int(1), Value::str("two")]),
            Value::record([
                ("a", Value::list(vec![Value::str("deep"), Value::Unit])),
                ("bb", Value::bytes(vec![0u8; 1000])),
            ]),
        ] {
            assert_eq!(encode(&v).len(), encoded_len(&v), "for {v:?}");
        }
    }

    #[test]
    fn encode_never_reallocates() {
        // The hinted capacity must hold the whole encoding: capacity after
        // the encode equals the capacity before (Vec only grows on push
        // beyond capacity).
        let v = Value::record([
            ("items", Value::list((0..50).map(|i| Value::str(format!("record-{i}"))).collect::<Vec<_>>())),
            ("blob", Value::bytes(vec![9u8; 4096])),
        ]);
        let out = encode(&v);
        assert_eq!(out.len(), encoded_len(&v));
        assert_eq!(out.capacity(), encoded_len(&v), "encode reallocated");
    }

    #[test]
    fn decode_shared_aliases_payloads() {
        let v = Value::record([
            ("name", Value::str("shared-me")),
            ("blob", Value::bytes(vec![3u8; 64])),
        ]);
        let buf = Bytes::from(encode(&v));
        let before = payload::snapshot();
        let dec = decode_shared(&buf).unwrap();
        let delta = payload::snapshot().since(&before);
        assert_eq!(delta.payload_copies, 0, "decode_shared must not copy");
        assert_eq!(dec, v);
        let range = buf.as_ref().as_ptr_range();
        let s = dec.field("name").unwrap().as_text().unwrap();
        let sp = s.as_str().as_ptr();
        assert!(range.contains(&sp), "text must alias the input buffer");
        let b = dec.field("blob").unwrap().as_bytes().unwrap();
        assert!(range.contains(&b.as_ref().as_ptr()));
    }

    #[test]
    fn empty_input_is_corrupt() {
        assert!(matches!(
            decode(&[]),
            Err(EdenError::CorruptCheckpoint(_))
        ));
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        assert!(matches!(
            decode(&[0xff]),
            Err(EdenError::CorruptCheckpoint(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode(&Value::Unit);
        enc.push(0);
        assert!(matches!(
            decode(&enc),
            Err(EdenError::CorruptCheckpoint(_))
        ));
    }

    #[test]
    fn truncated_string_rejected() {
        let enc = encode(&Value::str("hello"));
        assert!(decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        // TAG_STR followed by a varint length far beyond the input.
        let input = [TAG_STR, 0xff, 0xff, 0x03];
        assert!(decode(&input).is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        // 100 nested single-element lists exceed MAX_DEPTH.
        let mut buf = Vec::new();
        for _ in 0..100 {
            buf.push(TAG_LIST);
            buf.push(1);
        }
        buf.push(TAG_UNIT);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut input = vec![TAG_STR];
        input.extend_from_slice(&[0xff; 10]);
        input.push(0x7f);
        assert!(decode(&input).is_err());
    }

    #[test]
    fn varint_len_matches_put_varint() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v), "varint_len({v})");
        }
    }

    #[test]
    fn malformed_inputs_never_panic() {
        // Fuzz-lite: every 2-byte prefix of tags and junk must error or
        // decode, never panic.
        for a in 0u8..=16 {
            for b in 0u8..=16 {
                let _ = decode(&[a, b]);
            }
        }
    }
}
