//! Error types shared across the workspace.

use std::fmt;

use crate::op::OpName;
use crate::uid::Uid;

/// The workspace-wide result alias.
pub type Result<T> = std::result::Result<T, EdenError>;

/// Everything that can go wrong in the simulated Eden.
///
/// Invocation replies carry `Result<Value>`, so these errors propagate across
/// Eject boundaries exactly as Eden error status codes did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdenError {
    /// The target UID names no Eject known to the kernel (active or passive).
    NoSuchEject(Uid),
    /// The Eject exists but does not respond to this operation.
    ///
    /// The paper (§2): the set of invocations an Eject responds to is its
    /// behaviour; invoking outside that set is a protocol error.
    NoSuchOperation {
        /// The Eject that rejected the invocation.
        target: Uid,
        /// The operation that was not understood.
        op: OpName,
    },
    /// The Eject crashed (or was crashed by fault injection) while the
    /// invocation was outstanding, and has no passive representation from
    /// which the kernel could reactivate it.
    EjectCrashed(Uid),
    /// The kernel is shutting down; no further invocations are possible.
    KernelShutdown,
    /// An invocation parameter had the wrong shape for the operation.
    BadParameter(String),
    /// A stream operation named a channel the source does not provide,
    /// or presented a channel capability that was never issued (§5).
    NoSuchChannel(String),
    /// A capability check failed: the presented UID does not authorise the
    /// requested access (§5, capability channels).
    NotAuthorized(String),
    /// End of stream. Used as an error only where a datum was required;
    /// ordinary stream replies carry end-of-stream in-band as a status.
    EndOfStream,
    /// A reply did not arrive within the configured deadline.
    Timeout,
    /// A checkpoint or passive representation could not be decoded.
    CorruptCheckpoint(String),
    /// A host filing-system operation failed (bootstrap UnixFs Ejects, §7).
    HostFs(String),
    /// The invoked Eject explicitly reported failure with a message.
    Application(String),
    /// The fault injector failed this invocation on purpose. Carries the
    /// label of the fault rule that fired, so chaos tests can tell their
    /// own faults from organic failures.
    FaultInjected(String),
    /// A pipeline's wiring graph violates its transput discipline (§3–§5):
    /// fan-out under read-only, fan-in under write-only, an unbuffered
    /// filter pair under conventional, or a forged channel capability.
    /// Raised at build time, before any Eject spawns.
    Discipline(String),
    /// Admission control shed this invocation: the target's bounded mailbox
    /// was full and its shed policy turned the invocation away (or evicted
    /// it after queueing). Carries the target and the policy label that
    /// fired, so overload tests can tell shed traffic from organic
    /// failures. Retryable by design — backing off and re-sending is
    /// exactly the client-side rate control an overloaded system wants.
    Overloaded {
        /// The Eject whose mailbox shed the invocation.
        target: Uid,
        /// The shed-policy label (`"reject-newest"`, `"reject-oldest"`,
        /// `"deadline-drop"`, `"park-timeout"`).
        policy: &'static str,
    },
}

impl EdenError {
    /// Whether retrying the invocation could plausibly succeed.
    ///
    /// Retryable errors are the *transient* ones: a reply deadline expired
    /// ([`EdenError::Timeout`]), the target crashed while the invocation
    /// was outstanding ([`EdenError::EjectCrashed`] — the kernel will
    /// reactivate a checkpointed target on the next invocation), or the
    /// fault injector dropped the invocation on purpose
    /// ([`EdenError::FaultInjected`]), or admission control shed it at a
    /// full bounded mailbox ([`EdenError::Overloaded`] — the queue drains,
    /// and a backed-off retry is the rate control the shed asked for).
    /// Everything else is a property of the request or of the system state
    /// that a retry cannot change: retrying a `BadParameter` or a
    /// `NoSuchEject` (the target has no passive representation to come
    /// back from) only wastes invocations.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EdenError::Timeout
                | EdenError::EjectCrashed(_)
                | EdenError::FaultInjected(_)
                | EdenError::Overloaded { .. }
        )
    }

    /// Whether the error is permanent: retrying cannot help. The negation
    /// of [`EdenError::is_retryable`].
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable()
    }
}

impl fmt::Display for EdenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdenError::NoSuchEject(uid) => write!(f, "no such Eject: {uid}"),
            EdenError::NoSuchOperation { target, op } => {
                write!(f, "Eject {target} does not respond to operation {op}")
            }
            EdenError::EjectCrashed(uid) => write!(f, "Eject {uid} crashed"),
            EdenError::KernelShutdown => write!(f, "kernel is shutting down"),
            EdenError::BadParameter(msg) => write!(f, "bad invocation parameter: {msg}"),
            EdenError::NoSuchChannel(msg) => write!(f, "no such channel: {msg}"),
            EdenError::NotAuthorized(msg) => write!(f, "not authorized: {msg}"),
            EdenError::EndOfStream => write!(f, "end of stream"),
            EdenError::Timeout => write!(f, "invocation timed out"),
            EdenError::CorruptCheckpoint(msg) => write!(f, "corrupt checkpoint: {msg}"),
            EdenError::HostFs(msg) => write!(f, "host filesystem error: {msg}"),
            EdenError::Application(msg) => write!(f, "application error: {msg}"),
            EdenError::FaultInjected(label) => write!(f, "injected fault: {label}"),
            EdenError::Discipline(msg) => write!(f, "discipline violation: {msg}"),
            EdenError::Overloaded { target, policy } => {
                write!(f, "Eject {target} overloaded (shed policy: {policy})")
            }
        }
    }
}

impl std::error::Error for EdenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_uid() {
        let u = Uid::fresh();
        let msg = EdenError::NoSuchEject(u).to_string();
        assert!(msg.contains(&u.to_string()));
    }

    #[test]
    fn display_mentions_operation() {
        let u = Uid::fresh();
        let e = EdenError::NoSuchOperation {
            target: u,
            op: OpName::from("Transfer"),
        };
        assert!(e.to_string().contains("Transfer"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(EdenError::Timeout, EdenError::Timeout);
        assert_ne!(EdenError::Timeout, EdenError::EndOfStream);
    }

    #[test]
    fn transient_errors_are_retryable() {
        assert!(EdenError::Timeout.is_retryable());
        assert!(EdenError::EjectCrashed(Uid::fresh()).is_retryable());
        assert!(EdenError::FaultInjected("chaos".into()).is_retryable());
        assert!(EdenError::Overloaded {
            target: Uid::fresh(),
            policy: "reject-newest",
        }
        .is_retryable());
    }

    #[test]
    fn overload_display_names_the_policy() {
        let u = Uid::fresh();
        let msg = EdenError::Overloaded {
            target: u,
            policy: "deadline-drop",
        }
        .to_string();
        assert!(msg.contains("deadline-drop"));
        assert!(msg.contains(&u.to_string()));
    }

    #[test]
    fn permanent_errors_are_fatal() {
        for e in [
            EdenError::NoSuchEject(Uid::fresh()),
            EdenError::KernelShutdown,
            EdenError::BadParameter("x".into()),
            EdenError::NoSuchChannel("x".into()),
            EdenError::NotAuthorized("x".into()),
            EdenError::EndOfStream,
            EdenError::CorruptCheckpoint("x".into()),
            EdenError::HostFs("x".into()),
            EdenError::Application("x".into()),
            EdenError::Discipline("x".into()),
        ] {
            assert!(e.is_fatal(), "{e} should be fatal");
            assert!(!e.is_retryable());
        }
    }
}
