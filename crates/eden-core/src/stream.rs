//! Process-wide stream gauges: how much data is *in flight* right now.
//!
//! The control-plane counters in [`crate::metrics`] and the data-plane
//! counters in [`crate::payload`] are both monotone totals; an operator
//! watching a live system also wants level gauges — how many streams are
//! open, how many records have entered pipelines but not yet reached a
//! sink. The transput crate feeds these from the points where records
//! physically enter (a source serving a `Transfer`, a push source emitting a
//! `Write`) and leave (a sink's collector accepting a record) the stream
//! fabric; snapshot differences give windowed throughput.
//!
//! Like [`crate::payload`], these are process-wide statics (relaxed
//! atomics): the emission sites live in worker threads far below anything
//! that carries a per-kernel handle, and the values are statistics, not
//! synchronisation.

use std::sync::atomic::{AtomicU64, Ordering};

static RECORDS_EMITTED: AtomicU64 = AtomicU64::new(0);
static RECORDS_COLLECTED: AtomicU64 = AtomicU64::new(0);
static STREAMS_OPENED: AtomicU64 = AtomicU64::new(0);
static STREAMS_CLOSED: AtomicU64 = AtomicU64::new(0);

/// Record `n` records entering the stream fabric at a source.
#[inline]
pub fn note_emitted(n: usize) {
    RECORDS_EMITTED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record `n` records arriving at a sink's collector.
#[inline]
pub fn note_collected(n: usize) {
    RECORDS_COLLECTED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Record a stream opening (a sink collector coming into existence).
#[inline]
pub fn note_stream_opened() {
    STREAMS_OPENED.fetch_add(1, Ordering::Relaxed);
}

/// Record a stream closing (end-of-stream or error reached the collector).
#[inline]
pub fn note_stream_closed() {
    STREAMS_CLOSED.fetch_add(1, Ordering::Relaxed);
}

/// Capture the current stream gauges.
pub fn snapshot() -> StreamSnapshot {
    StreamSnapshot {
        records_emitted: RECORDS_EMITTED.load(Ordering::Relaxed),
        records_collected: RECORDS_COLLECTED.load(Ordering::Relaxed),
        streams_opened: STREAMS_OPENED.load(Ordering::Relaxed),
        streams_closed: STREAMS_CLOSED.load(Ordering::Relaxed),
    }
}

/// A point-in-time copy of the stream gauges. Subtract two snapshots (via
/// [`StreamSnapshot::since`]) for windowed rates; the level gauges
/// ([`records_in_flight`](StreamSnapshot::records_in_flight),
/// [`streams_active`](StreamSnapshot::streams_active)) are derived from the
/// monotone totals so they can never go negative under racy reads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are self-describing counter names.
pub struct StreamSnapshot {
    pub records_emitted: u64,
    pub records_collected: u64,
    pub streams_opened: u64,
    pub streams_closed: u64,
}

impl StreamSnapshot {
    /// Events that occurred between `earlier` and `self`.
    pub fn since(&self, earlier: &StreamSnapshot) -> StreamSnapshot {
        StreamSnapshot {
            records_emitted: self.records_emitted - earlier.records_emitted,
            records_collected: self.records_collected - earlier.records_collected,
            streams_opened: self.streams_opened - earlier.streams_opened,
            streams_closed: self.streams_closed - earlier.streams_closed,
        }
    }

    /// Records that entered the fabric but have not reached a sink.
    pub fn records_in_flight(&self) -> u64 {
        self.records_emitted.saturating_sub(self.records_collected)
    }

    /// Streams currently open.
    pub fn streams_active(&self) -> u64 {
        self.streams_opened.saturating_sub(self.streams_closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_accumulate_and_diff() {
        let before = snapshot();
        note_stream_opened();
        note_emitted(10);
        note_collected(7);
        note_stream_closed();
        let delta = snapshot().since(&before);
        assert_eq!(delta.records_emitted, 10);
        assert_eq!(delta.records_collected, 7);
        assert_eq!(delta.records_in_flight(), 3);
        assert_eq!(delta.streams_opened, 1);
        assert_eq!(delta.streams_closed, 1);
        assert_eq!(delta.streams_active(), 0);
    }

    #[test]
    fn in_flight_never_underflows() {
        // Collection observed before emission (racy snapshot): clamp to 0.
        let s = StreamSnapshot {
            records_emitted: 3,
            records_collected: 5,
            ..Default::default()
        };
        assert_eq!(s.records_in_flight(), 0);
    }
}
