//! Metering: the quantities behind the paper's efficiency argument.
//!
//! §4 of the paper argues the "read only" discipline halves the invocations
//! needed to move a datum through a pipeline (n+1 instead of 2n+2) and
//! eliminates the n+1 passive-buffer Ejects, at the cost of internal
//! processes and communication inside each Eject: "Processes provided within
//! the programming language are likely to be more efficient than the
//! processes of the underlying machine... interprocess communication within
//! an Eject is likely to be much more efficient than invocation."
//!
//! To reproduce that comparison we count every event of both kinds and feed
//! the counts through an explicit [`CostModel`]. Experiments can then sweep
//! the invocation : internal-IPC cost ratio (experiment E8) instead of being
//! hostage to one machine's timings.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Counter shards per `Metrics` instance. Power of two; indexed by a
/// cheap per-thread id so concurrent recorders from different threads
/// land on different cache lines.
const METRIC_SHARDS: usize = 16;

static NEXT_METRIC_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's dense index, assigned on first use — one shared
    /// `fetch_add` per thread lifetime, not per event.
    static METRIC_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn metric_slot() -> usize {
    METRIC_SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_METRIC_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v
    })
}

/// Shared event counters. Cheap to clone (an `Arc` bump); updated with
/// relaxed atomics — the counts are statistics, not synchronisation.
///
/// Counters are sharded across cache-line-aligned blocks keyed by a
/// per-thread index: several counters fire on *every* delivery, and a
/// single shared block would bounce its lines between all scheduler
/// workers. [`snapshot`](Metrics::snapshot) folds the shards.
#[derive(Clone, Debug)]
pub struct Metrics {
    shards: Arc<[CounterShard]>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            shards: (0..METRIC_SHARDS).map(|_| CounterShard::default()).collect(),
        }
    }
}

/// One cache-line-aligned block of counters (128 bytes covers x86's
/// adjacent-line prefetch pairing).
#[repr(align(128))]
#[derive(Default, Debug)]
struct CounterShard(Counters);

#[derive(Default, Debug)]
struct Counters {
    invocations: AtomicU64,
    remote_invocations: AtomicU64,
    replies: AtomicU64,
    deferred_replies: AtomicU64,
    internal_messages: AtomicU64,
    bytes_invoked: AtomicU64,
    bytes_replied: AtomicU64,
    ejects_created: AtomicU64,
    activations: AtomicU64,
    deactivations: AtomicU64,
    checkpoints: AtomicU64,
    crashes: AtomicU64,
    route_cache_hits: AtomicU64,
    route_cache_misses: AtomicU64,
    retries: AtomicU64,
    faults_injected: AtomicU64,
    reactivations: AtomicU64,
    recovered_streams: AtomicU64,
    successes: AtomicU64,
    fatal_failures: AtomicU64,
    sheds_newest: AtomicU64,
    sheds_oldest: AtomicU64,
    sheds_expired: AtomicU64,
    sheds_park_timeout: AtomicU64,
}

impl Metrics {
    /// Create a fresh, zeroed set of counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record an invocation being sent, with its parameter payload size.
    pub fn record_invocation(&self, payload_bytes: usize) {
        self.cell().invocations.fetch_add(1, Ordering::Relaxed);
        self.cell()
            .bytes_invoked
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    /// Record that the most recent invocation crossed simulated nodes.
    pub fn record_remote_invocation(&self) {
        self.cell().remote_invocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a reply being delivered, with its payload size.
    pub fn record_reply(&self, payload_bytes: usize) {
        self.cell().replies.fetch_add(1, Ordering::Relaxed);
        self.cell()
            .bytes_replied
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    /// Record a reply being parked for later (passive output in action).
    pub fn record_deferred_reply(&self) {
        self.cell().deferred_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one intra-Eject message (language-level process communication).
    pub fn record_internal_message(&self) {
        self.cell().internal_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the creation of an Eject.
    pub fn record_eject_created(&self) {
        self.cell().ejects_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an activation (including reactivation from a checkpoint).
    pub fn record_activation(&self) {
        self.cell().activations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an explicit deactivation.
    pub fn record_deactivation(&self) {
        self.cell().deactivations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a checkpoint being written.
    pub fn record_checkpoint(&self) {
        self.cell().checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a simulated crash.
    pub fn record_crash(&self) {
        self.cell().crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an invocation delivered through a cached route (the kernel
    /// registry was never consulted).
    pub fn record_route_cache_hit(&self) {
        self.cell().route_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an invocation that had to resolve (or re-resolve) its target
    /// through the registry: cold cache or stale route.
    pub fn record_route_cache_miss(&self) {
        self.cell().route_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one re-sent invocation (the retry policy fired).
    pub fn record_retry(&self) {
        self.cell().retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fault deliberately injected on the invocation path.
    pub fn record_fault_injected(&self) {
        self.cell().faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a reactivation: an activation that rebuilt an Eject from its
    /// passive representation (also counted in `activations`).
    pub fn record_reactivation(&self) {
        self.cell().reactivations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a stream stage that resumed from its checkpoint after a
    /// crash, picking up at the last acknowledged position.
    pub fn record_recovered_stream(&self) {
        self.cell().recovered_streams.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the terminal success of one *logical* invocation. Together
    /// with [`record_fatal_failure`](Metrics::record_fatal_failure) this
    /// forms the outcome ledger: once every in-flight invocation has
    /// resolved, `invocations == successes + fatal_failures` regardless of
    /// how many times any of them was retried (retries re-send an existing
    /// invocation; they never open a new ledger entry).
    pub fn record_success(&self) {
        self.cell().successes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the terminal failure of one logical invocation: a fatal
    /// error, retry exhaustion, deadline expiry, or abandonment.
    pub fn record_fatal_failure(&self) {
        self.cell().fatal_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an arriving invocation turned away at a full bounded mailbox
    /// (`ShedPolicy::RejectNewest`, or `DeadlineDrop` with nothing expired).
    pub fn record_shed_newest(&self) {
        self.cell().sheds_newest.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a queued invocation evicted to admit a newer arrival
    /// (`ShedPolicy::RejectOldest`).
    pub fn record_shed_oldest(&self) {
        self.cell().sheds_oldest.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a queued invocation dropped because its admission deadline
    /// had already expired (`ShedPolicy::DeadlineDrop`).
    pub fn record_shed_expired(&self) {
        self.cell().sheds_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a sender whose deadline-bounded park on a full mailbox timed
    /// out before space freed (`ShedPolicy::Park` under an invocation
    /// deadline).
    pub fn record_shed_park_timeout(&self) {
        self.cell().sheds_park_timeout.fetch_add(1, Ordering::Relaxed);
    }

    /// The calling thread's counter block.
    fn cell(&self) -> &Counters {
        &self.shards[metric_slot() & (METRIC_SHARDS - 1)].0
    }

    /// Capture the current counter values, folded across every shard.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for shard in self.shards.iter() {
            let c = &shard.0;
            s.invocations += c.invocations.load(Ordering::Relaxed);
            s.remote_invocations += c.remote_invocations.load(Ordering::Relaxed);
            s.replies += c.replies.load(Ordering::Relaxed);
            s.deferred_replies += c.deferred_replies.load(Ordering::Relaxed);
            s.internal_messages += c.internal_messages.load(Ordering::Relaxed);
            s.bytes_invoked += c.bytes_invoked.load(Ordering::Relaxed);
            s.bytes_replied += c.bytes_replied.load(Ordering::Relaxed);
            s.ejects_created += c.ejects_created.load(Ordering::Relaxed);
            s.activations += c.activations.load(Ordering::Relaxed);
            s.deactivations += c.deactivations.load(Ordering::Relaxed);
            s.checkpoints += c.checkpoints.load(Ordering::Relaxed);
            s.crashes += c.crashes.load(Ordering::Relaxed);
            s.route_cache_hits += c.route_cache_hits.load(Ordering::Relaxed);
            s.route_cache_misses += c.route_cache_misses.load(Ordering::Relaxed);
            s.retries += c.retries.load(Ordering::Relaxed);
            s.faults_injected += c.faults_injected.load(Ordering::Relaxed);
            s.reactivations += c.reactivations.load(Ordering::Relaxed);
            s.recovered_streams += c.recovered_streams.load(Ordering::Relaxed);
            s.successes += c.successes.load(Ordering::Relaxed);
            s.fatal_failures += c.fatal_failures.load(Ordering::Relaxed);
            s.sheds_newest += c.sheds_newest.load(Ordering::Relaxed);
            s.sheds_oldest += c.sheds_oldest.load(Ordering::Relaxed);
            s.sheds_expired += c.sheds_expired.load(Ordering::Relaxed);
            s.sheds_park_timeout += c.sheds_park_timeout.load(Ordering::Relaxed);
        }
        s
    }
}

/// A point-in-time copy of the counters. Subtract two snapshots to meter a
/// region of execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are self-describing counter names.
pub struct MetricsSnapshot {
    pub invocations: u64,
    pub remote_invocations: u64,
    pub replies: u64,
    pub deferred_replies: u64,
    pub internal_messages: u64,
    pub bytes_invoked: u64,
    pub bytes_replied: u64,
    pub ejects_created: u64,
    pub activations: u64,
    pub deactivations: u64,
    pub checkpoints: u64,
    pub crashes: u64,
    pub route_cache_hits: u64,
    pub route_cache_misses: u64,
    pub retries: u64,
    pub faults_injected: u64,
    pub reactivations: u64,
    pub recovered_streams: u64,
    pub successes: u64,
    pub fatal_failures: u64,
    pub sheds_newest: u64,
    pub sheds_oldest: u64,
    pub sheds_expired: u64,
    pub sheds_park_timeout: u64,
}

impl MetricsSnapshot {
    /// Events that occurred between `earlier` and `self`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            invocations: self.invocations - earlier.invocations,
            remote_invocations: self.remote_invocations - earlier.remote_invocations,
            replies: self.replies - earlier.replies,
            deferred_replies: self.deferred_replies - earlier.deferred_replies,
            internal_messages: self.internal_messages - earlier.internal_messages,
            bytes_invoked: self.bytes_invoked - earlier.bytes_invoked,
            bytes_replied: self.bytes_replied - earlier.bytes_replied,
            ejects_created: self.ejects_created - earlier.ejects_created,
            activations: self.activations - earlier.activations,
            deactivations: self.deactivations - earlier.deactivations,
            checkpoints: self.checkpoints - earlier.checkpoints,
            crashes: self.crashes - earlier.crashes,
            route_cache_hits: self.route_cache_hits - earlier.route_cache_hits,
            route_cache_misses: self.route_cache_misses - earlier.route_cache_misses,
            retries: self.retries - earlier.retries,
            faults_injected: self.faults_injected - earlier.faults_injected,
            reactivations: self.reactivations - earlier.reactivations,
            recovered_streams: self.recovered_streams - earlier.recovered_streams,
            successes: self.successes - earlier.successes,
            fatal_failures: self.fatal_failures - earlier.fatal_failures,
            sheds_newest: self.sheds_newest - earlier.sheds_newest,
            sheds_oldest: self.sheds_oldest - earlier.sheds_oldest,
            sheds_expired: self.sheds_expired - earlier.sheds_expired,
            sheds_park_timeout: self.sheds_park_timeout - earlier.sheds_park_timeout,
        }
    }

    /// Total invocations shed by admission control, across every policy.
    pub fn sheds_total(&self) -> u64 {
        self.sheds_newest + self.sheds_oldest + self.sheds_expired + self.sheds_park_timeout
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_invoked + self.bytes_replied
    }
}

/// Converts event counts into modeled time.
///
/// All costs are in abstract nanoseconds. The absolute scale is arbitrary;
/// what the experiments care about is the *ratio* of invocation cost to
/// internal-IPC cost, which the paper argues must favour fewer invocations
/// ("the cost of an invocation must inevitably be higher than that of a
/// system call... because invocation is location-independent").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one invocation+reply round trip (marshalling, location
    /// lookup, cross-address-space transfer).
    pub invocation_ns: f64,
    /// Cost of one intra-Eject, language-level process message.
    pub internal_msg_ns: f64,
    /// Cost per payload byte moved across an Eject boundary.
    pub per_byte_ns: f64,
    /// Cost of activating an Eject (process creation, checkpoint read).
    pub activation_ns: f64,
    /// Additional cost when an invocation crosses simulated machines
    /// (the paper's VAXen on a 10 Mbit Ethernet).
    pub remote_extra_ns: f64,
}

impl CostModel {
    /// A model with the flavour of the 1983 Eden prototype: invocations are
    /// remote-procedure-call class (~1 ms class events), two orders of
    /// magnitude more expensive than a language-level process message.
    pub fn eden_1983() -> Self {
        CostModel {
            invocation_ns: 1_000_000.0,
            internal_msg_ns: 10_000.0,
            per_byte_ns: 800.0,
            activation_ns: 50_000_000.0,
            remote_extra_ns: 2_000_000.0,
        }
    }

    /// A model where invocations and internal messages cost the same —
    /// the regime in which the read-only discipline's advantage vanishes.
    pub fn uniform() -> Self {
        CostModel {
            invocation_ns: 10_000.0,
            internal_msg_ns: 10_000.0,
            per_byte_ns: 0.0,
            activation_ns: 0.0,
            remote_extra_ns: 0.0,
        }
    }

    /// A model with the given invocation : internal-message cost ratio,
    /// holding the internal message cost fixed. Used by experiment E8.
    pub fn with_ratio(ratio: f64) -> Self {
        CostModel {
            invocation_ns: 10_000.0 * ratio,
            internal_msg_ns: 10_000.0,
            per_byte_ns: 0.0,
            activation_ns: 0.0,
            remote_extra_ns: 0.0,
        }
    }

    /// Total modeled nanoseconds for the events in `snap`.
    pub fn modeled_ns(&self, snap: &MetricsSnapshot) -> f64 {
        snap.invocations as f64 * self.invocation_ns
            + snap.remote_invocations as f64 * self.remote_extra_ns
            + snap.internal_messages as f64 * self.internal_msg_ns
            + snap.bytes_total() as f64 * self.per_byte_ns
            + snap.activations as f64 * self.activation_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::eden_1983()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_invocation(10);
        m.record_invocation(5);
        m.record_reply(3);
        m.record_internal_message();
        m.record_deferred_reply();
        let s = m.snapshot();
        assert_eq!(s.invocations, 2);
        assert_eq!(s.bytes_invoked, 15);
        assert_eq!(s.replies, 1);
        assert_eq!(s.bytes_replied, 3);
        assert_eq!(s.internal_messages, 1);
        assert_eq!(s.deferred_replies, 1);
        assert_eq!(s.bytes_total(), 18);
    }

    #[test]
    fn clones_share_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record_invocation(1);
        assert_eq!(m.snapshot().invocations, 1);
    }

    #[test]
    fn snapshot_diff() {
        let m = Metrics::new();
        m.record_invocation(10);
        let before = m.snapshot();
        m.record_invocation(10);
        m.record_checkpoint();
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.invocations, 1);
        assert_eq!(delta.checkpoints, 1);
        assert_eq!(delta.bytes_invoked, 10);
    }

    #[test]
    fn fault_plane_counters_accumulate_and_diff() {
        let m = Metrics::new();
        m.record_retry();
        let before = m.snapshot();
        m.record_retry();
        m.record_fault_injected();
        m.record_reactivation();
        m.record_recovered_stream();
        let s = m.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.reactivations, 1);
        assert_eq!(s.recovered_streams, 1);
        let delta = s.since(&before);
        assert_eq!(delta.retries, 1);
        assert_eq!(delta.faults_injected, 1);
        assert_eq!(delta.reactivations, 1);
        assert_eq!(delta.recovered_streams, 1);
    }

    #[test]
    fn outcome_ledger_accumulates_and_diffs() {
        let m = Metrics::new();
        m.record_success();
        let before = m.snapshot();
        m.record_success();
        m.record_fatal_failure();
        let s = m.snapshot();
        assert_eq!(s.successes, 2);
        assert_eq!(s.fatal_failures, 1);
        let delta = s.since(&before);
        assert_eq!(delta.successes, 1);
        assert_eq!(delta.fatal_failures, 1);
    }

    #[test]
    fn shed_counters_accumulate_and_diff() {
        let m = Metrics::new();
        m.record_shed_newest();
        let before = m.snapshot();
        m.record_shed_newest();
        m.record_shed_oldest();
        m.record_shed_expired();
        m.record_shed_park_timeout();
        let s = m.snapshot();
        assert_eq!(s.sheds_newest, 2);
        assert_eq!(s.sheds_oldest, 1);
        assert_eq!(s.sheds_expired, 1);
        assert_eq!(s.sheds_park_timeout, 1);
        assert_eq!(s.sheds_total(), 5);
        let delta = s.since(&before);
        assert_eq!(delta.sheds_newest, 1);
        assert_eq!(delta.sheds_total(), 4);
    }

    #[test]
    fn cost_model_weighs_invocations() {
        let snap = MetricsSnapshot {
            invocations: 10,
            internal_messages: 100,
            ..Default::default()
        };
        let eden = CostModel::eden_1983();
        let uniform = CostModel::uniform();
        // Under the Eden model, 10 invocations dominate 100 internal
        // messages; under the uniform model they do not.
        assert!(eden.modeled_ns(&snap) > 10.0 * eden.internal_msg_ns * 100.0 / 2.0);
        assert!(uniform.modeled_ns(&snap) < eden.modeled_ns(&snap));
    }

    #[test]
    fn ratio_model_scales_linearly() {
        let snap = MetricsSnapshot {
            invocations: 1,
            ..Default::default()
        };
        let low = CostModel::with_ratio(1.0).modeled_ns(&snap);
        let high = CostModel::with_ratio(100.0).modeled_ns(&snap);
        assert!((high / low - 100.0).abs() < 1e-9);
    }
}
