//! The host filing system under the bootstrap Ejects of §7 — and, since
//! the durability plane, under the kernel's stable store as well.
//!
//! "Currently most data of interest is in the Unix file system, so a
//! bootstrap Eden transput system has been constructed." The paper's
//! substrate was a real Unix; ours is the [`HostFs`] trait with two
//! implementations: a hermetic in-memory [`MemFs`] (the default everywhere
//! in tests and benchmarks) and [`RealFs`] over `std::fs`, rooted in a
//! directory, for users who want actual files. The trait lives in
//! `eden-core` so that `eden-kernel`'s durable stable store and
//! `eden-fs`'s bootstrap Ejects run the identical I/O path: every
//! durability test over `MemFs` exercises the same code that touches the
//! disk in production.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Component, Path, PathBuf};
use std::sync::Arc;

use crate::{EdenError, Result};
use parking_lot::Mutex;

/// A minimal byte-file interface: exactly what the bootstrap Ejects and
/// the append-only checkpoint log need.
pub trait HostFs: Send + Sync + 'static {
    /// Read the whole file at `path`.
    fn read(&self, path: &str) -> Result<Vec<u8>>;
    /// Create or replace the file at `path`.
    fn write(&self, path: &str, bytes: &[u8]) -> Result<()>;
    /// Append to the file at `path` (created if missing), returning the
    /// file's new length. The log layer treats one `append` as the unit
    /// that may tear on a crash: a partial append is tolerated on replay,
    /// an interleaved one is not, so callers serialise appends per file.
    fn append(&self, path: &str, bytes: &[u8]) -> Result<u64>;
    /// Force the file at `path` to stable storage (fsync). `MemFs` is
    /// always "stable" and treats this as a no-op.
    fn sync(&self, path: &str) -> Result<()>;
    /// Atomically rename `from` to `to` (replacing `to` if it exists).
    fn rename(&self, from: &str, to: &str) -> Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &str) -> bool;
    /// Paths of every file, sorted (diagnostics and tests).
    fn list(&self) -> Vec<String>;
    /// Remove the file at `path` (missing files are an error).
    fn remove(&self, path: &str) -> Result<()>;
}

/// A shared handle to a host filing system.
pub type HostFsHandle = Arc<dyn HostFs>;

/// An in-memory filing system.
#[derive(Default)]
#[derive(Debug)]
pub struct MemFs {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemFs {
    /// An empty in-memory filing system, ready to share.
    #[allow(clippy::new_ret_no_self)] // Deliberately returns the shared handle.
    pub fn new() -> HostFsHandle {
        Arc::new(MemFs::default())
    }

    /// A filing system pre-populated with text files.
    pub fn with_files<I, P, C>(files: I) -> HostFsHandle
    where
        I: IntoIterator<Item = (P, C)>,
        P: Into<String>,
        C: Into<Vec<u8>>,
    {
        let fs = MemFs::default();
        {
            let mut map = fs.files.lock();
            for (path, contents) in files {
                map.insert(path.into(), contents.into());
            }
        }
        Arc::new(fs)
    }
}

impl HostFs for MemFs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| EdenError::HostFs(format!("no such file: {path}")))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<()> {
        self.files.lock().insert(path.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<u64> {
        let mut map = self.files.lock();
        let file = map.entry(path.to_owned()).or_default();
        file.extend_from_slice(bytes);
        Ok(file.len() as u64)
    }

    fn sync(&self, _path: &str) -> Result<()> {
        // Memory is as stable as MemFs storage gets.
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut map = self.files.lock();
        let bytes = map
            .remove(from)
            .ok_or_else(|| EdenError::HostFs(format!("no such file: {from}")))?;
        map.insert(to.to_owned(), bytes);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    fn list(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }

    fn remove(&self, path: &str) -> Result<()> {
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| EdenError::HostFs(format!("no such file: {path}")))
    }
}

/// A filing system over `std::fs`, confined to a root directory.
#[derive(Debug)]
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Use `root` as the filing-system root. The directory must exist.
    #[allow(clippy::new_ret_no_self)] // Deliberately returns the shared handle.
    pub fn new(root: impl Into<PathBuf>) -> Result<HostFsHandle> {
        let root = root.into();
        if !root.is_dir() {
            return Err(EdenError::HostFs(format!(
                "root is not a directory: {}",
                root.display()
            )));
        }
        Ok(Arc::new(RealFs { root }))
    }

    /// Resolve a relative path, rejecting traversal outside the root.
    fn resolve(&self, path: &str) -> Result<PathBuf> {
        let rel = Path::new(path);
        if rel.is_absolute()
            || rel
                .components()
                .any(|c| matches!(c, Component::ParentDir | Component::Prefix(_)))
        {
            return Err(EdenError::HostFs(format!(
                "path must be relative and traversal-free: {path}"
            )));
        }
        Ok(self.root.join(rel))
    }
}

impl HostFs for RealFs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        let full = self.resolve(path)?;
        std::fs::read(&full).map_err(|e| EdenError::HostFs(format!("read {path}: {e}")))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<()> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| EdenError::HostFs(format!("mkdir for {path}: {e}")))?;
        }
        std::fs::write(&full, bytes).map_err(|e| EdenError::HostFs(format!("write {path}: {e}")))
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<u64> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| EdenError::HostFs(format!("mkdir for {path}: {e}")))?;
        }
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&full)
            .map_err(|e| EdenError::HostFs(format!("open {path}: {e}")))?;
        file.write_all(bytes)
            .map_err(|e| EdenError::HostFs(format!("append {path}: {e}")))?;
        file.metadata()
            .map(|m| m.len())
            .map_err(|e| EdenError::HostFs(format!("stat {path}: {e}")))
    }

    fn sync(&self, path: &str) -> Result<()> {
        let full = self.resolve(path)?;
        std::fs::File::open(&full)
            .and_then(|f| f.sync_all())
            .map_err(|e| EdenError::HostFs(format!("sync {path}: {e}")))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let src = self.resolve(from)?;
        let dst = self.resolve(to)?;
        if let Some(parent) = dst.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| EdenError::HostFs(format!("mkdir for {to}: {e}")))?;
        }
        std::fs::rename(&src, &dst)
            .map_err(|e| EdenError::HostFs(format!("rename {from} -> {to}: {e}")))
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|p| p.is_file()).unwrap_or(false)
    }

    fn list(&self) -> Vec<String> {
        fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
            let entries = match std::fs::read_dir(dir) {
                Ok(e) => e,
                Err(_) => return,
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, root, out);
                } else if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().into_owned());
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        out.sort();
        out
    }

    fn remove(&self, path: &str) -> Result<()> {
        let full = self.resolve(path)?;
        std::fs::remove_file(&full).map_err(|e| EdenError::HostFs(format!("remove {path}: {e}")))
    }
}

impl std::fmt::Debug for dyn HostFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HostFs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_roundtrip() {
        let fs = MemFs::new();
        assert!(!fs.exists("a.txt"));
        fs.write("a.txt", b"hello").unwrap();
        assert!(fs.exists("a.txt"));
        assert_eq!(fs.read("a.txt").unwrap(), b"hello");
        assert_eq!(fs.list(), vec!["a.txt"]);
        fs.remove("a.txt").unwrap();
        assert!(!fs.exists("a.txt"));
    }

    #[test]
    fn memfs_missing_file_errors() {
        let fs = MemFs::new();
        assert!(matches!(fs.read("nope"), Err(EdenError::HostFs(_))));
        assert!(fs.remove("nope").is_err());
        assert!(fs.rename("nope", "other").is_err());
    }

    #[test]
    fn memfs_append_creates_and_extends() {
        let fs = MemFs::new();
        assert_eq!(fs.append("log", b"ab").unwrap(), 2);
        assert_eq!(fs.append("log", b"cd").unwrap(), 4);
        assert_eq!(fs.read("log").unwrap(), b"abcd");
        fs.sync("log").unwrap();
    }

    #[test]
    fn memfs_rename_moves_bytes() {
        let fs = MemFs::new();
        fs.write("a", b"x").unwrap();
        fs.rename("a", "b").unwrap();
        assert!(!fs.exists("a"));
        assert_eq!(fs.read("b").unwrap(), b"x");
    }

    #[test]
    fn realfs_confined_roundtrip() {
        let dir = std::env::temp_dir().join(format!("eden-fs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = RealFs::new(&dir).unwrap();
        fs.write("sub/file.txt", b"data").unwrap();
        assert_eq!(fs.read("sub/file.txt").unwrap(), b"data");
        assert!(fs.exists("sub/file.txt"));
        assert_eq!(fs.list(), vec!["sub/file.txt".to_owned()]);
        fs.remove("sub/file.txt").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn realfs_append_sync_rename() {
        let dir = std::env::temp_dir().join(format!("eden-fs-app-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = RealFs::new(&dir).unwrap();
        assert_eq!(fs.append("seg/log", b"ab").unwrap(), 2);
        assert_eq!(fs.append("seg/log", b"c").unwrap(), 3);
        fs.sync("seg/log").unwrap();
        fs.rename("seg/log", "seg/log2").unwrap();
        assert_eq!(fs.read("seg/log2").unwrap(), b"abc");
        assert!(!fs.exists("seg/log"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn realfs_rejects_traversal() {
        let dir = std::env::temp_dir().join(format!("eden-fs-esc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = RealFs::new(&dir).unwrap();
        assert!(fs.read("../etc/passwd").is_err());
        assert!(fs.write("/abs.txt", b"x").is_err());
        assert!(fs.append("../esc", b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
