//! Causal span contexts for the observability plane.
//!
//! The paper's cost argument is denominated in invocations; a [`SpanContext`]
//! makes each delivered invocation one node of a causal tree, so a single
//! datum's path through a pipeline — n+1 invocations under the read-only and
//! write-only disciplines, 2n+2 under the conventional one — can be
//! reconstructed after the fact instead of inferred from aggregate counters.
//!
//! Propagation is *ambient*: the current span is a thread-local. A
//! coordinator installs the span of the invocation it is dispatching, worker
//! processes inherit the ambient span of whoever spawned them, and the kernel
//! parents every outgoing invocation under whatever is ambient at send time.
//! This mirrors how the disciplines actually move data: a lazy pull filter
//! forwards synchronously *during* handling (ambient = the downstream
//! Transfer), a pump worker pulls and pushes from a thread spawned under the
//! pipeline's root span, and a retry re-sends under the ambient captured when
//! the invocation was first issued — so a crash/reactivate cycle keeps the
//! original trace id.
//!
//! Ids are process-unique counters, not random: two kernels in one process
//! share the id space, which is exactly what the exporters want.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global id well. Starts at 1 so 0 never names a real trace or span.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The causal coordinates of one invocation: which trace it belongs to,
/// which span it is, and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this span belongs to (stable across retries, batching, and
    /// checkpoint recovery).
    pub trace: u64,
    /// This span's own id, unique within the process.
    pub span: u64,
    /// The causing span, if any (`None` for a trace root).
    pub parent: Option<u64>,
    /// Hops from the root (root = 0).
    pub hop: u32,
}

impl SpanContext {
    /// Start a fresh trace.
    pub fn root() -> SpanContext {
        let id = next_id();
        SpanContext {
            trace: id,
            span: id,
            parent: None,
            hop: 0,
        }
    }

    /// A child span caused by `self`: same trace, one hop deeper.
    pub fn child(&self) -> SpanContext {
        SpanContext {
            trace: self.trace,
            span: next_id(),
            parent: Some(self.span),
            hop: self.hop.saturating_add(1),
        }
    }
}

thread_local! {
    static AMBIENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// The span ambient on this thread, if any.
pub fn current() -> Option<SpanContext> {
    AMBIENT.with(|cell| cell.get())
}

/// A child of the ambient span, or a fresh root if nothing is ambient.
pub fn child_of_current() -> SpanContext {
    match current() {
        Some(ctx) => ctx.child(),
        None => SpanContext::root(),
    }
}

/// Install `ctx` as this thread's ambient span until the guard drops
/// (restoring whatever was ambient before). Passing `None` clears the
/// ambient for the guard's lifetime.
pub fn enter(ctx: Option<SpanContext>) -> AmbientGuard {
    let prev = AMBIENT.with(|cell| cell.replace(ctx));
    AmbientGuard { prev }
}

/// RAII guard from [`enter`]; restores the previous ambient span on drop.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<SpanContext>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|cell| cell.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_child_share_a_trace() {
        let root = SpanContext::root();
        let child = root.child();
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, Some(root.span));
        assert_eq!(child.hop, 1);
        assert_ne!(child.span, root.span);
    }

    #[test]
    fn distinct_roots_are_distinct_traces() {
        assert_ne!(SpanContext::root().trace, SpanContext::root().trace);
    }

    #[test]
    fn ambient_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = SpanContext::root();
        {
            let _g = enter(Some(outer));
            assert_eq!(current(), Some(outer));
            let inner = child_of_current();
            assert_eq!(inner.parent, Some(outer.span));
            {
                let _g2 = enter(Some(inner));
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
            {
                let _g3 = enter(None);
                assert_eq!(current(), None);
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn child_of_empty_ambient_is_a_root() {
        let _g = enter(None);
        let ctx = child_of_current();
        assert_eq!(ctx.parent, None);
        assert_eq!(ctx.hop, 0);
        assert_eq!(ctx.trace, ctx.span);
    }

    #[test]
    fn ambient_is_per_thread() {
        let root = SpanContext::root();
        let _g = enter(Some(root));
        let seen = std::thread::spawn(current).join().unwrap();
        assert_eq!(seen, None, "ambient spans must not leak across threads");
    }
}
