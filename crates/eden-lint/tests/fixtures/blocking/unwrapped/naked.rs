// A deliberately unguarded blocker. This file is *scanned* by the
// blocking fixture test, never compiled: both rendezvous calls below
// run bare — no `blocking(..)` wrap, no `nonblocking(..)` annotation —
// so the audit must report two findings.

impl Worker {
    fn drain(&self) -> Item {
        let mut guard = self.state.lock().unwrap();
        while guard.queue.is_empty() {
            guard = self.cv.wait(&mut guard).unwrap();
        }
        guard.queue.pop().unwrap()
    }

    fn next(&self) -> Item {
        self.rx.recv().unwrap()
    }
}
