// The conforming twin of `unwrapped/naked.rs`: one rendezvous call is
// wrapped in `blocking(..)`, the other is excused by an annotation.
// Scanned, never compiled; the audit must stay clean.

impl Worker {
    fn drain(&self) -> Item {
        let mut guard = self.state.lock().unwrap();
        while guard.queue.is_empty() {
            guard = eden_kernel::blocking(|| self.cv.wait(&mut guard)).unwrap();
        }
        guard.queue.pop().unwrap()
    }

    fn next(&self) -> Item {
        // eden-lint: nonblocking(dedicated drain thread, never a pool worker)
        self.rx.recv().unwrap()
    }
}
