// A deliberately non-conforming atomics user. This file is *scanned* by
// the atomics fixture test, never compiled. The catalog blesses
// `flag.load(Acquire)`; the load below is Relaxed (the silent-downgrade
// case), and `other` has no catalog entry at all (the unknown-site
// case, which must also produce a ready-to-paste suggestion).

struct Handoff {
    flag: AtomicBool,
    other: AtomicUsize,
}

impl Handoff {
    fn publish(&self) {
        // eden-lint: ordering(handoff-flag)
        self.flag.store(true, Ordering::Release);
    }

    fn consume(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    fn untracked(&self) -> usize {
        self.other.swap(0, Ordering::AcqRel)
    }
}
