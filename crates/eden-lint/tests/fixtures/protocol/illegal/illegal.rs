// A deliberately protocol-breaking parking-bit user. This file is
// *scanned* by the protocol fixture test, never compiled. The CAS
// takes QUEUED straight to DEAD — an edge `mailbox::spec::TRANSITIONS`
// does not contain — and the store writes a park state with no
// `transition(..)` annotation carrying its proof obligation.

impl Rogue {
    fn kill_queued(&self) {
        self.bit
            .compare_exchange(
                park::QUEUED,
                park::DEAD,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .ok();
    }

    fn unproven_requeue(&self) {
        self.bit.store(park::QUEUED, Ordering::Release);
    }
}
