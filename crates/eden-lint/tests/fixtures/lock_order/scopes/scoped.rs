// Scoped-guard forms that must still count as held. This file is
// *scanned* by the lock-order fixture test, never compiled: each
// function binds the beta guard through a scope-carrying form —
// `if let`, `while let`, a match scrutinee — and acquires alpha inside
// that scope, against the blessed `alpha < beta` order. The audit must
// see all three inverted nestings (and the blessed nesting in
// `forward`, closing the cycle). The trailing acquisitions in
// `if_let_backward` prove the guard dies at its block's `}`: they nest
// alpha -> beta, which is blessed and must not be reported.

impl Pair {
    fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    fn if_let_backward(&self) -> u32 {
        let mut sum = 0;
        if let Ok(b) = self.beta.lock() {
            let a = self.alpha.lock();
            sum += *a + *b;
        }
        let a = self.alpha.lock();
        let b = self.beta.lock();
        sum + *a + *b
    }

    fn while_let_backward(&self) -> u32 {
        let mut sum = 0;
        while let Ok(b) = self.beta.lock() {
            let a = self.alpha.lock();
            sum += *a + *b;
        }
        sum
    }

    fn match_backward(&self) -> u32 {
        match self.beta.lock() {
            Ok(b) => {
                let a = self.alpha.lock();
                *a + *b
            }
            Err(_) => 0,
        }
    }
}
