// A deliberately inverted acquisition order. This file is *scanned* by
// the lock-order fixture test, never compiled: `forward` nests
// alpha -> beta (the blessed direction) and `backward` nests
// beta -> alpha, closing the cycle the audit must detect.

struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a - *b
    }
}
