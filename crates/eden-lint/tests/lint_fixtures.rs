//! The `#[should_fail]`-style corpus: every pass has a seeded fixture
//! that must make the linter fire (and exit non-zero) — discipline
//! violations per rule, a lock-order cycle (including scoped-guard
//! forms), an atomics downgrade plus unknown site, naked rendezvous
//! calls, and an off-spec parking-bit transition. The legal twins stay
//! clean, and the real tree must pass every pass.

use std::path::{Path, PathBuf};
use std::process::Command;

use eden_lint::{atomics, blocking, fixture, lockorder, protocol};
use eden_transput::conform::Rule;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eden-lint"))
}

#[test]
fn every_discipline_rule_has_a_firing_fixture() {
    let fixtures = fixture::load_dir(&fixtures_dir().join("discipline")).unwrap();
    let mut fired: Vec<Rule> = Vec::new();
    for f in &fixtures {
        let violations = f.check();
        assert!(
            f.verdict_matches(&violations),
            "{}: expected {:?}, raised {:?}",
            f.name,
            f.expect,
            violations
        );
        fired.extend(violations.iter().map(|v| v.rule));
    }
    for rule in [
        Rule::FanOutUnderReadOnly,
        Rule::FanInUnderWriteOnly,
        Rule::UnbufferedFilterEdge,
        Rule::ChannelForgery,
        Rule::UnknownNode,
    ] {
        assert!(fired.contains(&rule), "no fixture fires {rule}");
    }
}

#[test]
fn merge_workaround_fixture_is_clean() {
    let f = fixture::load(
        &fixtures_dir()
            .join("discipline")
            .join("merge_workaround_clean.graph"),
    )
    .unwrap();
    assert!(f.expect.is_empty());
    assert_eq!(f.check(), Vec::new());
}

#[test]
fn binary_exits_nonzero_on_each_seeded_violation() {
    for entry in std::fs::read_dir(fixtures_dir().join("discipline")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "graph") {
            continue;
        }
        let f = fixture::load(&path).unwrap();
        let status = bin()
            .args(["--discipline", "--fixture"])
            .arg(&path)
            .status()
            .unwrap();
        if f.expect.is_empty() {
            assert!(status.success(), "{} should be clean", f.name);
        } else {
            assert_eq!(status.code(), Some(1), "{} should fail", f.name);
        }
    }
}

#[test]
fn lock_order_fixture_cycle_is_detected() {
    let spec = lockorder::parse_blessed(
        &std::fs::read_to_string(fixtures_dir().join("lock_order").join("blessed.md")).unwrap(),
    )
    .unwrap();
    let report = lockorder::audit(&spec, &[fixtures_dir().join("lock_order").join("cycle")])
        .unwrap();
    assert_eq!(report.cycles.len(), 1, "{}", report.render());
    assert!(!report.deviations.is_empty(), "{}", report.render());

    let status = bin()
        .args(["--lock-order", "--root"])
        .arg(fixtures_dir().join("lock_order").join("cycle"))
        .arg("--blessed")
        .arg(fixtures_dir().join("lock_order").join("blessed.md"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn scoped_guard_fixture_inversions_are_detected() {
    let spec = lockorder::parse_blessed(
        &std::fs::read_to_string(fixtures_dir().join("lock_order").join("blessed.md")).unwrap(),
    )
    .unwrap();
    let report = lockorder::audit(&spec, &[fixtures_dir().join("lock_order").join("scopes")])
        .unwrap();
    // All three scoped forms induce the same inverted edge; the trailing
    // alpha -> beta nesting after the `if let` block must stay blessed.
    let inverted = report
        .edges
        .iter()
        .find(|e| e.from == "beta" && e.to == "alpha")
        .expect("inverted edge missing");
    assert_eq!(inverted.sites.len(), 3, "{}", report.render());
    assert_eq!(report.cycles.len(), 1, "{}", report.render());

    let status = bin()
        .args(["--lock-order", "--root"])
        .arg(fixtures_dir().join("lock_order").join("scopes"))
        .arg("--blessed")
        .arg(fixtures_dir().join("lock_order").join("blessed.md"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn atomics_fixture_downgrade_and_unknown_site_fail() {
    let dir = fixtures_dir().join("atomics");
    let cat = atomics::parse_blessed(&std::fs::read_to_string(dir.join("blessed.md")).unwrap())
        .unwrap();
    let report = atomics::audit(&cat, &[dir.join("src")]).unwrap();
    assert_eq!(report.findings.len(), 2, "{}", report.render());
    assert!(report.findings.iter().any(|f| f.contains("downgraded")));
    assert!(report.findings.iter().any(|f| f.contains("unknown atomic site")));
    assert_eq!(report.suggestions.len(), 1, "{}", report.render());
    assert!(report.suggestions[0].contains("other"));

    let status = bin()
        .args(["--atomics", "--root"])
        .arg(dir.join("src"))
        .arg("--blessed")
        .arg(dir.join("blessed.md"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn blocking_fixture_naked_calls_fail_and_wrapped_twin_passes() {
    let dir = fixtures_dir().join("blocking");
    let report = blocking::audit(&[dir.join("unwrapped")]).unwrap();
    assert_eq!(report.findings.len(), 2, "{}", report.render());

    let status = bin()
        .args(["--blocking", "--root"])
        .arg(dir.join("unwrapped"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));

    let status = bin()
        .args(["--blocking", "--root"])
        .arg(dir.join("clean"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
}

#[test]
fn protocol_fixture_offspec_transitions_fail() {
    let dir = fixtures_dir().join("protocol").join("illegal");
    let report = protocol::audit(std::slice::from_ref(&dir)).unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.contains("QUEUED -> DEAD") && f.contains("not in mailbox::spec")),
        "{}",
        report.render()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.contains("without a transition")),
        "{}",
        report.render()
    );

    let status = bin()
        .args(["--protocol", "--root"])
        .arg(&dir)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn real_tree_is_clean_under_every_pass() {
    let json_path = std::env::temp_dir().join(format!("eden-lint-{}.json", std::process::id()));
    let output = bin()
        .args(["--all", "--quiet", "--json"])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("acyclic and blessed"), "{stdout}");
    assert!(stdout.contains("every Ordering site"), "{stdout}");
    assert!(stdout.contains("every rendezvous call"), "{stdout}");
    assert!(stdout.contains("describe the same machine"), "{stdout}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    let _ = std::fs::remove_file(&json_path);
    assert!(json.contains("\"clean\": true"), "{json}");
    for pass in ["discipline", "lock-order", "atomics", "blocking", "protocol"] {
        assert!(json.contains(&format!("\"name\": \"{pass}\"")), "{json}");
    }
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(bin().status().unwrap().code(), Some(2));
    assert_eq!(bin().arg("--frobnicate").status().unwrap().code(), Some(2));
}
