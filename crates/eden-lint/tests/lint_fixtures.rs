//! The `#[should_fail]`-style corpus: every discipline rule has a seeded
//! fixture that must make the linter fire (and exit non-zero), the legal
//! §5 merge workaround must stay clean, the lock-order fixture must
//! produce a cycle, and the real tree must pass both passes.

use std::path::{Path, PathBuf};
use std::process::Command;

use eden_lint::{fixture, lockorder};
use eden_transput::conform::Rule;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eden-lint"))
}

#[test]
fn every_discipline_rule_has_a_firing_fixture() {
    let fixtures = fixture::load_dir(&fixtures_dir().join("discipline")).unwrap();
    let mut fired: Vec<Rule> = Vec::new();
    for f in &fixtures {
        let violations = f.check();
        assert!(
            f.verdict_matches(&violations),
            "{}: expected {:?}, raised {:?}",
            f.name,
            f.expect,
            violations
        );
        fired.extend(violations.iter().map(|v| v.rule));
    }
    for rule in [
        Rule::FanOutUnderReadOnly,
        Rule::FanInUnderWriteOnly,
        Rule::UnbufferedFilterEdge,
        Rule::ChannelForgery,
        Rule::UnknownNode,
    ] {
        assert!(fired.contains(&rule), "no fixture fires {rule}");
    }
}

#[test]
fn merge_workaround_fixture_is_clean() {
    let f = fixture::load(
        &fixtures_dir()
            .join("discipline")
            .join("merge_workaround_clean.graph"),
    )
    .unwrap();
    assert!(f.expect.is_empty());
    assert_eq!(f.check(), Vec::new());
}

#[test]
fn binary_exits_nonzero_on_each_seeded_violation() {
    for entry in std::fs::read_dir(fixtures_dir().join("discipline")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "graph") {
            continue;
        }
        let f = fixture::load(&path).unwrap();
        let status = bin()
            .args(["--discipline", "--fixture"])
            .arg(&path)
            .status()
            .unwrap();
        if f.expect.is_empty() {
            assert!(status.success(), "{} should be clean", f.name);
        } else {
            assert_eq!(status.code(), Some(1), "{} should fail", f.name);
        }
    }
}

#[test]
fn lock_order_fixture_cycle_is_detected() {
    let spec = lockorder::parse_blessed(
        &std::fs::read_to_string(fixtures_dir().join("lock_order").join("blessed.md")).unwrap(),
    )
    .unwrap();
    let report = lockorder::audit(&spec, &[fixtures_dir().join("lock_order").join("cycle")])
        .unwrap();
    assert_eq!(report.cycles.len(), 1, "{}", report.render());
    assert!(!report.deviations.is_empty(), "{}", report.render());

    let status = bin()
        .args(["--lock-order", "--root"])
        .arg(fixtures_dir().join("lock_order").join("cycle"))
        .arg("--blessed")
        .arg(fixtures_dir().join("lock_order").join("blessed.md"))
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn real_tree_is_clean_under_both_passes() {
    let output = bin().args(["--all", "--quiet"]).output().unwrap();
    assert!(
        output.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("acyclic and blessed"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(bin().status().unwrap().code(), Some(2));
    assert_eq!(bin().arg("--frobnicate").status().unwrap().code(), Some(2));
}
