//! Static analysis for the Eden reproduction.
//!
//! Five passes, all runnable from the `eden-lint` binary and from CI:
//!
//! * **Discipline conformance** ([`catalog`], [`fixture`]): every wiring
//!   shape the repo builds — pipeline specs, shell pipelines, recovery
//!   chains — is rendered as a [`eden_transput::WiringGraph`] and checked
//!   against the §3–§5 discipline predicates. Hand-written violation
//!   fixtures prove each predicate actually fires.
//! * **Lock-order audit** ([`lockorder`]): a source-level scan of
//!   eden-kernel and eden-transput extracts the Mutex/RwLock acquisition
//!   graph, detects cycles, and checks every observed nesting against the
//!   blessed partial order in `docs/LOCK_ORDER.md`.
//! * **Atomics-ordering audit** ([`atomics`]): every `Ordering::` site in
//!   the workspace must match a blessed entry in `docs/ATOMICS.md` —
//!   unknown sites, undocumented methods, and downgraded orderings fail.
//! * **Blocking-site audit** ([`blocking`]): every rendezvous call
//!   (condvar wait, channel recv, join, sleep, fsync) in eden-kernel and
//!   eden-transput must run inside `sched::blocking(..)` or carry a
//!   `// eden-lint: nonblocking(reason)` annotation.
//! * **Mailbox protocol conformance** ([`protocol`]): the parking-bit
//!   CAS/store transitions in the code must round-trip against the
//!   declarative table in `eden_kernel::mailbox::spec`, both directions.
//!
//! [`scan`] owns the shared syntactic machinery; [`report`] renders the
//! machine-readable `--json` report.

pub mod atomics;
pub mod blocking;
pub mod catalog;
pub mod fixture;
pub mod lockorder;
pub mod protocol;
pub mod report;
pub mod scan;
