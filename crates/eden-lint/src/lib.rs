//! Static analysis for the Eden reproduction.
//!
//! Two passes, both runnable from the `eden-lint` binary and from CI:
//!
//! * **Discipline conformance** ([`catalog`], [`fixture`]): every wiring
//!   shape the repo builds — pipeline specs, shell pipelines, recovery
//!   chains — is rendered as a [`eden_transput::WiringGraph`] and checked
//!   against the §3–§5 discipline predicates. Hand-written violation
//!   fixtures prove each predicate actually fires.
//! * **Lock-order audit** ([`lockorder`]): a source-level scan of
//!   eden-kernel and eden-transput extracts the Mutex/RwLock acquisition
//!   graph, detects cycles, and checks every observed nesting against the
//!   blessed partial order in `docs/LOCK_ORDER.md`.

pub mod catalog;
pub mod fixture;
pub mod lockorder;
