//! Source-level lock-order audit.
//!
//! A deliberately *syntactic* pass: it never builds or runs the code. The
//! blessed lock classes and their partial order live in a fenced
//! ` ```lock-order ` block in `docs/LOCK_ORDER.md`:
//!
//! ```text
//! class registry-shard .slots.read() .slots.write()
//! class stable-store   .stable.load( .stable.store(
//! order registry-shard < stable-store
//! ```
//!
//! A **class** names one lock level and the textual patterns that acquire
//! it (call-site substrings, matched against whitespace-collapsed
//! statements, so multi-line builder chains still match). The scanner
//! walks every `.rs` file under the configured roots, tracks which
//! classes are plausibly held at each acquisition site, and records a
//! directed edge `A → B` whenever `B` is acquired with `A` held. Held
//! state comes from two sources:
//!
//! * a `let` binding whose initializer matches a *guard-returning*
//!   pattern (one ending in `()`, like `.slots.write()`) holds that class
//!   until its block closes or the guard is `drop`ped — patterns with
//!   open arguments (`.stable.load(`) are methods that release their
//!   internal lock before returning and count only for their statement;
//! * an `if let` / `while let` pattern binding or a `match` scrutinee
//!   whose initializer matches a guard-returning pattern holds the class
//!   for the block it opens (the if/loop body, or every arm of the
//!   match) — the scrutinee temporary keeps the guard alive there;
//! * a `// eden-lint: holds(class)` annotation directly above a `fn`
//!   declares that the whole function runs with that class held (for
//!   callees like `Kernel::reactivate` that receive a guard from their
//!   caller).
//!
//! The audit then fails on (a) any cycle in the acquisition graph and
//! (b) any observed edge not derivable from the blessed partial order —
//! so *every* nesting must be documented, and the documentation must stay
//! acyclic. Everything else is reported, ranked by how many sites induce
//! the edge.
//!
//! Known limits (accepted for a lint that must not depend on rustc):
//! braces inside string literals are skipped per line but multi-line
//! string literals are not tracked, and a guard stored into a struct
//! outlives what the scanner assumes. The classes are chosen so both
//! cases stay far from the patterns.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::PathBuf;

use eden_core::{EdenError, Result};

use crate::scan::{collapse_ws, collect_rs, strip_noise};

/// One lock level: a name plus the call-site substrings that acquire it.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// The level's name, as used in `order` lines and annotations.
    pub name: String,
    /// Substrings (whitespace-collapsed) that mark an acquisition.
    pub patterns: Vec<String>,
}

/// The blessed specification: classes plus a partial order.
#[derive(Debug, Clone, Default)]
pub struct LockSpec {
    /// Declared lock levels.
    pub classes: Vec<LockClass>,
    /// Blessed `a < b` pairs (a may be held while acquiring b).
    pub order: Vec<(String, String)>,
}

impl LockSpec {
    fn class_of(&self, name: &str) -> bool {
        self.classes.iter().any(|c| c.name == name)
    }

    /// Transitive closure of the blessed order.
    fn reachable(&self) -> BTreeSet<(String, String)> {
        let mut closure: BTreeSet<(String, String)> = self.order.iter().cloned().collect();
        loop {
            let mut grew = false;
            let snapshot: Vec<(String, String)> = closure.iter().cloned().collect();
            for (a, b) in &snapshot {
                for (c, d) in &snapshot {
                    if b == c && !closure.contains(&(a.clone(), d.clone())) {
                        closure.insert((a.clone(), d.clone()));
                        grew = true;
                    }
                }
            }
            if !grew {
                return closure;
            }
        }
    }
}

/// Parse the ` ```lock-order ` fenced block out of a markdown document.
pub fn parse_blessed(markdown: &str) -> Result<LockSpec> {
    let mut spec = LockSpec::default();
    let mut in_block = false;
    for (i, raw) in markdown.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("```") {
            in_block = line == "```lock-order";
            continue;
        }
        if !in_block || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["class", name, patterns @ ..] if !patterns.is_empty() => {
                spec.classes.push(LockClass {
                    name: (*name).to_owned(),
                    patterns: patterns.iter().map(|p| (*p).to_owned()).collect(),
                });
            }
            ["order", a, "<", b] => {
                spec.order.push(((*a).to_owned(), (*b).to_owned()));
            }
            _ => {
                return Err(EdenError::BadParameter(format!(
                    "LOCK_ORDER line {}: unparseable `{line}`",
                    i + 1
                )))
            }
        }
    }
    for (a, b) in &spec.order {
        for side in [a, b] {
            if !spec.class_of(side) {
                return Err(EdenError::BadParameter(format!(
                    "LOCK_ORDER: `order` names undeclared class `{side}`"
                )));
            }
        }
    }
    if spec.classes.is_empty() {
        return Err(EdenError::BadParameter(
            "LOCK_ORDER: no ```lock-order block with class declarations found".into(),
        ));
    }
    Ok(spec)
}

/// One observed nesting: `from` held while `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The class already held.
    pub from: String,
    /// The class acquired under it.
    pub to: String,
    /// `file:line` sites inducing the edge.
    pub sites: Vec<String>,
}

/// The audit's outcome.
#[derive(Debug, Default)]
pub struct LockReport {
    /// Observed edges, ranked by site count (descending).
    pub edges: Vec<LockEdge>,
    /// Classes involved in acquisition cycles (each set is one cycle's
    /// members; a single-element set is a self-nesting).
    pub cycles: Vec<Vec<String>>,
    /// Observed edges the blessed order does not derive.
    pub deviations: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Acquisition sites seen.
    pub sites: usize,
}

impl LockReport {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.cycles.is_empty() && self.deviations.is_empty()
    }

    /// Render the ranked human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lock-order audit: {} file(s), {} acquisition site(s), {} distinct edge(s)",
            self.files,
            self.sites,
            self.edges.len()
        );
        if self.edges.is_empty() {
            let _ = writeln!(out, "  (no nested acquisitions observed)");
        }
        for edge in &self.edges {
            let _ = writeln!(
                out,
                "  {} -> {}  [{} site(s)]",
                edge.from,
                edge.to,
                edge.sites.len()
            );
            for site in &edge.sites {
                let _ = writeln!(out, "      {site}");
            }
        }
        for cycle in &self.cycles {
            let _ = writeln!(out, "CYCLE: {}", cycle.join(" -> "));
        }
        for deviation in &self.deviations {
            let _ = writeln!(out, "DEVIATION: {deviation}");
        }
        if self.clean() {
            let _ = writeln!(out, "ok: acquisition graph is acyclic and blessed");
        }
        out
    }
}

/// A guard (or annotation) currently counted as held.
#[derive(Debug)]
struct Held {
    class: String,
    /// Guard variable name; `None` for `holds(...)` annotations.
    ident: Option<String>,
    /// Brace depth at acquisition; released when depth drops below it.
    depth: usize,
    /// Whether `depth` has been reached yet. An annotation on a multi-line
    /// `fn` signature points at a body that has not opened; it must not be
    /// released before the body's brace arrives.
    armed: bool,
}

/// How a statement binds a value whose lifetime we must track.
#[derive(Debug, PartialEq, Eq)]
enum Binding {
    /// `let g = ...;` — held in the current block, droppable by name.
    Let(String),
    /// `if let P = ... {`, `while let P = ... {`, or `match ... {` — the
    /// scrutinee temporary holds the guard for the block being opened.
    Scoped,
}

/// Classify a whitespace-collapsed statement's binding form.
fn binding_of(stmt: &str) -> Option<Binding> {
    // `} else if let ...` closes one block before opening the next; the
    // binding logic only cares about what opens.
    let s = stmt.trim_start().trim_start_matches('}').trim_start();
    let s = s.strip_prefix("else ").unwrap_or(s).trim_start();
    if s.starts_with("if let ") || s.starts_with("while let ") {
        return stmt.trim_end().ends_with('{').then_some(Binding::Scoped);
    }
    if s.starts_with("match ") {
        return stmt.trim_end().ends_with('{').then_some(Binding::Scoped);
    }
    let rest = s.strip_prefix("let ")?;
    let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest.trim_start());
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(Binding::Let(ident))
}

/// Scan one file's text, appending observed edges and counting sites.
fn scan_text(
    spec: &LockSpec,
    file: &str,
    text: &str,
    edges: &mut BTreeMap<(String, String), Vec<String>>,
    sites: &mut usize,
) {
    let mut depth: usize = 0;
    let mut held: Vec<Held> = Vec::new();
    let mut pending_holds: Vec<String> = Vec::new();
    let mut stmt = String::new();
    let mut stmt_line = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        // Annotations live in comments, so read them before stripping.
        if let Some(idx) = raw.find("eden-lint: holds(") {
            let rest = &raw[idx + "eden-lint: holds(".len()..];
            if let Some(end) = rest.find(')') {
                for name in rest[..end].split(',') {
                    pending_holds.push(name.trim().to_owned());
                }
            }
        }
        let code = strip_noise(raw);
        if code.trim().is_empty() {
            continue;
        }

        // A `fn` header: attach pending annotations at the body's depth.
        if (code.trim_start().starts_with("fn ") || code.contains(" fn "))
            && code.contains('(')
        {
            for class in pending_holds.drain(..) {
                held.push(Held {
                    class,
                    ident: None,
                    depth: depth + 1,
                    armed: false,
                });
            }
        }

        if stmt.is_empty() {
            stmt_line = lineno;
        }
        stmt.push(' ');
        stmt.push_str(&code);

        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        let trimmed = code.trim_end();
        let terminated = trimmed.ends_with(';')
            || trimmed.ends_with('{')
            || trimmed.ends_with('}')
            || trimmed.ends_with(',');
        if terminated {
            let flat = collapse_ws(&stmt);
            // Statement-local holds: classes matched earlier in this same
            // statement order before later matches.
            let mut matches: Vec<(usize, String)> = Vec::new();
            for class in &spec.classes {
                for pattern in &class.patterns {
                    let mut start = 0;
                    while let Some(pos) = flat[start..].find(pattern.as_str()) {
                        matches.push((start + pos, class.name.clone()));
                        start += pos + pattern.len();
                    }
                }
            }
            matches.sort();
            matches.dedup();
            if !matches.is_empty() {
                let site = format!("{file}:{stmt_line}");
                let binding = binding_of(&flat);
                let mut stmt_held: Vec<String> = Vec::new();
                for (_, class) in &matches {
                    *sites += 1;
                    for h in held.iter().map(|h| &h.class).chain(stmt_held.iter()) {
                        edges
                            .entry((h.clone(), class.clone()))
                            .or_default()
                            .push(site.clone());
                    }
                    stmt_held.push(class.clone());
                }
                // A guard bound by `let` stays held until its block ends
                // (or `drop(ident)`); an `if let`/`while let` binding or
                // a `match` scrutinee holds for the block the statement
                // opens (the scrutinee temporary lives that long).
                // Everything else was a temporary. Only guard-returning
                // patterns (ending in `()`) bind: a call-site pattern
                // with open arguments — `.stable.load(` — names a method
                // that releases its internal lock before returning, so
                // its result is not a guard.
                if let Some(binding) = binding {
                    let (pos, class) = matches.last().expect("non-empty");
                    let returns_guard = spec
                        .classes
                        .iter()
                        .filter(|c| c.name == *class)
                        .flat_map(|c| &c.patterns)
                        .any(|p| p.ends_with("()") && flat[*pos..].starts_with(p.as_str()));
                    if returns_guard {
                        match binding {
                            Binding::Let(ident) => held.push(Held {
                                class: class.clone(),
                                ident: Some(ident),
                                depth,
                                armed: true,
                            }),
                            Binding::Scoped => held.push(Held {
                                class: class.clone(),
                                ident: None,
                                // Held inside the block this statement
                                // opens: net depth after this line's own
                                // braces land.
                                depth: (depth + opens).saturating_sub(closes),
                                armed: false,
                            }),
                        }
                    }
                }
            }
            // Explicit early release.
            if let Some(idx) = flat.find("drop(") {
                let dropped: String = flat[idx + "drop(".len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                held.retain(|h| h.ident.as_deref() != Some(dropped.as_str()));
            }
            stmt.clear();
        }

        depth += opens;
        depth = depth.saturating_sub(closes);
        for h in &mut held {
            if depth >= h.depth {
                h.armed = true;
            }
        }
        held.retain(|h| !(h.armed && depth < h.depth));
    }
}

/// Walk `roots`, scan every `.rs` file, and evaluate the blessed order.
pub fn audit(spec: &LockSpec, roots: &[PathBuf]) -> Result<LockReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        collect_rs(root, &mut files)
            .map_err(|e| EdenError::Application(format!("scan {}: {e}", root.display())))?;
    }
    files.sort();

    let mut edges: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    let mut sites = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| EdenError::Application(format!("read {}: {e}", file.display())))?;
        scan_text(spec, &file.display().to_string(), &text, &mut edges, &mut sites);
    }

    let mut report = LockReport {
        files: files.len(),
        sites,
        ..LockReport::default()
    };
    report.edges = edges
        .into_iter()
        .map(|((from, to), sites)| LockEdge { from, to, sites })
        .collect();
    report.edges.sort_by(|a, b| {
        b.sites
            .len()
            .cmp(&a.sites.len())
            .then_with(|| (&a.from, &a.to).cmp(&(&b.from, &b.to)))
    });

    report.cycles = find_cycles(&report.edges);
    let blessed = spec.reachable();
    for edge in &report.edges {
        if edge.from == edge.to {
            continue; // already reported as a cycle
        }
        if !blessed.contains(&(edge.from.clone(), edge.to.clone())) {
            let contradicts = blessed.contains(&(edge.to.clone(), edge.from.clone()));
            report.deviations.push(format!(
                "{} held while acquiring {} ({} site(s), first at {}) {}",
                edge.from,
                edge.to,
                edge.sites.len(),
                edge.sites.first().map(String::as_str).unwrap_or("?"),
                if contradicts {
                    "— contradicts the blessed order"
                } else {
                    "— not blessed in docs/LOCK_ORDER.md"
                }
            ));
        }
    }
    Ok(report)
}

/// Every elementary cycle's member set (via DFS over the distinct edges);
/// self-loops count.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adjacency.entry(&e.from).or_default().insert(&e.to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    for &start in &nodes {
        // DFS from each node; a path returning to `start` is a cycle.
        // Deduplicated by the sorted member set.
        let mut stack: Vec<(Vec<&str>, &str)> = vec![(vec![start], start)];
        while let Some((path, node)) = stack.pop() {
            if let Some(nexts) = adjacency.get(node) {
                for &next in nexts {
                    if next == start {
                        let mut members: Vec<String> =
                            path.iter().map(|s| (*s).to_owned()).collect();
                        members.push(start.to_owned());
                        let mut key = members.clone();
                        key.sort();
                        key.dedup();
                        if !cycles.iter().any(|c| {
                            let mut k = c.clone();
                            k.sort();
                            k.dedup();
                            k == key
                        }) {
                            cycles.push(members);
                        }
                    } else if !path.contains(&next) {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((p, next));
                    }
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_spec() -> LockSpec {
        parse_blessed(
            "```lock-order\n\
             class alpha .alpha.lock()\n\
             class beta .beta.lock()\n\
             order alpha < beta\n\
             ```\n",
        )
        .unwrap()
    }

    fn run(spec: &LockSpec, source: &str) -> LockReport {
        let mut edges = BTreeMap::new();
        let mut sites = 0;
        scan_text(spec, "mem.rs", source, &mut edges, &mut sites);
        let mut report = LockReport {
            files: 1,
            sites,
            ..LockReport::default()
        };
        report.edges = edges
            .into_iter()
            .map(|((from, to), sites)| LockEdge { from, to, sites })
            .collect();
        report.cycles = find_cycles(&report.edges);
        let blessed = spec.reachable();
        for edge in &report.edges {
            if edge.from != edge.to
                && !blessed.contains(&(edge.from.clone(), edge.to.clone()))
            {
                report.deviations.push(format!("{} -> {}", edge.from, edge.to));
            }
        }
        report
    }

    #[test]
    fn nested_let_guards_make_an_edge() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n",
        );
        assert_eq!(report.edges.len(), 1);
        assert_eq!(report.edges[0].from, "alpha");
        assert_eq!(report.edges[0].to, "beta");
        assert!(report.clean());
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    {\n        let a = self.alpha.lock();\n    }\n    let b = self.beta.lock();\n}\n",
        );
        assert!(report.edges.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn drop_releases_the_guard() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n}\n",
        );
        assert!(report.edges.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn holds_annotation_applies_to_next_fn() {
        let report = run(
            &two_class_spec(),
            "// eden-lint: holds(alpha)\nfn callee(&self) {\n    let b = self.beta.lock();\n}\n\nfn other(&self) {\n    let b = self.beta.lock();\n}\n",
        );
        assert_eq!(report.edges.len(), 1, "{:?}", report.edges);
        assert_eq!(report.sites, 2);
    }

    #[test]
    fn inverted_order_is_a_deviation_and_a_cycle_when_both_exist() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        );
        assert_eq!(report.cycles.len(), 1);
        assert_eq!(report.deviations.len(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn multiline_chains_and_comments_are_handled() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    self.inner // comment with \"{ brace\n        .alpha\n        .lock()\n        .push(1);\n    let b = self.beta.lock();\n}\n",
        );
        // The alpha acquisition was a temporary: no edge.
        assert!(report.edges.is_empty(), "{:?}", report.edges);
        assert_eq!(report.sites, 2);
    }

    #[test]
    fn if_let_guard_is_held_for_its_block() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    if let Some(a) = self.alpha.lock() {\n        let b = self.beta.lock();\n    }\n    let b = self.beta.lock();\n}\n",
        );
        // One edge from inside the if-block only.
        assert_eq!(report.edges.len(), 1, "{:?}", report.edges);
        assert_eq!(report.edges[0].sites.len(), 1);
        assert!(report.clean());
    }

    #[test]
    fn while_let_guard_is_held_for_its_block() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    while let Some(a) = self.alpha.lock() {\n        let b = self.beta.lock();\n    }\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        );
        // The while-let edge alpha->beta plus g's inverted beta->alpha:
        // the guard tracking must see both, making a cycle.
        assert_eq!(report.edges.len(), 2, "{:?}", report.edges);
        assert_eq!(report.cycles.len(), 1);
    }

    #[test]
    fn match_scrutinee_guard_covers_every_arm() {
        let report = run(
            &two_class_spec(),
            "fn f(&self) {\n    match self.alpha.lock() {\n        Some(_) => {\n            let b = self.beta.lock();\n        }\n        None => {}\n    }\n    let b = self.beta.lock();\n}\n",
        );
        assert_eq!(report.edges.len(), 1, "{:?}", report.edges);
        assert_eq!(report.edges[0].from, "alpha");
        assert_eq!(report.edges[0].sites.len(), 1);
    }

    #[test]
    fn else_if_let_guard_scopes_to_its_own_block() {
        let report = run(
            &two_class_spec(),
            "fn f(&self, c: bool) {\n    if c {\n        let x = 1;\n    } else if let Some(a) = self.alpha.lock() {\n        let b = self.beta.lock();\n    }\n    let b = self.beta.lock();\n}\n",
        );
        assert_eq!(report.edges.len(), 1, "{:?}", report.edges);
        assert_eq!(report.edges[0].sites.len(), 1);
    }

    #[test]
    fn blessed_block_rejects_unknown_classes_and_noise() {
        assert!(parse_blessed("```lock-order\norder a < b\n```\n").is_err());
        assert!(parse_blessed("```lock-order\nwhatever\n```\n").is_err());
        assert!(parse_blessed("no block at all\n").is_err());
    }

    #[test]
    fn transitive_blessing_covers_indirect_edges() {
        let spec = parse_blessed(
            "```lock-order\n\
             class a .a.lock()\n\
             class b .b.lock()\n\
             class c .c.lock()\n\
             order a < b\n\
             order b < c\n\
             ```\n",
        )
        .unwrap();
        assert!(spec.reachable().contains(&("a".into(), "c".into())));
    }
}
