//! Shared source-scanning machinery for the syntactic passes.
//!
//! Every eden-lint pass works the same way: read `.rs` files, strip
//! comments and string literals so pattern matching only sees code, skip
//! `#[cfg(test)]` items, and honour `// eden-lint: <kind>(<body>)`
//! annotations. This module owns those mechanics so the passes
//! (`lockorder`, `atomics`, `blocking`, `protocol`) stay about their
//! rules, not about tokenizing.

use std::path::{Path, PathBuf};

/// One `// eden-lint: kind(body)` marker found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The marker kind: `holds`, `ordering`, `nonblocking`, `transition`.
    pub kind: String,
    /// The text between the parentheses (must itself be paren-free).
    pub body: String,
    /// 1-based source line the marker sits on.
    pub line: usize,
}

/// One scanned source line.
#[derive(Debug)]
pub struct ScanLine {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments stripped and literal contents blanked.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole file, pre-processed for the passes.
#[derive(Debug)]
pub struct FileScan {
    /// The file's path as given to [`scan_file`].
    pub path: String,
    /// Every line, stripped and test-classified.
    pub lines: Vec<ScanLine>,
    /// Every `eden-lint:` annotation, in source order.
    pub annotations: Vec<Annotation>,
}

impl FileScan {
    /// The stripped lines joined with `\n` — byte offsets in the result
    /// map back to lines via [`FileScan::line_of`]. Test lines are
    /// blanked so offset math stays intact while their content can never
    /// match a pattern.
    pub fn joined_code(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            if line.in_test {
                out.push_str(&" ".repeat(line.code.len()));
            } else {
                out.push_str(&line.code);
            }
            out.push('\n');
        }
        out
    }

    /// Map a byte offset in [`FileScan::joined_code`] to its 1-based line.
    pub fn line_of(&self, joined: &str, offset: usize) -> usize {
        joined[..offset].matches('\n').count() + 1
    }

    /// Annotations of one kind, in source order.
    pub fn annotations_of(&self, kind: &str) -> Vec<&Annotation> {
        self.annotations.iter().filter(|a| a.kind == kind).collect()
    }
}

/// Strip line comments and neutralise string/char literal *contents* so
/// brace counting and pattern matching only see code. Literal state is
/// per-line (multi-line strings are out of scope — the passes' patterns
/// are chosen to stay far from them).
pub fn strip_noise(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push(' ');
            }
            // A lifetime (`'a`) is not a char literal: only enter char
            // state when a closing quote is plausibly near.
            '\'' if line.contains("')") || line.matches('\'').count() >= 2 => {
                in_char = true;
                out.push(' ');
            }
            _ => out.push(c),
        }
    }
    out
}

/// Collapse runs of whitespace and re-join method chains (`foo .bar` →
/// `foo.bar`) so multi-line statements match single-line patterns.
pub fn collapse_ws(s: &str) -> String {
    s.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .replace(" .", ".")
}

/// Extract every `eden-lint: kind(body)` marker from a raw source line.
fn parse_annotations(raw: &str, lineno: usize, out: &mut Vec<Annotation>) {
    let mut rest = raw;
    while let Some(idx) = rest.find("eden-lint:") {
        rest = &rest[idx + "eden-lint:".len()..];
        let trimmed = rest.trim_start();
        let kind: String = trimmed
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
            .collect();
        let after = &trimmed[kind.len()..];
        if kind.is_empty() || !after.starts_with('(') {
            continue;
        }
        let Some(end) = after.find(')') else { continue };
        out.push(Annotation {
            kind,
            body: after[1..end].trim().to_owned(),
            line: lineno,
        });
        rest = &after[end..];
    }
}

/// Read and pre-process one file: strip noise per line, find annotations,
/// and mark every line belonging to a `#[cfg(test)]` item.
pub fn scan_file(path: &Path) -> std::io::Result<FileScan> {
    let text = std::fs::read_to_string(path)?;
    Ok(scan_text(&path.display().to_string(), &text))
}

/// [`scan_file`] on in-memory text (for unit tests and fixtures).
pub fn scan_text(path: &str, text: &str) -> FileScan {
    let mut lines = Vec::new();
    let mut annotations = Vec::new();
    let mut depth: usize = 0;
    // `#[cfg(test)]` seen; waiting to learn what item it gates.
    let mut pending_test = false;
    // Depth the current test item opened at; in-test until we return
    // below it. (Nested cfg(test) inside a test region changes nothing.)
    let mut test_exit: Option<usize> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        parse_annotations(raw, lineno, &mut annotations);
        let code = strip_noise(raw);
        let in_test_before = test_exit.is_some();

        let trimmed = code.trim();
        if !in_test_before && trimmed.contains("#[cfg(test)]") {
            pending_test = true;
        }
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        let mut in_test = in_test_before || pending_test;
        if pending_test && !trimmed.is_empty() && !trimmed.contains("#[cfg(test)]") {
            if opens > 0 {
                // The gated item's body opens here; skip until it closes.
                test_exit = Some(depth);
                pending_test = false;
            } else if trimmed.ends_with(';') {
                // A braceless gated item (`#[cfg(test)] use ...;`).
                pending_test = false;
            }
        }
        depth += opens;
        depth = depth.saturating_sub(closes);
        if let Some(exit) = test_exit {
            if depth <= exit {
                test_exit = None;
                // The closing line itself still belongs to the item.
                in_test = true;
            }
        }
        lines.push(ScanLine {
            number: lineno,
            code,
            in_test,
        });
    }
    FileScan {
        path: path.to_owned(),
        lines,
        annotations,
    }
}

/// Recursively collect `.rs` files under `root` (or `root` itself).
pub fn collect_rs(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    for entry in std::fs::read_dir(root)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk backward from `open` (the byte index of a `(`) over the method
/// chain it terminates and return `(method, receiver)` — the identifier
/// directly before the paren, and the nearest named receiver behind it:
/// chained call groups (`()`), index groups (`[]`), and numeric tuple
/// fields (`.0`) are skipped, so `core.park_bit().store(` names
/// `park_bit` and `self.cells[i].store(` names `cells`. A dot-less call
/// (`fence(`) returns the function name as both.
pub fn call_chain(code: &[u8], open: usize) -> Option<(String, String)> {
    let ident_end = |mut i: usize| -> usize {
        while i > 0 && (code[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        i
    };
    let read_ident = |end: usize| -> Option<(String, usize)> {
        let mut start = end;
        while start > 0 {
            let c = code[start - 1] as char;
            if c.is_alphanumeric() || c == '_' {
                start -= 1;
            } else {
                break;
            }
        }
        (start < end).then(|| (String::from_utf8_lossy(&code[start..end]).into_owned(), start))
    };
    let skip_group = |mut i: usize, open_ch: u8, close_ch: u8| -> Option<usize> {
        // `i` points just past a `close_ch`; return index of its opener.
        let mut depth = 0usize;
        while i > 0 {
            i -= 1;
            if code[i] == close_ch {
                depth += 1;
            } else if code[i] == open_ch {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    };

    let end = ident_end(open);
    let (method, mut pos) = read_ident(end)?;
    // Not a method chain? Then the identifier is a plain function call.
    let before = ident_end(pos);
    if before == 0 || code[before - 1] != b'.' {
        return Some((method.clone(), method));
    }
    pos = before - 1; // at the '.'
    loop {
        let end = ident_end(pos);
        if end == 0 {
            return None;
        }
        match code[end - 1] {
            b')' => {
                pos = skip_group(end, b'(', b')')?;
                // The group was a call: skip its callee name too, then
                // continue from whatever precedes it.
                let cal_end = ident_end(pos);
                let (_, start) = read_ident(cal_end)?;
                let prev = ident_end(start);
                if prev == 0 || code[prev - 1] != b'.' {
                    // `park_bit()` with no receiver dot: the call itself
                    // is the best name we have.
                    let (name, _) = read_ident(cal_end)?;
                    return Some((method, name));
                }
                // `a.b().c...`: the called name is the receiver name.
                let (name, _) = read_ident(cal_end)?;
                return Some((method, name));
            }
            b']' => {
                pos = skip_group(end, b'[', b']')?;
                continue;
            }
            _ => {
                let (name, start) = read_ident(end)?;
                if name.chars().all(|c| c.is_ascii_digit()) {
                    // A tuple index (`.0`): keep walking left.
                    let prev = ident_end(start);
                    if prev > 0 && code[prev - 1] == b'.' {
                        pos = prev - 1;
                        continue;
                    }
                    return Some((method, name));
                }
                // `self.park_state.store(` → receiver chain may continue
                // left (`self.`), but the *last* field is the name.
                return Some((method, name));
            }
        }
    }
}

/// The byte index of the `)` matching the `(` at `open`, if balanced.
pub fn matching_paren(code: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in code.iter().enumerate().skip(open) {
        if b == b'(' {
            depth += 1;
        } else if b == b')' {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_masked() {
        let scan = scan_text(
            "mem.rs",
            "fn live() { a(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn gone() { b(); }\n\
             }\n\
             fn live_again() { c(); }\n",
        );
        let flags: Vec<bool> = scan.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
        let joined = scan.joined_code();
        assert!(joined.contains("live_again"));
        assert!(!joined.contains("gone"));
    }

    #[test]
    fn braceless_cfg_test_item_masks_one_statement() {
        let scan = scan_text(
            "mem.rs",
            "#[cfg(test)]\nuse crate::test_helpers;\nfn live() {}\n",
        );
        let flags: Vec<bool> = scan.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn annotations_parse_kind_and_body() {
        let scan = scan_text(
            "mem.rs",
            "// eden-lint: nonblocking(dedicated thread)\nx.wait();\n// eden-lint: transition(PARKED -> QUEUED)\n",
        );
        assert_eq!(scan.annotations.len(), 2);
        assert_eq!(scan.annotations[0].kind, "nonblocking");
        assert_eq!(scan.annotations[0].body, "dedicated thread");
        assert_eq!(scan.annotations[0].line, 1);
        assert_eq!(scan.annotations[1].body, "PARKED -> QUEUED");
    }

    #[test]
    fn call_chain_walks_receivers() {
        let code = b"self.park_state.load(Ordering::Acquire)";
        let open = code.iter().position(|&b| b == b'(').unwrap();
        assert_eq!(
            call_chain(code, open),
            Some(("load".into(), "park_state".into()))
        );

        let code = b"core.park_bit().store(park::QUEUED, Ordering::Release)";
        let open = 21; // the '(' after `.store`
        assert_eq!(code[open], b'(');
        assert_eq!(
            call_chain(code, open),
            Some(("store".into(), "park_bit".into()))
        );

        let code = b"self.cells[b as usize & self.mask].store(p, Ordering::Relaxed)";
        let open = code.len() - 22;
        assert_eq!(code[open], b'(');
        assert_eq!(
            call_chain(code, open),
            Some(("store".into(), "cells".into()))
        );

        let code = b"self.wakes_pending.0.fetch_add(1, Ordering::SeqCst)";
        let open = code.iter().position(|&b| b == b'(').unwrap();
        assert_eq!(
            call_chain(code, open),
            Some(("fetch_add".into(), "wakes_pending".into()))
        );

        let code = b"fence(Ordering::SeqCst)";
        let open = 5;
        assert_eq!(call_chain(code, open), Some(("fence".into(), "fence".into())));
    }

    #[test]
    fn strings_and_comments_are_noise() {
        let scan = scan_text("mem.rs", "let x = \"Ordering::SeqCst\"; // Ordering::Relaxed\n");
        assert!(!scan.joined_code().contains("Ordering"));
    }
}
