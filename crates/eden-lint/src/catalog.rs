//! The in-repo wiring catalog: every pipeline *shape* the repository
//! actually builds, reconstructed as a kernel-free [`PipelineSpec`] (or a
//! recovery chain) and rendered to its [`WiringGraph`].
//!
//! `PipelineSpec::build` already refuses non-conforming specs, so this
//! pass cannot find a violation that a test run would not — its value is
//! that it proves conformance *statically*, without spawning a kernel,
//! and that it keeps doing so for shapes only exercised by examples,
//! benches, and the shell. A violation here means a wiring template the
//! repo ships is unsound under its own discipline.

use eden_core::{Result, Value};
use eden_transput::read_only::FanInMode;
use eden_transput::recovery::{recovery_graph, RecoveryDiscipline};
use eden_transput::source::VecSource;
use eden_transput::transform::{Emitter, Identity, Transform};
use eden_transput::{ChannelPolicy, Discipline, PipelineSpec, Violation, WiringGraph};

/// A transform with a secondary `Report` channel — the shape of
/// `SpellCheck` in the report-streams example (Figures 3 and 4), without
/// depending on the filter library.
#[derive(Debug)]
struct Reporter;

impl Transform for Reporter {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        out.emit(item);
    }
    fn name(&self) -> &'static str {
        "reporter"
    }
    fn secondary_channels(&self) -> Vec<&'static str> {
        vec!["Report"]
    }
}

fn items() -> Vec<Value> {
    (0..4).map(Value::Int).collect()
}

fn two_sources() -> Vec<Box<dyn eden_transput::source::PullSource>> {
    vec![
        Box::new(VecSource::new(items())),
        Box::new(VecSource::new(items())),
    ]
}

/// Every wiring shape the repo builds, as `(name, graph)` pairs. Names are
/// stable identifiers used in reports and tests.
pub fn catalog() -> Result<Vec<(String, WiringGraph)>> {
    let mut entries: Vec<(String, PipelineSpec)> = Vec::new();

    // The plain chains every test, bench, and example builds.
    for (label, discipline) in [
        ("read-only/chain", Discipline::ReadOnly { read_ahead: 0 }),
        ("read-only/read-ahead", Discipline::ReadOnly { read_ahead: 8 }),
        ("write-only/chain", Discipline::WriteOnly { push_ahead: 0 }),
        ("write-only/push-ahead", Discipline::WriteOnly { push_ahead: 4 }),
        (
            "conventional/chain",
            Discipline::Conventional { buffer_capacity: 4 },
        ),
    ] {
        entries.push((
            label.to_owned(),
            PipelineSpec::new(discipline)
                .source_vec(items())
                .stage(Box::new(Identity))
                .stage(Box::new(Identity)),
        ));
    }

    // §5 connection protocol: the same chain under capability channels.
    entries.push((
        "read-only/capability".to_owned(),
        PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec(items())
            .stage(Box::new(Identity))
            .policy(ChannelPolicy::Capability),
    ));

    // Figure 4: a report window tapping a secondary channel.
    entries.push((
        "read-only/tapped-report".to_owned(),
        PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec(items())
            .stage(Box::new(Reporter))
            .tap(0, "Report")
            .policy(ChannelPolicy::Capability),
    ));
    entries.push((
        "conventional/tapped-report".to_owned(),
        PipelineSpec::new(Discipline::Conventional { buffer_capacity: 4 })
            .source_vec(items())
            .stage(Box::new(Reporter))
            .tap(0, "Report"),
    ));

    // Merged sources in all three disciplines — including the write-only
    // fan-in workaround of §5 (pull-wired merge behind the pump).
    for (label, discipline) in [
        ("read-only/merged", Discipline::ReadOnly { read_ahead: 0 }),
        ("write-only/merged", Discipline::WriteOnly { push_ahead: 0 }),
        (
            "conventional/merged",
            Discipline::Conventional { buffer_capacity: 4 },
        ),
    ] {
        entries.push((
            label.to_owned(),
            PipelineSpec::new(discipline)
                .source_merge(two_sources(), FanInMode::Concatenate)
                .stage(Box::new(Identity)),
        ));
    }

    // The adaptive-batching and distribution dials (benches + E-series).
    entries.push((
        "read-only/adaptive-distributed".to_owned(),
        PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec(items())
            .stage(Box::new(Identity))
            .adaptive_batch(48)
            .over_nodes(3),
    ));

    // The shell's default pipeline shape (`eden-shell::exec`).
    entries.push((
        "shell/default".to_owned(),
        PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec(items())
            .stage(Box::new(Identity))
            .batch(4),
    ));

    let mut graphs: Vec<(String, WiringGraph)> = entries
        .into_iter()
        .map(|(name, spec)| spec.graph().map(|g| (name, g)))
        .collect::<Result<_>>()?;

    // The recovery plane's chains (crates/eden-transput/src/recovery.rs).
    for (label, discipline) in [
        ("recovery/read-only", RecoveryDiscipline::ReadOnly),
        ("recovery/write-only", RecoveryDiscipline::WriteOnly),
        ("recovery/conventional", RecoveryDiscipline::Conventional),
    ] {
        graphs.push((
            label.to_owned(),
            recovery_graph(discipline, &["upcase", "grep"]),
        ));
    }
    Ok(graphs)
}

/// Check every catalog entry; returns only the entries with violations.
pub fn check_catalog() -> Result<Vec<(String, Vec<Violation>)>> {
    Ok(catalog()?
        .into_iter()
        .map(|(name, graph)| (name, graph.check()))
        .filter(|(_, v)| !v.is_empty())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_disciplines_and_recovery() {
        let graphs = catalog().unwrap();
        assert!(graphs.len() >= 12);
        for prefix in ["read-only/", "write-only/", "conventional/", "recovery/"] {
            assert!(
                graphs.iter().any(|(n, _)| n.starts_with(prefix)),
                "no {prefix} entry"
            );
        }
    }

    #[test]
    fn every_shipped_shape_conforms() {
        assert_eq!(check_catalog().unwrap(), Vec::new());
    }
}
