//! `eden-lint` — static analysis for the Eden reproduction.
//!
//! ```text
//! cargo run -p eden-lint -- --all
//!     Run both passes over the real tree; exit 1 on any finding.
//! cargo run -p eden-lint -- --discipline [--fixture PATH]
//!     Discipline conformance: the in-repo wiring catalog, or the given
//!     fixture file / directory of `.graph` files.
//! cargo run -p eden-lint -- --lock-order [--root DIR]... [--blessed FILE]
//!     Lock-order audit over the given roots (default: eden-kernel and
//!     eden-transput sources) against the blessed partial order.
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use eden_lint::{catalog, fixture, lockorder};

fn workspace_root() -> PathBuf {
    // crates/eden-lint -> crates -> workspace root. Compile-time constant,
    // so the binary works whatever the invocation directory.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    root.canonicalize().unwrap_or(root)
}

struct Args {
    discipline: bool,
    lock_order: bool,
    fixtures: Vec<PathBuf>,
    roots: Vec<PathBuf>,
    blessed: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        discipline: false,
        lock_order: false,
        fixtures: Vec::new(),
        roots: Vec::new(),
        blessed: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                args.discipline = true;
                args.lock_order = true;
            }
            "--discipline" => args.discipline = true,
            "--lock-order" => args.lock_order = true,
            "--fixture" => args
                .fixtures
                .push(PathBuf::from(it.next().ok_or("--fixture needs a path")?)),
            "--root" => args
                .roots
                .push(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--blessed" => {
                args.blessed = Some(PathBuf::from(it.next().ok_or("--blessed needs a path")?))
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.discipline && !args.lock_order {
        return Err("pass --discipline, --lock-order, or --all".into());
    }
    Ok(args)
}

fn run_discipline(args: &Args) -> Result<usize, String> {
    let mut findings = 0usize;
    if args.fixtures.is_empty() {
        let checked = catalog::catalog().map_err(|e| e.to_string())?;
        for (name, graph) in checked {
            let violations = graph.check();
            if violations.is_empty() {
                if !args.quiet {
                    println!("discipline ok: {name}");
                }
            } else {
                findings += violations.len();
                for v in violations {
                    println!("discipline FAIL: {name}: {v}");
                }
            }
        }
    } else {
        for path in &args.fixtures {
            let loaded = if path.is_dir() {
                fixture::load_dir(path).map_err(|e| e.to_string())?
            } else {
                vec![fixture::load(path).map_err(|e| e.to_string())?]
            };
            for f in loaded {
                let violations = f.check();
                let expected = f.verdict_matches(&violations);
                if violations.is_empty() {
                    if !args.quiet {
                        println!("fixture clean: {}", f.name);
                    }
                } else {
                    findings += violations.len();
                    for v in &violations {
                        println!("fixture {}: {v}", f.name);
                    }
                }
                if !expected {
                    findings += 1;
                    println!(
                        "fixture {}: raised rules do not match its `# expect:` headers",
                        f.name
                    );
                }
            }
        }
    }
    Ok(findings)
}

fn run_lock_order(args: &Args) -> Result<usize, String> {
    let root = workspace_root();
    let blessed_path = args
        .blessed
        .clone()
        .unwrap_or_else(|| root.join("docs").join("LOCK_ORDER.md"));
    let markdown = std::fs::read_to_string(&blessed_path)
        .map_err(|e| format!("read {}: {e}", blessed_path.display()))?;
    let spec = lockorder::parse_blessed(&markdown).map_err(|e| e.to_string())?;
    let roots: Vec<PathBuf> = if args.roots.is_empty() {
        vec![
            root.join("crates").join("eden-kernel").join("src"),
            root.join("crates").join("eden-transput").join("src"),
        ]
    } else {
        args.roots.clone()
    };
    let report = lockorder::audit(&spec, &roots).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(report.cycles.len() + report.deviations.len())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("eden-lint: {msg}");
            eprintln!(
                "usage: eden-lint [--all] [--discipline [--fixture PATH]...] \
                 [--lock-order [--root DIR]... [--blessed FILE]] [--quiet]"
            );
            return ExitCode::from(2);
        }
    };
    let mut findings = 0usize;
    for (enabled, pass) in [
        (args.discipline, run_discipline as fn(&Args) -> Result<usize, String>),
        (args.lock_order, run_lock_order as fn(&Args) -> Result<usize, String>),
    ] {
        if !enabled {
            continue;
        }
        match pass(&args) {
            Ok(n) => findings += n,
            Err(msg) => {
                eprintln!("eden-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if findings == 0 {
        println!("eden-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("eden-lint: {findings} finding(s)");
        ExitCode::FAILURE
    }
}
