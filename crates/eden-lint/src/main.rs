//! `eden-lint` — static analysis for the Eden reproduction.
//!
//! ```text
//! cargo run -p eden-lint -- --all [--json PATH]
//!     Run every pass over the real tree; exit 1 on any finding.
//! cargo run -p eden-lint -- --discipline [--fixture PATH]
//!     Discipline conformance: the in-repo wiring catalog, or the given
//!     fixture file / directory of `.graph` files.
//! cargo run -p eden-lint -- --lock-order [--root DIR]... [--blessed FILE]
//!     Lock-order audit over the given roots (default: eden-kernel and
//!     eden-transput sources) against the blessed partial order.
//! cargo run -p eden-lint -- --atomics [--root DIR]... [--blessed FILE]
//!     Atomics-ordering audit: every `Ordering::` site in the roots
//!     (default: every crate's src/) must match `docs/ATOMICS.md`.
//! cargo run -p eden-lint -- --blocking [--root DIR]...
//!     Blocking-site audit: every rendezvous call in the roots (default:
//!     eden-kernel and eden-transput sources) must be `blocking(..)`-
//!     wrapped or `nonblocking(..)`-annotated.
//! cargo run -p eden-lint -- --protocol [--root PATH]...
//!     Mailbox protocol conformance: parking-bit transitions in the
//!     roots (default: mailbox.rs and sched.rs) round-trip against
//!     `eden_kernel::mailbox::spec::TRANSITIONS`.
//! ```
//!
//! `--blessed` names the catalog for whichever single pass is enabled;
//! with `--all` every pass uses its default. `--json PATH` additionally
//! writes a machine-readable report for CI artifacts.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use eden_lint::report::PassReport;
use eden_lint::{atomics, blocking, catalog, fixture, lockorder, protocol, report};

fn workspace_root() -> PathBuf {
    // crates/eden-lint -> crates -> workspace root. Compile-time constant,
    // so the binary works whatever the invocation directory.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    root.canonicalize().unwrap_or(root)
}

struct Args {
    discipline: bool,
    lock_order: bool,
    atomics: bool,
    blocking: bool,
    protocol: bool,
    fixtures: Vec<PathBuf>,
    roots: Vec<PathBuf>,
    blessed: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
}

impl Args {
    fn any_pass(&self) -> bool {
        self.discipline || self.lock_order || self.atomics || self.blocking || self.protocol
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        discipline: false,
        lock_order: false,
        atomics: false,
        blocking: false,
        protocol: false,
        fixtures: Vec::new(),
        roots: Vec::new(),
        blessed: None,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                args.discipline = true;
                args.lock_order = true;
                args.atomics = true;
                args.blocking = true;
                args.protocol = true;
            }
            "--discipline" => args.discipline = true,
            "--lock-order" => args.lock_order = true,
            "--atomics" => args.atomics = true,
            "--blocking" => args.blocking = true,
            "--protocol" => args.protocol = true,
            "--fixture" => args
                .fixtures
                .push(PathBuf::from(it.next().ok_or("--fixture needs a path")?)),
            "--root" => args
                .roots
                .push(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--blessed" => {
                args.blessed = Some(PathBuf::from(it.next().ok_or("--blessed needs a path")?))
            }
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !args.any_pass() {
        return Err(
            "pass --discipline, --lock-order, --atomics, --blocking, --protocol, or --all".into(),
        );
    }
    Ok(args)
}

/// The default audit roots: eden-kernel and eden-transput sources.
fn runtime_roots(args: &Args) -> Vec<PathBuf> {
    if args.roots.is_empty() {
        let root = workspace_root();
        vec![
            root.join("crates").join("eden-kernel").join("src"),
            root.join("crates").join("eden-transput").join("src"),
        ]
    } else {
        args.roots.clone()
    }
}

/// Every crate's `src/` — the atomics audit covers the whole workspace.
fn workspace_src_roots(args: &Args) -> Result<Vec<PathBuf>, String> {
    if !args.roots.is_empty() {
        return Ok(args.roots.clone());
    }
    let crates = workspace_root().join("crates");
    let mut roots = Vec::new();
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let dir = entry.map_err(|e| e.to_string())?.path();
        // The linter's own source spells the annotation grammar inside doc
        // comments and test strings (and holds no atomics); scanning it
        // would only audit its own documentation.
        if dir.file_name().is_some_and(|n| n == "eden-lint") {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    roots.sort();
    Ok(roots)
}

fn run_discipline(args: &Args) -> Result<PassReport, String> {
    let mut findings = Vec::new();
    let mut graphs = 0usize;
    if args.fixtures.is_empty() {
        let checked = catalog::catalog().map_err(|e| e.to_string())?;
        for (name, graph) in checked {
            graphs += 1;
            let violations = graph.check();
            if violations.is_empty() {
                if !args.quiet {
                    println!("discipline ok: {name}");
                }
            } else {
                for v in violations {
                    let line = format!("{name}: {v}");
                    println!("discipline FAIL: {line}");
                    findings.push(line);
                }
            }
        }
    } else {
        for path in &args.fixtures {
            let loaded = if path.is_dir() {
                fixture::load_dir(path).map_err(|e| e.to_string())?
            } else {
                vec![fixture::load(path).map_err(|e| e.to_string())?]
            };
            for f in loaded {
                graphs += 1;
                let violations = f.check();
                let expected = f.verdict_matches(&violations);
                if violations.is_empty() {
                    if !args.quiet {
                        println!("fixture clean: {}", f.name);
                    }
                } else {
                    for v in &violations {
                        let line = format!("{}: {v}", f.name);
                        println!("fixture {line}");
                        findings.push(line);
                    }
                }
                if !expected {
                    let line = format!(
                        "{}: raised rules do not match its `# expect:` headers",
                        f.name
                    );
                    println!("fixture {line}");
                    findings.push(line);
                }
            }
        }
    }
    Ok(PassReport {
        name: "discipline",
        clean: findings.is_empty(),
        counts: vec![("graphs", graphs)],
        findings,
    })
}

fn run_lock_order(args: &Args) -> Result<PassReport, String> {
    let blessed_path = args
        .blessed
        .clone()
        .unwrap_or_else(|| workspace_root().join("docs").join("LOCK_ORDER.md"));
    let markdown = std::fs::read_to_string(&blessed_path)
        .map_err(|e| format!("read {}: {e}", blessed_path.display()))?;
    let spec = lockorder::parse_blessed(&markdown).map_err(|e| e.to_string())?;
    let report = lockorder::audit(&spec, &runtime_roots(args)).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    let mut findings: Vec<String> = report
        .cycles
        .iter()
        .map(|c| format!("cycle: {}", c.join(" -> ")))
        .collect();
    findings.extend(report.deviations.iter().cloned());
    Ok(PassReport {
        name: "lock-order",
        clean: findings.is_empty(),
        counts: vec![("files", report.files), ("acquisitions", report.sites)],
        findings,
    })
}

fn run_atomics(args: &Args) -> Result<PassReport, String> {
    let blessed_path = args
        .blessed
        .clone()
        .unwrap_or_else(|| workspace_root().join("docs").join("ATOMICS.md"));
    let markdown = std::fs::read_to_string(&blessed_path)
        .map_err(|e| format!("read {}: {e}", blessed_path.display()))?;
    let cat = atomics::parse_blessed(&markdown).map_err(|e| e.to_string())?;
    let report = atomics::audit(&cat, &workspace_src_roots(args)?).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(PassReport {
        name: "atomics",
        clean: report.clean(),
        counts: vec![
            ("files", report.files),
            ("sites", report.sites),
            ("tokens", report.tokens),
        ],
        findings: report.findings,
    })
}

fn run_blocking(args: &Args) -> Result<PassReport, String> {
    let report = blocking::audit(&runtime_roots(args)).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(PassReport {
        name: "blocking",
        clean: report.clean(),
        counts: vec![
            ("files", report.files),
            ("rendezvous_sites", report.sites),
            ("wrapped", report.wrapped),
            ("annotated", report.excused),
            ("governed_locks", report.governed_locks),
        ],
        findings: report.findings,
    })
}

fn run_protocol(args: &Args) -> Result<PassReport, String> {
    let roots = if args.roots.is_empty() {
        let src = workspace_root().join("crates").join("eden-kernel").join("src");
        vec![src.join("mailbox.rs"), src.join("sched.rs")]
    } else {
        args.roots.clone()
    };
    let report = protocol::audit(&roots).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(PassReport {
        name: "protocol",
        clean: report.clean(),
        counts: vec![
            ("files", report.files),
            ("transition_sites", report.sites),
            ("spec_edges_witnessed", report.witnessed),
        ],
        findings: report.findings,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("eden-lint: {msg}");
            eprintln!(
                "usage: eden-lint [--all] [--discipline [--fixture PATH]...] \
                 [--lock-order] [--atomics] [--blocking] [--protocol] \
                 [--root DIR]... [--blessed FILE] [--json PATH] [--quiet]"
            );
            return ExitCode::from(2);
        }
    };
    type Pass = fn(&Args) -> Result<PassReport, String>;
    let passes: [(bool, Pass); 5] = [
        (args.discipline, run_discipline),
        (args.lock_order, run_lock_order),
        (args.atomics, run_atomics),
        (args.blocking, run_blocking),
        (args.protocol, run_protocol),
    ];
    let mut reports = Vec::new();
    for (enabled, pass) in passes {
        if !enabled {
            continue;
        }
        match pass(&args) {
            Ok(report) => reports.push(report),
            Err(msg) => {
                eprintln!("eden-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report::render(&reports)) {
            eprintln!("eden-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let findings: usize = reports.iter().map(|r| r.findings.len()).sum();
    if findings == 0 {
        println!("eden-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("eden-lint: {findings} finding(s)");
        ExitCode::FAILURE
    }
}
