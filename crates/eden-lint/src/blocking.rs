//! Blocking-site audit.
//!
//! A pool worker that parks inside a rendezvous call — a condvar wait, a
//! channel `recv`, a `join`, a sleep, an fsync — silently shrinks the
//! worker set and starves every runnable stream behind it. The scheduler
//! exposes `eden_kernel::blocking(..)` exactly so those sites can
//! compensate the pool; this pass makes the wrap non-optional.
//!
//! Every rendezvous call in the scanned tree must either
//!
//! * execute inside a `blocking(..)` closure (the call site sits within
//!   the parenthesized region of a `blocking(` call), or
//! * carry a `// eden-lint: nonblocking(reason)` annotation within three
//!   lines above it, stating why the site can never run on a pool worker
//!   (dedicated thread, teardown path, cold start, threads-mode only).
//!
//! Plain `Mutex::lock` acquisitions are *not* findings: the lock-order
//! plane already governs them (bounded critical sections under a proven
//! acyclic order), so this pass only counts them for the report.

use std::fmt::Write as _;
use std::path::PathBuf;

use eden_core::{EdenError, Result};

use crate::scan::{self, FileScan};

/// Substrings that mark a rendezvous call — the callee can sleep until
/// another thread acts.
const RENDEZVOUS: [(&str, &str); 8] = [
    (".wait(&mut", "condvar wait"),
    (".wait_for(&mut", "condvar wait_for"),
    (".wait_while(&mut", "condvar wait_while"),
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv_timeout"),
    (".join()", "thread join"),
    ("thread::sleep", "sleep"),
    (".sync(", "fsync"),
];

/// One rendezvous call site and how it is excused.
#[derive(Debug)]
pub struct BlockingSite {
    /// The scanned file.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// What kind of rendezvous (`condvar wait`, `channel recv`, ...).
    pub kind: &'static str,
    /// Inside a `blocking(..)` region.
    pub wrapped: bool,
    /// `nonblocking(reason)` annotation bound to this site, if any.
    pub excuse: Option<String>,
}

/// The audit's outcome.
#[derive(Debug, Default)]
pub struct BlockingReport {
    /// Files scanned.
    pub files: usize,
    /// Rendezvous sites found.
    pub sites: usize,
    /// Sites wrapped in `blocking(..)`.
    pub wrapped: usize,
    /// Sites excused by a `nonblocking(..)` annotation.
    pub excused: usize,
    /// `Mutex/RwLock` acquisitions counted informationally (the
    /// lock-order plane governs these, not this pass).
    pub governed_locks: usize,
    /// Audit failures, human-readable.
    pub findings: Vec<String>,
}

impl BlockingReport {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "blocking audit: {} file(s), {} rendezvous site(s) ({} wrapped, {} annotated), {} lock-order-governed lock site(s)",
            self.files, self.sites, self.wrapped, self.excused, self.governed_locks
        );
        for finding in &self.findings {
            let _ = writeln!(out, "FINDING: {finding}");
        }
        if self.clean() {
            let _ = writeln!(
                out,
                "ok: every rendezvous call is blocking(..)-wrapped or nonblocking-annotated"
            );
        }
        out
    }
}

/// Byte ranges of `blocking(..)` regions in the joined code.
fn blocking_regions(joined: &str) -> Vec<(usize, usize)> {
    let bytes = joined.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = joined[search..].find("blocking(") {
        let at = search + rel;
        search = at + "blocking(".len();
        // Word boundary: `nonblocking(` contains `blocking(`.
        if at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let open = at + "blocking".len();
        if let Some(close) = scan::matching_paren(bytes, open) {
            regions.push((open, close));
        }
    }
    regions
}

/// Extract every rendezvous site from one pre-scanned file.
pub fn extract_sites(scan: &FileScan) -> (Vec<BlockingSite>, usize) {
    let joined = scan.joined_code();
    let regions = blocking_regions(&joined);
    let mut sites = Vec::new();
    let mut governed = 0usize;

    let mut search = 0usize;
    while let Some(rel) = joined[search..].find(".lock()") {
        search += rel + ".lock()".len();
        governed += 1;
    }

    for (pat, kind) in RENDEZVOUS {
        let mut search = 0usize;
        while let Some(rel) = joined[search..].find(pat) {
            let at = search + rel;
            search = at + pat.len();
            let line = scan.line_of(&joined, at);
            let wrapped = regions.iter().any(|(open, close)| at > *open && at < *close);
            let excuse = scan
                .annotations_of("nonblocking")
                .into_iter()
                .filter(|a| a.line <= line && line <= a.line + 3)
                .map(|a| a.body.clone())
                .next_back();
            sites.push(BlockingSite {
                file: scan.path.clone(),
                line,
                kind,
                wrapped,
                excuse,
            });
        }
    }
    sites.sort_by_key(|s| s.line);
    (sites, governed)
}

/// Walk `roots` and audit every rendezvous site.
pub fn audit(roots: &[PathBuf]) -> Result<BlockingReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        scan::collect_rs(root, &mut files)
            .map_err(|e| EdenError::Application(format!("scan {}: {e}", root.display())))?;
    }
    files.sort();

    let mut report = BlockingReport {
        files: files.len(),
        ..BlockingReport::default()
    };
    for file in &files {
        let scan = scan::scan_file(file)
            .map_err(|e| EdenError::Application(format!("read {}: {e}", file.display())))?;
        let (sites, governed) = extract_sites(&scan);
        report.governed_locks += governed;
        for site in sites {
            report.sites += 1;
            if site.wrapped {
                report.wrapped += 1;
            } else if site.excuse.is_some() {
                report.excused += 1;
            } else {
                report.findings.push(format!(
                    "{}:{}: {} neither wrapped in blocking(..) nor annotated nonblocking(reason)",
                    site.file, site.line, site.kind
                ));
            }
        }
    }
    report.findings.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_text;

    #[test]
    fn unwrapped_wait_is_a_finding() {
        let scan = scan_text("w.rs", "fn f(&self) {\n    let g = self.cv.wait(&mut guard).unwrap();\n}\n");
        let (sites, _) = extract_sites(&scan);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].wrapped);
        assert!(sites[0].excuse.is_none());
    }

    #[test]
    fn blocking_wrap_is_detected() {
        let scan = scan_text(
            "w.rs",
            "fn f(&self) {\n    eden_kernel::blocking(|| self.cv.wait(&mut guard));\n}\n",
        );
        let (sites, _) = extract_sites(&scan);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].wrapped);
    }

    #[test]
    fn nonblocking_annotation_excuses() {
        let scan = scan_text(
            "w.rs",
            "fn f(&self) {\n    // eden-lint: nonblocking(dedicated thread)\n    let x = rx.recv().unwrap();\n}\n",
        );
        let (sites, _) = extract_sites(&scan);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].excuse.as_deref(), Some("dedicated thread"));
    }

    #[test]
    fn nonblocking_does_not_open_a_region() {
        // `nonblocking(...)` contains the substring `blocking(` — the word
        // boundary check must keep it from excusing a later call.
        let scan = scan_text(
            "w.rs",
            "fn f(&self) {\n    self.nonblocking(arg);\n    rx.recv().unwrap();\n}\n",
        );
        let (sites, _) = extract_sites(&scan);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].wrapped);
    }

    #[test]
    fn multiline_blocking_region_covers_inner_lines() {
        let scan = scan_text(
            "w.rs",
            "fn f(&self) {\n    blocking(|| {\n        let x = rx.recv().unwrap();\n        handle.join().unwrap();\n    });\n}\n",
        );
        let (sites, _) = extract_sites(&scan);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.wrapped));
    }

    #[test]
    fn lock_sites_count_but_never_fail() {
        let scan = scan_text("w.rs", "fn f(&self) {\n    let g = self.state.lock().unwrap();\n}\n");
        let (sites, governed) = extract_sites(&scan);
        assert!(sites.is_empty());
        assert_eq!(governed, 1);
    }

    #[test]
    fn test_code_is_skipped() {
        let scan = scan_text(
            "w.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { rx.recv().unwrap(); }\n}\n",
        );
        let (sites, _) = extract_sites(&scan);
        assert!(sites.is_empty());
    }
}
