//! Mailbox protocol conformance.
//!
//! The parking-bit state machine has one source of truth:
//! [`eden_kernel::mailbox::spec::TRANSITIONS`]. The loom models drive
//! their interleavings through `spec::assert_transition` (dynamic side);
//! this pass is the static side. It extracts every transition the code
//! performs on a parking bit and round-trips the two sets:
//!
//! * every `compare_exchange(park::A, park::B, ..)` must be a blessed
//!   CAS edge `A -> B`;
//! * every `.store(park::X, ..)` / `.swap(park::X, ..)` must carry a
//!   `// eden-lint: transition(FROM[|FROM2] -> X)` annotation, and every
//!   `FROM -> X` pair it claims must be a blessed store edge (a plain
//!   store proves nothing about the prior state, so the annotation is
//!   the proof obligation — it documents why no other state is possible
//!   at that site);
//! * every edge in the spec table must be witnessed by at least one code
//!   site with the matching op — a spec entry nothing implements is as
//!   wrong as a code transition the spec omits.

use std::fmt::Write as _;
use std::path::PathBuf;

use eden_core::{EdenError, Result};
use eden_kernel::mailbox::spec::{self, Op};

use crate::scan::{self, FileScan};

/// One transition the code performs on a parking bit.
#[derive(Debug)]
pub struct CodeTransition {
    /// The scanned file.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// States the machine may be in before the edge (CAS: exactly one;
    /// store/swap: the annotation's claim).
    pub from: Vec<u8>,
    /// State the edge moves the bit to.
    pub to: u8,
    /// CAS or store.
    pub op: Op,
}

/// The audit's outcome.
#[derive(Debug, Default)]
pub struct ProtocolReport {
    /// Files scanned.
    pub files: usize,
    /// Code transition sites extracted.
    pub sites: usize,
    /// Spec edges witnessed in code.
    pub witnessed: usize,
    /// Audit failures, human-readable.
    pub findings: Vec<String>,
}

impl ProtocolReport {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "protocol audit: {} file(s), {} transition site(s), {}/{} spec edges witnessed",
            self.files,
            self.sites,
            self.witnessed,
            spec::TRANSITIONS.len()
        );
        for finding in &self.findings {
            let _ = writeln!(out, "FINDING: {finding}");
        }
        if self.clean() {
            let _ = writeln!(
                out,
                "ok: code transitions and mailbox::spec::TRANSITIONS describe the same machine"
            );
        }
        out
    }
}

/// Parse `FROM[|FROM2] -> TO` from a `transition(..)` annotation body.
fn parse_claim(body: &str) -> Option<(Vec<u8>, u8)> {
    let (left, right) = body.split_once("->")?;
    let to = spec::state_by_name(right.trim())?;
    let mut from = Vec::new();
    for name in left.split('|') {
        from.push(spec::state_by_name(name.trim())?);
    }
    Some((from, to))
}

/// Pull the park state out of `park::NAME` at the start of an arg list.
fn park_arg(args: &str) -> Option<(u8, &str)> {
    let rest = args.trim_start().strip_prefix("park::")?;
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    Some((spec::state_by_name(&rest[..end])?, &rest[end..]))
}

/// Extract every parking-bit transition site from one pre-scanned file.
pub fn extract_sites(scan: &FileScan) -> (Vec<CodeTransition>, Vec<String>) {
    let joined = scan.joined_code();
    let bytes = joined.as_bytes();
    let mut sites = Vec::new();
    let mut errors = Vec::new();
    let annotations = scan.annotations_of("transition");

    // CAS sites: the from-state is proven by the exchange itself.
    let mut search = 0usize;
    while let Some(rel) = joined[search..].find("compare_exchange(") {
        let at = search + rel;
        let open = at + "compare_exchange".len();
        search = open + 1;
        let Some(close) = scan::matching_paren(bytes, open) else {
            continue;
        };
        let args = &joined[open + 1..close];
        let Some((from, rest)) = park_arg(args) else {
            continue; // a CAS on something other than a parking bit
        };
        let Some((to, _)) = park_arg(rest.trim_start().strip_prefix(',').unwrap_or("")) else {
            errors.push(format!(
                "{}:{}: compare_exchange mixes park:: and non-park:: operands",
                scan.path,
                scan.line_of(&joined, at)
            ));
            continue;
        };
        sites.push(CodeTransition {
            file: scan.path.clone(),
            line: scan.line_of(&joined, at),
            from: vec![from],
            to,
            op: Op::Cas,
        });
    }

    // Store/swap sites: the annotation carries the from-state claim.
    for pat in [".store(", ".swap("] {
        let mut search = 0usize;
        while let Some(rel) = joined[search..].find(pat) {
            let at = search + rel;
            let open = at + pat.len() - 1;
            search = open + 1;
            let Some(close) = scan::matching_paren(bytes, open) else {
                continue;
            };
            let Some((to, _)) = park_arg(&joined[open + 1..close]) else {
                continue; // a store to something other than a parking bit
            };
            let line = scan.line_of(&joined, at);
            let claim = annotations
                .iter()
                .rfind(|a| a.line <= line && line <= a.line + 3);
            let Some(ann) = claim else {
                errors.push(format!(
                    "{}:{line}: store of park::{} without a transition(FROM -> TO) annotation",
                    scan.path,
                    spec::state_name(to)
                ));
                continue;
            };
            let Some((from, claimed_to)) = parse_claim(&ann.body) else {
                errors.push(format!(
                    "{}:{}: unparseable transition({}) annotation",
                    scan.path, ann.line, ann.body
                ));
                continue;
            };
            if claimed_to != to {
                errors.push(format!(
                    "{}:{line}: annotation claims `-> {}` but the store writes park::{}",
                    scan.path,
                    spec::state_name(claimed_to),
                    spec::state_name(to)
                ));
                continue;
            }
            sites.push(CodeTransition {
                file: scan.path.clone(),
                line,
                from,
                to,
                op: Op::Store,
            });
        }
    }
    sites.sort_by_key(|s| s.line);
    (sites, errors)
}

/// Audit `roots` (the mailbox + scheduler sources) against the spec table.
pub fn audit(roots: &[PathBuf]) -> Result<ProtocolReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        scan::collect_rs(root, &mut files)
            .map_err(|e| EdenError::Application(format!("scan {}: {e}", root.display())))?;
    }
    files.sort();

    let mut report = ProtocolReport {
        files: files.len(),
        ..ProtocolReport::default()
    };
    let mut all_sites = Vec::new();
    for file in &files {
        let scan = scan::scan_file(file)
            .map_err(|e| EdenError::Application(format!("read {}: {e}", file.display())))?;
        let (sites, errors) = extract_sites(&scan);
        report.findings.extend(errors);
        all_sites.extend(sites);
    }
    report.sites = all_sites.len();

    // Direction 1: every code edge is in the spec under the right op.
    for site in &all_sites {
        for &from in &site.from {
            if !spec::allows_op(from, site.to, site.op) {
                report.findings.push(format!(
                    "{}:{}: transition {} -> {} via {:?} is not in mailbox::spec::TRANSITIONS",
                    site.file,
                    site.line,
                    spec::state_name(from),
                    spec::state_name(site.to),
                    site.op
                ));
            }
        }
    }

    // Direction 2: every spec edge is witnessed by at least one site.
    for t in spec::TRANSITIONS {
        let hit = all_sites
            .iter()
            .any(|s| s.op == t.op && s.to == t.to && s.from.contains(&t.from));
        if hit {
            report.witnessed += 1;
        } else {
            report.findings.push(format!(
                "mailbox::spec: edge {} -> {} ({:?}, {}) is witnessed by no code site",
                spec::state_name(t.from),
                spec::state_name(t.to),
                t.op,
                t.role
            ));
        }
    }
    report.findings.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_text;

    #[test]
    fn cas_site_extracts_both_states() {
        let scan = scan_text(
            "m.rs",
            "fn f(&self) {\n    self.bit.compare_exchange(\n        park::PARKED,\n        park::QUEUED,\n        Ordering::AcqRel,\n        Ordering::Acquire,\n    ).ok();\n}\n",
        );
        let (sites, errors) = extract_sites(&scan);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].op, Op::Cas);
        assert_eq!(sites[0].from, vec![eden_kernel::mailbox::park::PARKED]);
        assert_eq!(sites[0].to, eden_kernel::mailbox::park::QUEUED);
    }

    #[test]
    fn store_without_annotation_is_an_error() {
        let scan = scan_text("m.rs", "fn f(&self) {\n    bit.store(park::DEAD, Ordering::Release);\n}\n");
        let (sites, errors) = extract_sites(&scan);
        assert!(sites.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("without a transition"), "{errors:?}");
    }

    #[test]
    fn annotated_store_parses_multi_from() {
        let scan = scan_text(
            "m.rs",
            "fn f(&self) {\n    // eden-lint: transition(RUNNING|DIRTY -> QUEUED)\n    bit.store(park::QUEUED, Ordering::Release);\n}\n",
        );
        let (sites, errors) = extract_sites(&scan);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].from.len(), 2);
    }

    #[test]
    fn annotation_to_mismatch_is_an_error() {
        let scan = scan_text(
            "m.rs",
            "fn f(&self) {\n    // eden-lint: transition(QUEUED -> RUNNING)\n    bit.store(park::DEAD, Ordering::Release);\n}\n",
        );
        let (_, errors) = extract_sites(&scan);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("annotation claims"), "{errors:?}");
    }

    #[test]
    fn non_park_stores_are_ignored() {
        let scan = scan_text(
            "m.rs",
            "fn f(&self) {\n    self.len.store(0, Ordering::Release);\n    self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).ok();\n}\n",
        );
        let (sites, errors) = extract_sites(&scan);
        assert!(sites.is_empty());
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn real_tree_round_trips() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../eden-kernel/src");
        let report = audit(&[root.join("mailbox.rs"), root.join("sched.rs")]).unwrap();
        assert!(report.clean(), "{:#?}", report.findings);
        assert_eq!(report.witnessed, spec::TRANSITIONS.len());
    }
}
