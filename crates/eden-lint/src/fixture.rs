//! A tiny text format for wiring-graph fixtures.
//!
//! Each `.graph` file under `tests/fixtures/discipline/` describes one
//! [`WiringGraph`] plus the violations it is *expected* to raise — the
//! static-analysis equivalent of a `#[should_panic]` test. The grammar is
//! line-oriented, whitespace-separated:
//!
//! ```text
//! # expect: fan-out-under-read-only
//! discipline read-only
//! policy integer
//! node src source
//! node a filter
//! node b filter
//! edge src Output a
//! edge src Output b push
//! grant a src Output
//! ```
//!
//! `# expect: <rule>` headers name the rules that must fire (a fixture
//! with none is expected to be clean); other `#` lines are comments. An
//! `edge` line's optional fourth token overrides the discipline's native
//! mode with `pull`, `push`, or `rendezvous`.

use eden_core::{EdenError, Result};
use eden_transput::conform::{EdgeMode, GrantPolicy, NodeRole, Rule};
use eden_transput::{DisciplineKind, Violation, WiringGraph};

/// One parsed fixture: the graph and the rules it should trip.
#[derive(Debug)]
pub struct Fixture {
    /// Fixture name (the file stem, or whatever the caller passes).
    pub name: String,
    /// Rules the graph is expected to violate; empty means "must be clean".
    pub expect: Vec<Rule>,
    /// The described wiring.
    pub graph: WiringGraph,
}

impl Fixture {
    /// Run [`WiringGraph::check`] on the fixture's graph.
    pub fn check(&self) -> Vec<Violation> {
        self.graph.check()
    }

    /// Whether the violations raised are exactly the expected rule set
    /// (by rule, ignoring multiplicity and message text).
    pub fn verdict_matches(&self, violations: &[Violation]) -> bool {
        let mut want: Vec<Rule> = self.expect.clone();
        let mut got: Vec<Rule> = violations.iter().map(|v| v.rule).collect();
        want.sort_by_key(|r| r.to_string());
        want.dedup();
        got.sort_by_key(|r| r.to_string());
        got.dedup();
        want == got
    }
}

fn bad(name: &str, line: usize, msg: &str) -> EdenError {
    EdenError::BadParameter(format!("fixture {name}:{line}: {msg}"))
}

fn rule_from_slug(slug: &str) -> Option<Rule> {
    match slug {
        "fan-out-under-read-only" => Some(Rule::FanOutUnderReadOnly),
        "fan-in-under-write-only" => Some(Rule::FanInUnderWriteOnly),
        "unbuffered-filter-edge" => Some(Rule::UnbufferedFilterEdge),
        "channel-forgery" => Some(Rule::ChannelForgery),
        "unknown-node" => Some(Rule::UnknownNode),
        _ => None,
    }
}

/// Parse one fixture from its text.
pub fn parse(name: &str, text: &str) -> Result<Fixture> {
    let mut expect = Vec::new();
    let mut discipline: Option<DisciplineKind> = None;
    let mut policy = GrantPolicy::Integer;
    let mut nodes: Vec<(String, NodeRole)> = Vec::new();
    let mut edges: Vec<(String, String, String, Option<EdgeMode>)> = Vec::new();
    let mut grants: Vec<(String, String, String)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(slug) = rest.trim().strip_prefix("expect:") {
                let slug = slug.trim();
                expect.push(rule_from_slug(slug).ok_or_else(|| {
                    bad(name, lineno, &format!("unknown rule `{slug}`"))
                })?);
            }
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["discipline", d] => {
                discipline = Some(match *d {
                    "read-only" => DisciplineKind::ReadOnly,
                    "write-only" => DisciplineKind::WriteOnly,
                    "conventional" => DisciplineKind::Conventional,
                    other => {
                        return Err(bad(name, lineno, &format!("unknown discipline `{other}`")))
                    }
                });
            }
            ["policy", p] => {
                policy = match *p {
                    "integer" => GrantPolicy::Integer,
                    "capability" => GrantPolicy::Capability,
                    other => return Err(bad(name, lineno, &format!("unknown policy `{other}`"))),
                };
            }
            ["node", n, role] => {
                let role = match *role {
                    "source" => NodeRole::Source,
                    "filter" => NodeRole::Filter,
                    "buffer" => NodeRole::Buffer,
                    "sink" => NodeRole::Sink,
                    other => return Err(bad(name, lineno, &format!("unknown role `{other}`"))),
                };
                nodes.push(((*n).to_owned(), role));
            }
            ["edge", p, ch, c] => {
                edges.push(((*p).to_owned(), (*ch).to_owned(), (*c).to_owned(), None));
            }
            ["edge", p, ch, c, mode] => {
                let mode = match *mode {
                    "pull" => EdgeMode::Pull,
                    "push" => EdgeMode::Push,
                    "rendezvous" => EdgeMode::Rendezvous,
                    other => return Err(bad(name, lineno, &format!("unknown mode `{other}`"))),
                };
                edges.push(((*p).to_owned(), (*ch).to_owned(), (*c).to_owned(), Some(mode)));
            }
            ["grant", c, p, ch] => {
                grants.push(((*c).to_owned(), (*p).to_owned(), (*ch).to_owned()));
            }
            _ => return Err(bad(name, lineno, &format!("unparseable line `{line}`"))),
        }
    }

    let discipline =
        discipline.ok_or_else(|| bad(name, 0, "missing `discipline` declaration"))?;
    let mut graph = WiringGraph::new(discipline).policy(policy);
    for (n, role) in nodes {
        graph.node(n, role);
    }
    for (p, ch, c, mode) in edges {
        match mode {
            None => graph.edge(p, ch, c),
            Some(m) => graph.edge_mode(p, ch, c, m),
        };
    }
    for (c, p, ch) in grants {
        graph.grant(c, p, ch);
    }
    Ok(Fixture {
        name: name.to_owned(),
        expect,
        graph,
    })
}

/// Load a fixture from a `.graph` file.
pub fn load(path: &std::path::Path) -> Result<Fixture> {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text = std::fs::read_to_string(path)
        .map_err(|e| EdenError::Application(format!("read {}: {e}", path.display())))?;
    parse(&name, &text)
}

/// Load every `.graph` fixture under `dir` (sorted by name).
pub fn load_dir(dir: &std::path::Path) -> Result<Vec<Fixture>> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| EdenError::Application(format!("read {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "graph"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_violating_fixture() {
        let f = parse(
            "t",
            "# expect: fan-out-under-read-only\n\
             discipline read-only\n\
             node s source\nnode a sink\nnode b sink\n\
             edge s Output a\nedge s Output b\n",
        )
        .unwrap();
        let violations = f.check();
        assert!(f.verdict_matches(&violations), "{violations:?}");
    }

    #[test]
    fn mode_override_and_grants_parse() {
        let f = parse(
            "t",
            "discipline write-only\npolicy capability\n\
             node s source\nnode k sink\n\
             edge s Output k push\ngrant k s Output\n",
        )
        .unwrap();
        assert!(f.check().is_empty());
    }

    #[test]
    fn unknown_tokens_are_rejected() {
        assert!(parse("t", "discipline sideways\n").is_err());
        assert!(parse("t", "discipline read-only\nnode a gizmo\n").is_err());
        assert!(parse("t", "frobnicate\n").is_err());
        assert!(parse("t", "# expect: no-such-rule\ndiscipline read-only\n").is_err());
        assert!(parse("t", "node a source\n").is_err(), "missing discipline");
    }
}
