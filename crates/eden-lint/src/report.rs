//! Machine-readable lint report.
//!
//! `eden-lint --json PATH` writes one JSON document summarising every
//! pass that ran: name, clean/dirty, site counters, and the full finding
//! list. CI uploads it as an artifact so regressions diff textually.
//! Hand-rolled serialisation — the workspace takes no serde dependency
//! for a flat report shape.

use std::fmt::Write as _;

/// One pass's contribution to the JSON report.
#[derive(Debug)]
pub struct PassReport {
    /// Pass name (`lock-order`, `atomics`, `blocking`, `protocol`,
    /// `discipline`).
    pub name: &'static str,
    /// Whether the pass passed.
    pub clean: bool,
    /// Named site counters, e.g. `("sites", 220)`.
    pub counts: Vec<(&'static str, usize)>,
    /// Human-readable findings (empty when clean).
    pub findings: Vec<String>,
}

/// Escape a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full report document.
pub fn render(passes: &[PassReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"eden-lint\",\n  \"clean\": ");
    out.push_str(if passes.iter().all(|p| p.clean) {
        "true"
    } else {
        "false"
    });
    out.push_str(",\n  \"passes\": [\n");
    for (i, pass) in passes.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"clean\": {},\n      \"counts\": {{",
            escape(pass.name),
            pass.clean
        );
        for (j, (key, value)) in pass.counts.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if j == 0 { "" } else { ", " },
                escape(key),
                value
            );
        }
        out.push_str("},\n      \"findings\": [");
        for (j, finding) in pass.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n        \"{}\"",
                if j == 0 { "" } else { "," },
                escape(finding)
            );
        }
        if !pass.findings.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
        out.push_str(if i + 1 == passes.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shape() {
        let passes = vec![
            PassReport {
                name: "atomics",
                clean: true,
                counts: vec![("sites", 120), ("tokens", 220)],
                findings: vec![],
            },
            PassReport {
                name: "blocking",
                clean: false,
                counts: vec![("sites", 9)],
                findings: vec!["a.rs:3: \"bad\"\tsite".to_owned()],
            },
        ];
        let doc = render(&passes);
        assert!(doc.contains("\"clean\": false"));
        assert!(doc.contains("\"sites\": 120"));
        assert!(doc.contains("\\\"bad\\\"\\tsite"));
        // Crude structural sanity: balanced braces and brackets.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }
}
