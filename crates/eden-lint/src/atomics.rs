//! Atomics-ordering audit.
//!
//! Every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` token in the
//! scanned tree must belong to a site the blessed catalog in
//! `docs/ATOMICS.md` describes. The catalog lives in a fenced
//! ` ```atomics ` block, one line per (file, atomic) pair:
//!
//! ```text
//! atomic eden-kernel/src/mailbox.rs park_state role=park-state-machine annotated load=Acquire cas=AcqRel/Acquire
//! atomic eden-kernel/src/sched.rs idle_count role=dekker-flag load=Relaxed|SeqCst fetch_add=SeqCst fetch_sub=SeqCst
//! ```
//!
//! * `role=` names what the atomic *is* (publish/consume pair, counter,
//!   flag, state machine) — the reviewer-facing contract.
//! * `annotated` requires at least one site of the entry to carry a
//!   `// eden-lint: ordering(role)` annotation whose role matches — the
//!   load-bearing sites advertise themselves in the source.
//! * Each `method=orderings` token lists the blessed orderings for that
//!   method: alternatives separated by `|`, CAS success/failure pairs
//!   joined by `/` (`compare_exchange=AcqRel/Acquire`). `cas` is
//!   shorthand for `compare_exchange`.
//!
//! The audit fails on: a site with no catalog entry, a method the entry
//! does not list, an ordering outside the blessed set (the "silent
//! downgrade" this pass exists for), a stale entry matching no site, a
//! missing required annotation, or an annotation whose role disagrees
//! with the catalog. Unknown sites print ready-to-paste catalog lines so
//! growing the tree is mechanical. As a belt-and-braces check the pass
//! also proves every `Ordering::` token in non-test code landed in
//! exactly one parsed site — zero unaudited sites, loudly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use eden_core::{EdenError, Result};

use crate::scan::{self, FileScan};

/// The five memory orderings (anything else after `Ordering::` — `Less`,
/// `Equal`, `Greater` — is `cmp::Ordering` and not ours).
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One blessed catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Path suffix the site's file must end with.
    pub file: String,
    /// The atomic's name at the call site (field, local, or `fence`).
    pub name: String,
    /// What the atomic is for.
    pub role: String,
    /// Whether at least one site must carry an `ordering(role)` marker.
    pub annotated: bool,
    /// Blessed orderings per method, e.g. `load` → `["Acquire","Relaxed"]`,
    /// `compare_exchange` → `["AcqRel/Acquire"]`.
    pub methods: BTreeMap<String, Vec<String>>,
}

/// Parse the ` ```atomics ` fenced block out of a markdown document.
pub fn parse_blessed(markdown: &str) -> Result<Vec<CatalogEntry>> {
    let mut entries = Vec::new();
    let mut in_block = false;
    for (i, raw) in markdown.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("```") {
            in_block = line == "```atomics";
            continue;
        }
        if !in_block || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let bad = |msg: &str| {
            EdenError::BadParameter(format!("ATOMICS line {}: {msg}: `{line}`", i + 1))
        };
        if tokens.next() != Some("atomic") {
            return Err(bad("expected `atomic <file> <name> role=... <method>=...`"));
        }
        let file = tokens.next().ok_or_else(|| bad("missing file"))?.to_owned();
        let name = tokens.next().ok_or_else(|| bad("missing name"))?.to_owned();
        let mut entry = CatalogEntry {
            file,
            name,
            role: String::new(),
            annotated: false,
            methods: BTreeMap::new(),
        };
        for token in tokens {
            if token == "annotated" {
                entry.annotated = true;
            } else if let Some(role) = token.strip_prefix("role=") {
                entry.role = role.to_owned();
            } else if let Some((method, orderings)) = token.split_once('=') {
                let method = if method == "cas" { "compare_exchange" } else { method };
                entry
                    .methods
                    .insert(method.to_owned(), orderings.split('|').map(str::to_owned).collect());
            } else {
                return Err(bad("unparseable token"));
            }
        }
        if entry.role.is_empty() {
            return Err(bad("missing role="));
        }
        if entry.methods.is_empty() {
            return Err(bad("no method=orderings tokens"));
        }
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err(EdenError::BadParameter(
            "ATOMICS: no ```atomics block with atomic declarations found".into(),
        ));
    }
    Ok(entries)
}

/// One extracted source site: a method call consuming `Ordering` tokens.
#[derive(Debug)]
pub struct AtomicSite {
    /// The scanned file.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Receiver name (`park_state`, `bit`, `fence`, ...).
    pub name: String,
    /// Method name (`load`, `store`, `compare_exchange`, `fence`, ...).
    pub method: String,
    /// Orderings in argument order (`["AcqRel","Acquire"]` for a CAS).
    pub orderings: Vec<String>,
    /// Role from an `ordering(role)` annotation bound to this site.
    pub annotation: Option<String>,
}

impl AtomicSite {
    /// Render the orderings as the catalog writes them.
    fn ordering_key(&self) -> String {
        self.orderings.join("/")
    }

    /// A ready-to-paste catalog line for an unknown site.
    fn suggest(&self) -> String {
        let file = workspace_suffix(&self.file);
        format!(
            "atomic {file} {} role=? {}={}",
            self.name,
            self.method,
            self.ordering_key()
        )
    }
}

/// Trim a path down to its workspace-relative `crates/...` suffix.
fn workspace_suffix(path: &str) -> String {
    match path.find("crates/") {
        Some(idx) => path[idx + "crates/".len()..].to_owned(),
        None => path.to_owned(),
    }
}

/// The audit's outcome.
#[derive(Debug, Default)]
pub struct AtomicsReport {
    /// Files scanned.
    pub files: usize,
    /// Call sites parsed (a CAS with two orderings is one site).
    pub sites: usize,
    /// `Ordering::` tokens audited (equals the token count in non-test
    /// code when the parse is complete).
    pub tokens: usize,
    /// Audit failures, human-readable.
    pub findings: Vec<String>,
    /// Ready-to-paste catalog lines for unknown sites.
    pub suggestions: Vec<String>,
}

impl AtomicsReport {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "atomics audit: {} file(s), {} site(s), {} Ordering token(s)",
            self.files, self.sites, self.tokens
        );
        for finding in &self.findings {
            let _ = writeln!(out, "FINDING: {finding}");
        }
        if !self.suggestions.is_empty() {
            let _ = writeln!(out, "  suggested catalog lines (fill in role=):");
            for s in &self.suggestions {
                let _ = writeln!(out, "    {s}");
            }
        }
        if self.clean() {
            let _ = writeln!(out, "ok: every Ordering site matches docs/ATOMICS.md");
        }
        out
    }
}

/// Extract every atomic call site from one pre-scanned file.
pub fn extract_sites(scan: &FileScan) -> (Vec<AtomicSite>, usize, Vec<String>) {
    let joined = scan.joined_code();
    let bytes = joined.as_bytes();
    let mut tokens = 0usize;
    // Opener byte offset -> orderings + method/name, in argument order.
    let mut calls: BTreeMap<usize, AtomicSite> = BTreeMap::new();
    let mut errors = Vec::new();

    let mut search = 0usize;
    while let Some(rel) = joined[search..].find("Ordering::") {
        let at = search + rel;
        search = at + "Ordering::".len();
        let rest = &joined[search..];
        let Some(ord) = ORDERINGS
            .iter()
            .find(|o| {
                rest.starts_with(**o)
                    && !rest[o.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
            })
        else {
            continue; // cmp::Ordering or a path fragment; not ours
        };
        tokens += 1;
        // Innermost unmatched `(` walking backward from the token.
        let mut depth = 0usize;
        let mut open = None;
        let mut i = at;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    if depth == 0 {
                        open = Some(i);
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        let line = scan.line_of(&joined, at);
        let Some(open) = open else {
            errors.push(format!(
                "{}:{line}: Ordering::{ord} outside any call — unparseable site",
                scan.path
            ));
            continue;
        };
        if let Some(site) = calls.get_mut(&open) {
            site.orderings.push((*ord).to_owned());
            continue;
        }
        let Some((method, name)) = scan::call_chain(bytes, open) else {
            errors.push(format!(
                "{}:{line}: cannot resolve the call taking Ordering::{ord}",
                scan.path
            ));
            continue;
        };
        calls.insert(
            open,
            AtomicSite {
                file: scan.path.clone(),
                line: scan.line_of(&joined, open),
                name,
                method,
                orderings: vec![(*ord).to_owned()],
                annotation: None,
            },
        );
    }

    let mut sites: Vec<AtomicSite> = calls.into_values().collect();
    // Bind `ordering(role)` annotations to the next site within 10 lines.
    for ann in scan.annotations_of("ordering") {
        let target = sites
            .iter_mut()
            .filter(|s| s.line >= ann.line && s.line <= ann.line + 10)
            .min_by_key(|s| s.line);
        match target {
            Some(site) => site.annotation = Some(ann.body.clone()),
            None => errors.push(format!(
                "{}:{}: ordering({}) annotation binds to no atomic site",
                scan.path, ann.line, ann.body
            )),
        }
    }
    (sites, tokens, errors)
}

/// Walk `roots`, extract every atomic site, and evaluate the catalog.
pub fn audit(catalog: &[CatalogEntry], roots: &[PathBuf]) -> Result<AtomicsReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        scan::collect_rs(root, &mut files)
            .map_err(|e| EdenError::Application(format!("scan {}: {e}", root.display())))?;
    }
    files.sort();

    let mut report = AtomicsReport {
        files: files.len(),
        ..AtomicsReport::default()
    };
    let mut used = vec![false; catalog.len()];
    let mut annotated_ok = vec![false; catalog.len()];

    for file in &files {
        let scan = scan::scan_file(file)
            .map_err(|e| EdenError::Application(format!("read {}: {e}", file.display())))?;
        let (sites, tokens, errors) = extract_sites(&scan);
        report.tokens += tokens;
        report.findings.extend(errors);
        let mut audited = 0usize;
        for site in &sites {
            report.sites += 1;
            audited += site.orderings.len();
            let entry = catalog.iter().position(|e| {
                site.name == e.name
                    && (workspace_suffix(&site.file).ends_with(&e.file)
                        || site.file.ends_with(&e.file))
            });
            let Some(idx) = entry else {
                report.findings.push(format!(
                    "{}:{}: unknown atomic site `{}.{}({})` — not in docs/ATOMICS.md",
                    site.file,
                    site.line,
                    site.name,
                    site.method,
                    site.ordering_key()
                ));
                report.suggestions.push(site.suggest());
                continue;
            };
            used[idx] = true;
            let entry = &catalog[idx];
            match entry.methods.get(&site.method) {
                None => report.findings.push(format!(
                    "{}:{}: `{}` has no blessed `{}` method in docs/ATOMICS.md",
                    site.file, site.line, site.name, site.method
                )),
                Some(allowed) if !allowed.iter().any(|a| *a == site.ordering_key()) => {
                    report.findings.push(format!(
                        "{}:{}: `{}.{}` uses {} but docs/ATOMICS.md blesses {} — downgraded or changed ordering",
                        site.file,
                        site.line,
                        site.name,
                        site.method,
                        site.ordering_key(),
                        allowed.join("|")
                    ));
                }
                Some(_) => {}
            }
            if let Some(role) = &site.annotation {
                if *role != entry.role {
                    report.findings.push(format!(
                        "{}:{}: ordering({role}) disagrees with catalog role `{}` for `{}`",
                        site.file, site.line, entry.role, site.name
                    ));
                } else {
                    annotated_ok[idx] = true;
                }
            }
        }
        if audited != tokens {
            report.findings.push(format!(
                "{}: {} Ordering token(s) but only {} audited — unparsed sites remain",
                scan.path, tokens, audited
            ));
        }
    }

    for (idx, entry) in catalog.iter().enumerate() {
        if !used[idx] {
            report.findings.push(format!(
                "docs/ATOMICS.md: stale entry `{} {}` matches no site",
                entry.file, entry.name
            ));
        } else if entry.annotated && !annotated_ok[idx] {
            report.findings.push(format!(
                "docs/ATOMICS.md: `{} {}` requires an `// eden-lint: ordering({})` annotation at a load-bearing site, none found",
                entry.file, entry.name, entry.role
            ));
        }
    }
    report.findings.sort();
    report.suggestions.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(text: &str) -> Vec<CatalogEntry> {
        parse_blessed(&format!("```atomics\n{text}```\n")).unwrap()
    }

    fn run(cat: &[CatalogEntry], source: &str) -> AtomicsReport {
        let dir = std::env::temp_dir().join(format!(
            "eden-lint-atomics-{}-{:p}",
            std::process::id(),
            &cat
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mem.rs");
        std::fs::write(&path, source).unwrap();
        let report = audit(cat, &[path]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        report
    }

    #[test]
    fn blessed_site_is_clean() {
        let cat = catalog("atomic mem.rs flag role=flag load=Acquire store=Release\n");
        let report = run(
            &cat,
            "fn f(&self) {\n    self.flag.store(true, Ordering::Release);\n    self.flag.load(Ordering::Acquire);\n}\n",
        );
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.sites, 2);
        assert_eq!(report.tokens, 2);
    }

    #[test]
    fn downgraded_ordering_is_a_finding() {
        let cat = catalog("atomic mem.rs flag role=flag load=Acquire\n");
        let report = run(&cat, "fn f(&self) {\n    self.flag.load(Ordering::Relaxed);\n}\n");
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].contains("downgraded"), "{:?}", report.findings);
    }

    #[test]
    fn unknown_site_suggests_a_catalog_line() {
        let cat = catalog("atomic mem.rs other role=flag load=Acquire\n");
        let report = run(
            &cat,
            "fn f(&self) {\n    self.other.load(Ordering::Acquire);\n    self.novel.swap(1, Ordering::AcqRel);\n}\n",
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].contains("unknown atomic site"));
        assert_eq!(report.suggestions.len(), 1);
        assert!(report.suggestions[0].contains("novel"), "{:?}", report.suggestions);
        assert!(report.suggestions[0].contains("swap=AcqRel"));
    }

    #[test]
    fn cas_orderings_pair_up() {
        let cat = catalog("atomic mem.rs state role=machine cas=AcqRel/Acquire\n");
        let report = run(
            &cat,
            "fn f(&self) {\n    self.state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok();\n}\n",
        );
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.sites, 1);
        assert_eq!(report.tokens, 2);
    }

    #[test]
    fn stale_entry_and_missing_annotation_fail() {
        let cat = catalog(
            "atomic mem.rs flag role=flag annotated load=Acquire\natomic mem.rs ghost role=flag load=Acquire\n",
        );
        let report = run(&cat, "fn f(&self) {\n    self.flag.load(Ordering::Acquire);\n}\n");
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(report.findings.iter().any(|f| f.contains("stale")));
        assert!(report.findings.iter().any(|f| f.contains("annotation")));
    }

    #[test]
    fn annotation_role_must_match() {
        let cat = catalog("atomic mem.rs flag role=flag annotated load=Acquire\n");
        let clean = run(
            &cat,
            "fn f(&self) {\n    // eden-lint: ordering(flag)\n    self.flag.load(Ordering::Acquire);\n}\n",
        );
        assert!(clean.clean(), "{:?}", clean.findings);
        let wrong = run(
            &cat,
            "fn f(&self) {\n    // eden-lint: ordering(counter)\n    self.flag.load(Ordering::Acquire);\n}\n",
        );
        assert!(!wrong.clean());
    }

    #[test]
    fn test_code_and_cmp_ordering_are_ignored() {
        let cat = catalog("atomic mem.rs flag role=flag load=Acquire\n");
        let report = run(
            &cat,
            "fn f(&self) {\n    self.flag.load(Ordering::Acquire);\n    x.cmp(&y) == Ordering::Less;\n}\n#[cfg(test)]\nmod tests {\n    fn t() { FLAG.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.tokens, 1);
    }

    #[test]
    fn fence_sites_parse() {
        let cat = catalog("atomic mem.rs fence role=dekker fence=SeqCst\n");
        let report = run(&cat, "fn f() {\n    fence(Ordering::SeqCst);\n}\n");
        assert!(report.clean(), "{:?}", report.findings);
    }
}
