//! The pipeline shell: dynamically redirectable stream transput (§6).
//!
//! "Eden must also provide conventional operating system facilities in a
//! way that compares favourably with systems such as Unix. Dynamically
//! redirectable stream transput is an example of one such facility."
//!
//! Run with: `cargo run --example shell_demo`

use eden::fs::{MemFs, UnixFsEject};
use eden::kernel::Kernel;
use eden::shell::ShellEnv;

fn main() {
    let kernel = Kernel::new();

    // A little host filing system for the `unix` source/sink.
    let fs = MemFs::with_files([(
        "report.f",
        concat!(
            "C     QUARTERLY REPORT GENERATOR\n",
            "      PROGRAM REPORT\n",
            "C     TODO: REMOVE DEBUG LINES\n",
            "      CALL FETCH(DATA)\n",
            "      CALL DEBUG(DATA)\n",
            "      CALL RENDER(DATA)\n",
            "      END\n",
        ),
    )]);
    let unixfs = kernel
        .spawn(Box::new(UnixFsEject::new(fs.clone())))
        .expect("spawn UnixFs");
    let shell = ShellEnv::new(&kernel).with_unixfs(unixfs);

    let commands = [
        // Inline data through a chain of filters.
        "lines 'the cat' 'the dog' 'a bird' | grep the | upcase",
        // Aggregation: flush-time filters.
        "lines 'b' 'a' 'c' 'a' | sort | uniq | line-number",
        // The paper's Fortran example, from the host filing system,
        // written back to it.
        "unix report.f | strip-comments | line-number > unix report.lst",
        // A report channel redirected into a window — the `n>` analogue.
        "lines 'thee catt sat' | spell-check the cat sat Report>spelling",
        // The same pipeline under a different discipline, one directive away.
        "@discipline=conventional @buffer=8 seq 6 | copy",
    ];

    for command in commands {
        println!("eden$ {command}");
        match shell.run(command) {
            Ok(run) => {
                for line in run.output_lines() {
                    println!("{line}");
                }
                for (window, items) in &run.windows {
                    println!("[window {window}]");
                    for item in items {
                        println!("  {}", item.as_str().unwrap_or("?"));
                    }
                }
                println!(
                    "({} invocations, {} entities)\n",
                    run.run.metrics.invocations, run.run.entities
                );
            }
            Err(e) => println!("error: {e}\n"),
        }
    }

    println!("eden$ # and the redirected listing landed in the host fs:");
    let listing = fs.read("report.lst").expect("report.lst written");
    print!("{}", String::from_utf8_lossy(&listing));

    kernel.shutdown();
}
