//! Quickstart: the same filter chain wired in all three communication
//! disciplines, with the paper's cost comparison printed at the end.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use eden::core::Value;
use eden::filters::{Grep, LineNumber, StripComments};
use eden::kernel::Kernel;
use eden::transput::{Discipline, PipelineSpec};

fn fortran_deck() -> Vec<Value> {
    [
        "C     SOLVE THE HEAT EQUATION",
        "      PROGRAM HEAT",
        "C     (COMMENTS STRIPPED BY THE FILTER OF SECTION 3)",
        "      REAL T(100)",
        "      CALL INIT(T)",
        "C     MAIN LOOP",
        "      DO 10 I = 1, 100",
        "   10 CALL STEP(T)",
        "      CALL REPORT(T)",
        "      END",
    ]
    .iter()
    .map(|l| Value::str(*l))
    .collect()
}

fn main() {
    let kernel = Kernel::new();
    println!("== eden quickstart: one filter chain, three disciplines ==\n");

    for discipline in [
        Discipline::ReadOnly { read_ahead: 0 },
        Discipline::WriteOnly { push_ahead: 0 },
        Discipline::Conventional { buffer_capacity: 16 },
    ] {
        let run = PipelineSpec::new(discipline)
            .source_vec(fortran_deck())
            .stage(Box::new(StripComments::fortran()))
            .stage(Box::new(Grep::matching("CALL*")))
            .stage(Box::new(LineNumber::new()))
            .batch(1)
            .build(&kernel)
            .expect("pipeline builds")
            .run(Duration::from_secs(10))
            .expect("pipeline runs");

        println!("--- {} ---", discipline.label());
        for line in &run.output {
            println!("{}", line.as_str().unwrap_or("?"));
        }
        println!(
            "entities: {:<2}  invocations: {:<3}  ({:.2} per record)  internal msgs: {}\n",
            run.entities,
            run.metrics.invocations,
            run.invocations_per_record(),
            run.metrics.internal_messages,
        );
    }

    println!("The asymmetric disciplines (read-only, write-only) move each record");
    println!("with n+1 invocations through n filters; the conventional discipline");
    println!("needs 2n+2 plus n+1 passive buffer Ejects — Section 4 of the paper.");
    kernel.shutdown();
}
