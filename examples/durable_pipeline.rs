//! Crash-recovering pipelines: §1's checkpoint contract, live.
//!
//! "The data in a passive representation should be sufficient to enable
//! the Eject they represent to re-construct itself in a consistent state"
//! — and "if a passive eject is sent an invocation, the Eden kernel will
//! activate it."
//!
//! A durable read cursor feeds a durable line-numbering filter. We
//! fail-stop both Ejects after *every* transfer; the stream completes
//! anyway, with no loss, no duplicates, and unbroken numbering — each
//! crash is healed by reactivation-on-invocation from the auto-checkpoint.
//!
//! Run with: `cargo run --example durable_pipeline`

use eden::core::op::ops;
use eden::core::Value;
use eden::filters::{DurableFilterEject, FilterSpec};
use eden::fs::{register_fs_types, FileEject};
use eden::kernel::{Kernel, KernelConfig};
use eden::transput::protocol::{Batch, TransferRequest};

fn main() {
    let kernel = Kernel::with_config(KernelConfig {
        trace_capacity: 512,
        ..Default::default()
    });
    register_fs_types(&kernel);
    DurableFilterEject::register(&kernel);

    let file = kernel
        .spawn(Box::new(FileEject::from_lines(
            (1..=8).map(|i| format!("verse {i} of the ballad")),
        )))
        .expect("spawn file");
    let cursor = kernel
        .invoke(file, "OpenDurable", Value::Unit).wait()
        .expect("durable cursor")
        .as_uid()
        .expect("capability");
    let filter = kernel
        .spawn(Box::new(
            DurableFilterEject::new(FilterSpec::new("line-number"), cursor, 2)
                .expect("durable filter"),
        ))
        .expect("spawn filter");

    println!("== reading through crash after crash ==\n");
    let mut crashes = 0;
    loop {
        let batch = Batch::from_value(
            kernel
                .invoke(filter, ops::TRANSFER, TransferRequest::primary(2).to_value()).wait()
                .expect("transfer"),
        )
        .expect("batch");
        for line in &batch.items {
            println!("{}", line.as_str().unwrap_or("?"));
        }
        if batch.end {
            break;
        }
        // Murder both stages. The next Transfer resurrects them.
        kernel.crash(filter).expect("crash filter");
        kernel.crash(cursor).expect("crash cursor");
        crashes += 2;
        println!("  ... both Ejects crashed (total {crashes}); continuing ...");
    }

    let snapshot = kernel.metrics().snapshot();
    println!(
        "\n{} crashes survived; {} activations total ({} of them reactivations from checkpoints)",
        snapshot.crashes,
        snapshot.activations,
        snapshot.crashes // Every crash here led to exactly one reactivation.
    );
    println!(
        "stable store holds {} passive representation(s), {} bytes",
        kernel.stable_store().len(),
        kernel.stable_store().total_bytes()
    );
    println!("\nlast few kernel events:");
    for event in kernel.trace_events().iter().rev().take(6).rev() {
        println!("  {event}");
    }
    kernel.shutdown();
}
