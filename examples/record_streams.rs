//! Record streams and the Map protocol (§6).
//!
//! "Nothing I have said about Eden transput constrains Eden streams to be
//! streams of bytes. Streams of arbitrary records fit into the protocol
//! just as well" — and an Eject "may wish to define a protocol which
//! supports the abstraction of a Map. ... it may support both protocols."
//!
//! A payroll file of employee records is stored in a `MapFileEject`
//! (random access + streaming), queried through a record pipeline, and a
//! report window (Figure 4's multi-source reader) watches two streams at
//! once.
//!
//! Run with: `cargo run --example record_streams`

use std::time::Duration;

use eden::core::op::ops;
use eden::core::Value;
use eden::filters::{FieldCmp, GroupAggregate, RenderRecords, SelectFields, WhereField};
use eden::fs::{mapfile, MapFileEject};
use eden::kernel::Kernel;
use eden::transput::collector::Collector;
use eden::transput::devices::{Subscription, TickSource, WindowEject};
use eden::transput::protocol::ChannelId;
use eden::transput::source::SourceEject;
use eden::transput::{Discipline, PipelineSpec};

fn employee(name: &str, dept: &str, salary: i64) -> Value {
    Value::record([
        ("name", Value::str(name)),
        ("dept", Value::str(dept)),
        ("salary", Value::Int(salary)),
    ])
}

fn main() {
    let kernel = Kernel::new();

    // A map file: random access *and* streaming over the same records.
    let payroll = kernel
        .spawn(Box::new(MapFileEject::with_records(vec![
            employee("ada", "eng", 120),
            employee("grace", "eng", 130),
            employee("alan", "research", 110),
            employee("edsger", "research", 115),
            employee("barbara", "eng", 140),
        ])))
        .expect("spawn payroll");

    // Random access (the Map protocol): patch one record in place.
    println!("== Map protocol: random access ==");
    let before = kernel
        .invoke(payroll, "ReadAt", mapfile::read_at_arg(2, 1)).wait()
        .expect("ReadAt");
    println!("record 2 before: {:?}", before.as_list().unwrap()[0].field("name").unwrap());
    kernel
        .invoke(
            payroll,
            "WriteAt",
            mapfile::write_at_arg(2, vec![employee("alan", "eng", 125)]),
        ).wait()
        .expect("WriteAt");
    println!("record 2 patched: alan moves to eng at 125\n");

    // Streaming (the transput protocol): a query over the same Eject.
    println!("== record pipeline: eng salaries > 120, projected and rendered ==");
    let reader = kernel
        .invoke(payroll, ops::OPEN, Value::Unit).wait()
        .expect("open stream view")
        .as_uid()
        .expect("capability");
    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_eject(reader)
        .stage(Box::new(WhereField::new("dept", FieldCmp::Eq, Value::str("eng"))))
        .stage(Box::new(WhereField::new("salary", FieldCmp::Gt, Value::Int(120))))
        .stage(Box::new(SelectFields::new(["name", "salary"])))
        .stage(Box::new(RenderRecords))
        .build(&kernel)
        .expect("build query")
        .run(Duration::from_secs(10))
        .expect("run query");
    for line in &run.output {
        println!("{}", line.as_str().unwrap_or("?"));
    }

    println!("\n== aggregation: headcount and payroll by department ==");
    let reader = kernel
        .invoke(payroll, ops::OPEN, Value::Unit).wait()
        .expect("open second view")
        .as_uid()
        .expect("capability");
    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_eject(reader)
        .stage(Box::new(GroupAggregate::new("dept", Some("salary"))))
        .stage(Box::new(RenderRecords))
        .build(&kernel)
        .expect("build aggregate")
        .run(Duration::from_secs(10))
        .expect("run aggregate");
    for line in &run.output {
        println!("{}", line.as_str().unwrap_or("?"));
    }

    // The multi-source report window of Figure 4: one device, two streams.
    println!("\n== report window: two sources, one device (Figure 4) ==");
    let clock = kernel
        .spawn(Box::new(SourceEject::new(Box::new(TickSource::new(3)))))
        .expect("spawn clock");
    let reader = kernel
        .invoke(payroll, ops::OPEN, Value::Unit).wait()
        .expect("open third view")
        .as_uid()
        .expect("capability");
    let window_output = Collector::new();
    kernel
        .spawn(Box::new(WindowEject::new(
            vec![
                Subscription {
                    label: "clock".into(),
                    source: clock,
                    channel: ChannelId::output(),
                },
                Subscription {
                    label: "payroll".into(),
                    source: reader,
                    channel: ChannelId::output(),
                },
            ],
            4,
            window_output.clone(),
        )))
        .expect("spawn window");
    let mut lines: Vec<String> = window_output
        .wait_done(Duration::from_secs(10))
        .expect("window drains")
        .iter()
        .map(|r| {
            format!(
                "[{}] {:?}",
                r.field("from").unwrap().as_str().unwrap_or("?"),
                r.field("item").unwrap()
            )
        })
        .collect();
    lines.sort();
    for line in lines {
        println!("{line}");
    }

    kernel.shutdown();
}
