//! The paper's motivating example (§4): printing a paginated file.
//!
//! "A file could be printed simply by requesting the printer server to
//! read from the file. If a paginated listing were required, the printer
//! server would be requested to read from the paginator, and the
//! paginator to read from the file."
//!
//! The printer server here is a sink Eject that pumps reads; the file is a
//! file Eject found by name in a directory Eject; the paginator is a pull
//! filter. No Write invocation moves the document anywhere.
//!
//! Run with: `cargo run --example print_listing`

use std::time::Duration;

use eden::core::op::ops;
use eden::core::Value;
use eden::filters::Paginator;
use eden::fs::{add_entry, lookup, register_fs_types, DirectoryEject, FileEject};
use eden::kernel::Kernel;
use eden::transput::collector::Collector;
use eden::transput::read_only::{InputPort, PullFilterEject};
use eden::transput::sink::SinkEject;

fn main() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);

    // A home directory with a document in it.
    let home = kernel
        .spawn(Box::new(DirectoryEject::new()))
        .expect("spawn directory");
    let poem = FileEject::from_lines([
        "TIGER, tiger, burning bright",
        "In the forests of the night,",
        "What immortal hand or eye",
        "Could frame thy fearful symmetry?",
        "",
        "In what distant deeps or skies",
        "Burnt the fire of thine eyes?",
        "On what wings dare he aspire?",
        "What the hand dare seize the fire?",
    ]);
    let poem_uid = kernel.spawn(Box::new(poem)).expect("spawn file");
    add_entry(&kernel, home, "tiger.txt", poem_uid).expect("file into directory");

    // Find the document by name — UIDs, not path strings, do the wiring.
    let found = lookup(&kernel, home, "tiger.txt").expect("lookup");
    let reader = kernel
        .invoke(found, ops::OPEN, Value::Unit).wait()
        .expect("open for reading")
        .as_uid()
        .expect("stream capability");

    // The paginator reads from the file...
    let paginator = kernel
        .spawn(Box::new(PullFilterEject::new(
            Box::new(Paginator::new("tiger.txt", 4)),
            InputPort::primary(reader),
        )))
        .expect("spawn paginator");

    // ...and the printer server reads from the paginator. Spawning the
    // printer starts the flow: it is the pump.
    let printed = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::new(paginator, 4, printed.clone())))
        .expect("spawn printer server");

    let pages = printed
        .wait_done(Duration::from_secs(10))
        .expect("printing completes");
    println!("== printer output ==");
    for line in &pages {
        let text = line.as_str().unwrap_or("");
        if text == eden::filters::FORM_FEED {
            println!("^L");
        } else {
            println!("{text}");
        }
    }

    // The directory listing is itself a stream (§2): print it the same way.
    kernel
        .invoke(home, ops::LIST, Value::Unit).wait()
        .expect("prepare listing");
    let listing = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::new(home, 8, listing.clone())))
        .expect("spawn listing reader");
    println!("\n== directory listing (also read as a stream) ==");
    for line in listing.wait_done(Duration::from_secs(10)).expect("listing") {
        println!("{}", line.as_str().unwrap_or("?"));
    }

    kernel.shutdown();
}
