//! Report streams: Figure 3 (write-only) versus Figure 4 (read-only with
//! channel identifiers).
//!
//! A spell-checking filter passes its text through unchanged and emits
//! monitoring messages on a `Report` channel. In the write-only discipline
//! the reports are *pushed* to an extra acceptor sink (Figure 3); in the
//! read-only discipline a report window *reads* the filter's Report
//! channel, named by a channel identifier (Figure 4). Both produce the
//! same windows; the entity and invocation counts differ.
//!
//! Run with: `cargo run --example report_streams`

use std::time::Duration;

use eden::core::Value;
use eden::filters::SpellCheck;
use eden::kernel::Kernel;
use eden::transput::protocol::REPORT_NAME;
use eden::transput::{ChannelPolicy, Discipline, PipelineSpec};

fn manuscript() -> Vec<Value> {
    [
        "the cat sat on the mat",
        "the dog barkd at the cat",
        "a quick brown fox jumpd over the dog",
    ]
    .iter()
    .map(|l| Value::str(*l))
    .collect()
}

const DICTIONARY: [&str; 14] = [
    "the", "cat", "sat", "on", "mat", "dog", "at", "a", "quick", "brown", "fox", "over", "and",
    "barked",
];

fn run_one(kernel: &Kernel, discipline: Discipline, policy: ChannelPolicy, label: &str) {
    let run = PipelineSpec::new(discipline)
        .source_vec(manuscript())
        .stage(Box::new(SpellCheck::new(DICTIONARY)))
        .tap(0, REPORT_NAME)
        .policy(policy)
        .batch(1)
        .build(kernel)
        .expect("build")
        .run(Duration::from_secs(10))
        .expect("run");

    println!("--- {label} ---");
    println!("primary output: {} line(s), unchanged", run.output.len());
    println!("report window:");
    for report in run.report(0, REPORT_NAME).unwrap_or(&[]) {
        println!("  {}", report.as_str().unwrap_or("?"));
    }
    println!(
        "entities: {}  invocations: {}  deferred replies: {}\n",
        run.entities, run.metrics.invocations, run.metrics.deferred_replies
    );
}

fn main() {
    let kernel = Kernel::new();
    println!("== report streams: Figure 3 vs Figure 4 ==\n");

    // Figure 3: write-only — reports are pushed to their own acceptor.
    run_one(
        &kernel,
        Discipline::WriteOnly { push_ahead: 0 },
        ChannelPolicy::Integer,
        "Figure 3: write-only, reports pushed",
    );

    // Figure 4: read-only — the report window reads channel `Report`,
    // identified by an integer channel id.
    run_one(
        &kernel,
        Discipline::ReadOnly { read_ahead: 0 },
        ChannelPolicy::Integer,
        "Figure 4: read-only, Read(ReportStream) via integer channel ids",
    );

    // Figure 4 hardened: capability channel identifiers. The wiring is
    // identical, but now the report channel's identifier is an unforgeable
    // UID obtained via GetChannel (§5's security refinement).
    run_one(
        &kernel,
        Discipline::ReadOnly { read_ahead: 0 },
        ChannelPolicy::Capability,
        "Figure 4 + capabilities: unforgeable channel identifiers",
    );

    kernel.shutdown();
}
