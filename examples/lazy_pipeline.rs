//! Laziness and read-ahead (§4).
//!
//! "In both cases no computation need be done until the result is
//! requested... No data flows until a sink is connected to the pipeline."
//! And the refinement: "each Eject in a pipeline should read some input
//! and buffer-up some output, and then suspend processing pending a
//! request for output."
//!
//! This example watches a counter inside the source: with a lazy pipeline
//! nothing is pulled until the sink attaches; with read-ahead, a bounded
//! amount is pre-pulled and no more.
//!
//! Run with: `cargo run --example lazy_pipeline`

use std::sync::atomic::Ordering;
use std::time::Duration;

use eden::core::Value;
use eden::kernel::Kernel;
use eden::transput::collector::Collector;
use eden::transput::read_only::{InputPort, PullFilterConfig, PullFilterEject};
use eden::transput::sink::SinkEject;
use eden::transput::source::{CountingSource, SourceEject, VecSource};
use eden::transput::transform::map_fn;

fn main() {
    let kernel = Kernel::new();
    println!("== laziness: no data flows until a sink connects ==\n");

    // A source that counts every record pulled out of it.
    let (counting, pulled) =
        CountingSource::new(VecSource::new((0..1000).map(Value::Int).collect()));
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(counting))))
        .expect("spawn source");

    // A lazy filter chain — active input happens only on demand.
    let square = map_fn("square", |v| {
        let i = v.as_int().unwrap_or(0);
        Value::Int(i * i)
    });
    let filter = kernel
        .spawn(Box::new(PullFilterEject::new(
            Box::new(square),
            InputPort::primary(source),
        )))
        .expect("spawn filter");

    std::thread::sleep(Duration::from_millis(100));
    println!(
        "pipeline built, no sink attached: {} record(s) pulled from the source",
        pulled.load(Ordering::Relaxed)
    );
    assert_eq!(pulled.load(Ordering::Relaxed), 0);

    // Attach the sink — "rather like starting a pump".
    let collector = Collector::null();
    kernel
        .spawn(Box::new(SinkEject::new(filter, 64, collector.clone())))
        .expect("spawn sink");
    collector
        .wait_done(Duration::from_secs(10))
        .expect("stream completes");
    println!(
        "sink attached and drained: {} record(s) pulled\n",
        pulled.load(Ordering::Relaxed)
    );

    println!("== read-ahead: bounded anticipation, then suspension ==\n");
    let (counting, pulled) =
        CountingSource::new(VecSource::new((0..1000).map(Value::Int).collect()));
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(counting))))
        .expect("spawn source");
    let read_ahead = 32;
    let _filter = kernel
        .spawn(Box::new(PullFilterEject::with_config(
            Box::new(map_fn("id", |v| v)),
            vec![InputPort::primary(source)],
            PullFilterConfig {
                read_ahead,
                batch: 8,
                ..Default::default()
            },
        )))
        .expect("spawn read-ahead filter");
    std::thread::sleep(Duration::from_millis(200));
    let pre = pulled.load(Ordering::Relaxed);
    println!("filter with read_ahead={read_ahead}, no sink: pre-pulled {pre} record(s)");
    assert!(pre > 0, "read-ahead must prefetch");
    assert!(
        pre <= read_ahead as u64 + 8,
        "prefetch must stay near the credit bound"
    );
    std::thread::sleep(Duration::from_millis(200));
    let later = pulled.load(Ordering::Relaxed);
    println!("after another 200ms: {later} record(s) — anticipation is bounded, not a pump");
    assert_eq!(pre, later);

    kernel.shutdown();
    println!("\nLazy filters are pure transformers; the sink is the pump (§4).");
}
