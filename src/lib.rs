//! # eden — an asymmetric stream communication system
//!
//! A Rust reproduction of Andrew P. Black, *An Asymmetric Stream
//! Communication System*, Proc. 9th ACM Symposium on Operating Systems
//! Principles (SOSP), 1983 — the Eden project's "read only" / "write only"
//! transput design.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`kernel`] — the Eden substrate: Ejects, invocation, activation,
//!   checkpointing ([`eden_kernel`]).
//! * [`transput`] — the paper's contribution: the stream protocol, channel
//!   identifiers, and the three communication disciplines
//!   ([`eden_transput`]).
//! * [`fs`] — files, directories and the bootstrap UnixFS as Ejects
//!   ([`eden_fs`]).
//! * [`filters`] — the utility filters of §3 as pure transforms
//!   ([`eden_filters`]).
//! * [`shell`] — a pipeline command language with channel redirection
//!   ([`eden_shell`]).
//! * [`core`] — UIDs, values, wire codec, errors, metrics ([`eden_core`]).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-claim-by-claim reproduction results.
//!
//! ```
//! use eden::kernel::Kernel;
//! use eden::shell::ShellEnv;
//!
//! let kernel = Kernel::new();
//! let run = ShellEnv::new(&kernel)
//!     .run("lines 'C old comment' '      CALL F(X)' | strip-comments")
//!     .unwrap();
//! assert_eq!(run.output_lines(), vec!["      CALL F(X)"]);
//! kernel.shutdown();
//! ```

pub use eden_core as core;
pub use eden_filters as filters;
pub use eden_fs as fs;
pub use eden_kernel as kernel;
pub use eden_shell as shell;
pub use eden_transput as transput;
