//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided — a multi-producer multi-consumer
//! FIFO channel implemented on `std::sync` primitives. The semantics the
//! Eden kernel depends on are preserved exactly:
//!
//! * `send` on a channel whose every [`channel::Receiver`] has been dropped
//!   fails with [`channel::SendError`], returning the message — this is how
//!   stale cached routes to exited coordinators are detected;
//! * a bounded channel parks the sender while full (passive-buffer flow
//!   control for Eject mailboxes);
//! * dropping the last [`channel::Sender`] wakes blocked receivers with
//!   a disconnect error.
//!
//! One extension over the real crate: [`channel::Sender::force_send`]
//! enqueues ignoring the capacity bound, so kernel control messages
//! (`Crash`, `Shutdown`) can never deadlock behind a full bounded mailbox.

#![allow(clippy::all)]

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        shared: Mutex<Shared<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn new(cap: Option<usize>) -> Arc<Chan<T>> {
            Arc::new(Chan {
                shared: Mutex::new(Shared {
                    queue: VecDeque::new(),
                    cap,
                    senders: 1,
                    receivers: 1,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            })
        }
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Clonable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(None);
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    /// A bounded FIFO channel: `send` blocks while `cap` messages queue.
    ///
    /// Unlike real crossbeam, `cap == 0` is treated as capacity 1 rather
    /// than a rendezvous channel (the workspace never uses zero).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(Some(cap.max(1)));
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    /// Error returned by [`Sender::send`]: all receivers are gone. Holds
    /// the unsent message.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is full; the message is returned.
        Full(T),
        /// All receivers are gone; the message is returned.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and all senders
    /// are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut shared = self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = shared.cap.is_some_and(|c| shared.queue.len() >= c);
                if !full {
                    shared.queue.push_back(msg);
                    drop(shared);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                shared = self
                    .chan
                    .not_full
                    .wait(shared)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Send without blocking; fails if full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut shared = self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            if shared.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if shared.cap.is_some_and(|c| shared.queue.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            shared.queue.push_back(msg);
            drop(shared);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Shim extension: enqueue ignoring the capacity bound. Never
        /// blocks; fails only when every receiver has been dropped. Used
        /// for kernel control messages that must outrank flow control.
        pub fn force_send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut shared = self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            if shared.receivers == 0 {
                return Err(SendError(msg));
            }
            shared.queue.push_back(msg);
            drop(shared);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut shared = self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = shared.queue.pop_front() {
                    drop(shared);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared = self
                    .chan
                    .not_empty
                    .wait(shared)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut shared = self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(msg) = shared.queue.pop_front() {
                drop(shared);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut shared = self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = shared.queue.pop_front() {
                    drop(shared);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .chan
                    .not_empty
                    .wait_timeout(shared, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                shared = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let senders = {
                let mut shared = self
                    .chan
                    .shared
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                shared.senders -= 1;
                shared.senders
            };
            if senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let receivers = {
                let mut shared = self
                    .chan
                    .shared
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                shared.receivers -= 1;
                shared.receivers
            };
            if receivers == 0 {
                // Wake parked senders so they observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> Error for SendError<T> {}

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    impl<T> Error for TrySendError<T> {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl Error for RecvError {}

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl Error for TryRecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }

    impl Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_parks_sender_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let t = thread::spawn(move || tx.send(3));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn force_send_ignores_capacity() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        tx.force_send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn parked_sender_observes_disconnect() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }
}
