//! Offline substitute for the `loom` model checker (API subset).
//!
//! The real loom explores every legal interleaving of a bounded
//! concurrent program by controlling its scheduler and memory model.
//! This shim cannot do that without the registry dependency, so it
//! substitutes the next-best honest semantics: [`model`] runs the test
//! body many times on real threads (`LOOM_ITERS` iterations, default
//! 64), and the `thread`/`sync` modules map to their `std`
//! counterparts, so a test written against loom's API becomes a
//! repeated stress test under the real scheduler.
//!
//! That is strictly weaker than model checking — a rare interleaving
//! can escape N probes but never escapes exhaustive search — which is
//! why the model tests also assert their invariants *per iteration*
//! rather than sampling, and why CI pins `LOOM_ITERS` high enough that
//! the seeded-bug forms of each test (see the tests in this crate) fail
//! reliably. Swapping in the real crate requires no source change in
//! the tests: the subset re-exported here matches loom's paths.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Threading primitives, scheduled by the OS rather than a model
/// checker. `spawn` yields once at thread start so short bodies do not
/// trivially serialise behind the spawner.
pub mod thread {
    pub use std::thread::{JoinHandle, yield_now};

    /// Like [`std::thread::spawn`], with an initial yield to encourage
    /// the spawner and the child to actually overlap.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            std::thread::yield_now();
            f()
        })
    }
}

/// Synchronisation primitives. Loom's types mirror `std`'s signatures
/// (`Mutex::lock` returns a `LockResult`, atomics take `Ordering`), so
/// re-exports are drop-in.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomic types with the orderings the tests exercise.
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicU8, AtomicU32, AtomicU64, AtomicUsize, Ordering, fence,
        };
    }
}

/// Low-level hints, matching `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

static LAST_RUN_ITERS: AtomicUsize = AtomicUsize::new(0);

fn configured_iters() -> usize {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Run `f` repeatedly — the shim's stand-in for loom's exhaustive
/// interleaving exploration. Iteration count comes from `LOOM_ITERS`
/// (default 64). Panics propagate on the iteration that raised them,
/// as with the real crate.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = configured_iters();
    LAST_RUN_ITERS.store(iters, Ordering::Relaxed);
    for _ in 0..iters {
        f();
    }
}

/// How many iterations the most recent [`model`] call ran (test hook).
pub fn last_run_iters() -> usize {
    LAST_RUN_ITERS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::sync::Arc;
    use super::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_runs_the_configured_iteration_count() {
        let runs = Arc::new(AtomicUsize::new(0));
        let seen = runs.clone();
        super::model(move || {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), super::last_run_iters());
        assert!(super::last_run_iters() >= 1);
    }

    #[test]
    fn shim_threads_really_interleave() {
        // A seeded-bug probe: unsynchronised check-then-act on a shared
        // counter must collide within the iteration budget, proving the
        // shim provides real concurrency rather than serial execution.
        let mut collided = false;
        for _ in 0..200 {
            let a = Arc::new(AtomicUsize::new(0));
            let b = a.clone();
            let t = super::thread::spawn(move || {
                let seen = b.load(Ordering::SeqCst);
                super::thread::yield_now();
                b.store(seen + 1, Ordering::SeqCst);
            });
            let seen = a.load(Ordering::SeqCst);
            super::thread::yield_now();
            a.store(seen + 1, Ordering::SeqCst);
            t.join().unwrap();
            if a.load(Ordering::SeqCst) == 1 {
                collided = true;
                break;
            }
        }
        assert!(collided, "threads never interleaved in 200 probes");
    }
}
