//! Offline stand-in for the `criterion` crate.
//!
//! A deliberately small benchmark harness with criterion's API shape:
//! groups, `BenchmarkId`, throughput annotation, and `Bencher::iter`.
//! Statistics are simpler than real criterion — each sample times a
//! batch of iterations and the median sample is reported — but the
//! numbers are honest wall-clock measurements, comparable run-to-run
//! on the same machine.
//!
//! Run with `cargo bench`. A positional command-line argument filters
//! benchmarks by substring, like real criterion.

#![allow(clippy::all)]

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver. One per bench binary.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip harness flags cargo passes (e.g. `--bench`); a bare
        // argument is a name filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.to_owned(), f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// Throughput annotation: reported as a rate alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark moves this many elements per iteration.
    Elements(u64),
    /// The benchmark moves this many bytes per iteration.
    Bytes(u64),
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group name supplies the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as an identifier.
pub trait IntoBenchmarkId {
    /// Convert to the display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// How long to warm up before measuring.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Target total measurement time across samples.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full) {
            return self;
        }

        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        while Instant::now() < warm_deadline {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
            if bencher.iters == 0 {
                break; // the closure never called iter(); nothing to time
            }
        }

        // Measurement: collect samples until the count is reached or the
        // time budget runs out (at least 2 samples either way).
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let budget = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
            if bencher.iters == 0 {
                eprintln!("{full:<55} (no iterations)");
                return self;
            }
            samples.push(bencher.elapsed / bencher.iters.max(1) as u32);
            if i >= 1 && Instant::now() > budget {
                break;
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(
                "  thrpt: {:>12}/s",
                format_count(n as f64 / median.as_secs_f64())
            ),
            Throughput::Bytes(n) => format!(
                "  thrpt: {:>10}B/s",
                format_count(n as f64 / median.as_secs_f64())
            ),
        });
        println!(
            "{full:<55} time: [{} median, {} best, {} samples]{}",
            format_duration(median),
            format_duration(best),
            samples.len(),
            rate.unwrap_or_default(),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn format_count(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called in a loop. The measured figure is the mean
    /// time per call within this sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // A fixed small batch per sample keeps heavyweight benchmarks
        // (whole pipelines) affordable while still amortizing timer
        // overhead for nanosecond-scale routines.
        let batch = 3u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("skipped", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 0);
    }
}
