//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use: `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, integer-range and regex-subset
//! string strategies, tuples, `prop_map`, `prop_recursive`, and
//! `collection::vec`.
//!
//! Differences from real proptest: no shrinking (failures report the
//! original inputs), and generation is deterministic per test function —
//! the seed derives from the test name, so failures reproduce exactly.
//! Set `PROPTEST_CASES` to change the default case count.

#![allow(clippy::all)]

#![warn(missing_docs)]

pub mod strategy;

pub mod arbitrary {
    //! `Arbitrary` and `any`, mirroring `proptest::arbitrary`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII with occasional multibyte code points.
            match rng.below(10) {
                0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            }
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length comes
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Generation from a small regex subset.
    //!
    //! Supported: literal characters, `.` (printable ASCII plus a couple
    //! of multibyte code points), character classes like `[a-zA-Z0-9 ]`,
    //! and the repetitions `{m,n}`, `{n}`, `*`, `+`, `?` — enough for the
    //! patterns the workspace's tests use (e.g. `"[ -~]{0,30}"`).

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A parsed pattern ready to generate strings.
    #[derive(Debug, Clone)]
    pub struct RegexGen {
        atoms: Vec<Atom>,
    }

    const DOT_EXTRAS: &[char] = &['é', 'λ', '→', '神'];

    impl RegexGen {
        /// Parse `pattern`, panicking on syntax outside the subset.
        pub fn parse(pattern: &str) -> RegexGen {
            let mut chars = pattern.chars().peekable();
            let mut atoms = Vec::new();
            while let Some(c) = chars.next() {
                let choices: Vec<char> = match c {
                    '.' => {
                        let mut v: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
                        v.extend_from_slice(DOT_EXTRAS);
                        v
                    }
                    '[' => {
                        let mut v = Vec::new();
                        let mut prev: Option<char> = None;
                        loop {
                            let c = chars
                                .next()
                                .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                            match c {
                                ']' => break,
                                '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                    let lo = prev.take().expect("range start");
                                    let hi = chars.next().expect("range end");
                                    assert!(lo <= hi, "inverted range in {pattern:?}");
                                    // `lo` is already in `v`; add the rest.
                                    let mut ch = lo;
                                    while ch < hi {
                                        ch = char::from_u32(ch as u32 + 1)
                                            .expect("char range");
                                        v.push(ch);
                                    }
                                }
                                c => {
                                    v.push(c);
                                    prev = Some(c);
                                }
                            }
                        }
                        assert!(!v.is_empty(), "empty class in {pattern:?}");
                        v
                    }
                    '\\' => {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                        vec![c]
                    }
                    c => vec![c],
                };
                let (min, max) = match chars.peek() {
                    Some('{') => {
                        chars.next();
                        let mut spec = String::new();
                        for c in chars.by_ref() {
                            if c == '}' {
                                break;
                            }
                            spec.push(c);
                        }
                        match spec.split_once(',') {
                            Some((m, n)) => {
                                let m: usize = m.trim().parse().expect("repeat min");
                                let n: usize = n.trim().parse().expect("repeat max");
                                (m, n)
                            }
                            None => {
                                let n: usize = spec.trim().parse().expect("repeat count");
                                (n, n)
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        (0, 8)
                    }
                    Some('+') => {
                        chars.next();
                        (1, 8)
                    }
                    Some('?') => {
                        chars.next();
                        (0, 1)
                    }
                    _ => (1, 1),
                };
                assert!(min <= max, "inverted repetition in {pattern:?}");
                atoms.push(Atom { choices, min, max });
            }
            RegexGen { atoms }
        }

        /// Generate one matching string.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(128);
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fixed for a given test name.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u8..10, s in "[a-z]{1,4}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg(<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    let __inputs: ::std::string::String = [
                        $( format!("  {} = {:?}", stringify!($arg), &$arg) ),+
                    ].join("\n");
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property failed at case {}/{}: {}\ninputs:\n{}",
                            __case + 1, __config.cases, __msg, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l,
            ));
        }
    }};
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_test("regex");
        let pat = "[a-z]{1,4}";
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&pat, &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        let space_class = "[ -~]{0,30}";
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&space_class, &mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn ranges_and_oneof_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let strat = prop_oneof![
            (0u8..3).prop_map(|x| x as i64),
            Just(100i64),
            (10i64..=12).prop_map(|x| x),
        ];
        let mut saw_just = false;
        for _ in 0..300 {
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!((0..3).contains(&v) || v == 100 || (10..=12).contains(&v));
            saw_just |= v == 100;
        }
        assert!(saw_just);
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::for_test("vec");
        let strat = crate::collection::vec(("[ab]{1,2}", 0u8..4), 2..5);
        for _ in 0..100 {
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            for (s, n) in &v {
                assert!(!s.is_empty() && s.len() <= 2);
                assert!(*n < 4);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..50, s in "[a-z]{0,3}") {
            prop_assert!(x < 50);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            fn inner(x in 10u8..20) {
                prop_assert!(x < 15, "x was {}", x);
            }
        }
        inner();
    }
}
