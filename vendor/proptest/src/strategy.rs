//! The [`Strategy`] trait and combinators.
//!
//! A strategy is a recipe for generating values. Unlike real proptest
//! there is no shrinking; `generate` produces one value directly.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::string::RegexGen;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one more level. At each
    /// level generation chooses between recursing and falling back to
    /// this (leaf) strategy, to a maximum of `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erase the concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

// Allow `&strategy` wherever a strategy is expected (the `proptest!`
// macro generates through a reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Arc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among strategies with the same value type
/// (what `prop_oneof!` builds).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// Strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    recurse: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V: fmt::Debug + 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        // Build the strategy tower bottom-up: each level is a coin flip
        // between the leaf strategy and one more level of structure.
        let mut level = self.base.clone();
        for _ in 0..self.depth {
            let next = (self.recurse)(level);
            level = Union::new(vec![self.base.clone(), next]).boxed();
        }
        level.generate(rng)
    }
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Arc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<V> fmt::Debug for Recursive<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Recursive {{ depth: {} }}", self.depth)
    }
}

/// String generation from a regex-subset pattern.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::parse(self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
