//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the small API subset it actually uses, implemented on
//! top of `std::sync`. Semantics match parking_lot where they matter here:
//! no lock poisoning (a panic while holding a guard does not poison the
//! lock for other threads), guards deref to the data, and `Condvar::wait`
//! takes `&mut MutexGuard`.

#![allow(clippy::all)]

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new unlocked rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar::wait_for`]: did the wait time out?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] (parking_lot style:
/// `wait` takes `&mut MutexGuard`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
