//! Offline stand-in for the `rand` crate.
//!
//! Provides `thread_rng`, `rngs::StdRng` + `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over integer ranges — the surface the workspace
//! uses. The generator is SplitMix64: not cryptographic, but excellent
//! statistical quality for UID nonces and benchmark workload synthesis.

#![allow(clippy::all)]

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Convenience extensions over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform random value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_in<G: RngCore>(self, rng: &mut G) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method
/// simplified to 128-bit multiply-shift).
fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A reproducible generator seeded from a small value.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: mixes `state` and advances it.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

fn splitmix64_output(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Namespaced concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The standard reproducible generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng {
                state: splitmix64_output(state ^ 0x6A09_E667_F3BC_C909),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state);
            splitmix64_output(self.state)
        }
    }
}

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = Cell::new(initial_thread_seed());
}

fn initial_thread_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // Mix in the address of a stack local and the thread id so threads
    // spawned in the same nanosecond still diverge.
    let local = 0u8;
    let addr = &local as *const u8 as u64;
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    splitmix64_output(now ^ addr.rotate_left(32) ^ tid)
}

/// Handle to this thread's generator (fresh entropy per thread).
#[derive(Debug)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        THREAD_RNG_STATE.with(|s| {
            let mut state = s.get();
            splitmix64(&mut state);
            s.set(state);
            splitmix64_output(state)
        })
    }
}

/// This thread's generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_stream_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&x));
            let y: usize = rng.gen_range(0..17);
            assert!(y < 17);
            let z: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn thread_rngs_diverge() {
        let a = thread_rng().next_u64();
        let b = std::thread::spawn(|| thread_rng().next_u64())
            .join()
            .unwrap();
        assert_ne!(a, b);
    }
}
