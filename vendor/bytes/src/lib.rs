//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer (an `Arc<[u8]>`
//! window) and [`BytesMut`] a growable builder that freezes into one.
//! Only the API surface the workspace uses is provided; `slice` is O(1)
//! and shares the underlying allocation like the real crate.

#![allow(clippy::all)]

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An O(1) sub-window sharing the same allocation.
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of range for Bytes of length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// View as a plain byte slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.vec.push(b);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    /// If `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.vec.len(), "split_to {at} out of range");
        let rest = self.vec.split_off(at);
        BytesMut {
            vec: std::mem::replace(&mut self.vec, rest),
        }
    }

    /// Take the entire contents, leaving this builder empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            vec: std::mem::take(&mut self.vec),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", Bytes::copy_from_slice(&self.vec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(b"hello world".to_vec());
        let w = b.slice(6..11);
        assert_eq!(&w[..], b"world");
        assert_eq!(w.len(), 5);
        let inner = w.slice(1..3);
        assert_eq!(&inner[..], b"or");
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        m.extend_from_slice(b"def");
        let first = m.split_to(2);
        assert_eq!(&first.freeze()[..], b"ab");
        let rest = m.split().freeze();
        assert_eq!(&rest[..], b"cdef");
        assert!(m.is_empty());
    }

    #[test]
    fn eq_and_hash_follow_content() {
        use std::collections::HashSet;
        let a = Bytes::from(b"xyz".to_vec());
        let b = Bytes::from(b"__xyz__".to_vec()).slice(2..5);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
