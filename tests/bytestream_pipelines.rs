//! Byte-stream pipelines end to end (§6): Unix-style byte chunks bridged
//! to record filters and back, in every discipline.

use std::time::Duration;

use eden::core::Value;
use eden::filters::{Grep, LineNumber};
use eden::kernel::Kernel;
use eden::transput::bytestream::{concat_bytes, BytesSource, LineJoiner, LineSplitter, Rechunker};
use eden::transput::{Discipline, PipelineSpec};
use proptest::prelude::*;

fn document() -> Vec<u8> {
    let mut text = String::new();
    for i in 0..200 {
        if i % 4 == 0 {
            text.push_str(&format!("ERROR at step {i}\n"));
        } else {
            text.push_str(&format!("ok step {i}\n"));
        }
    }
    text.into_bytes()
}

#[test]
fn byte_grep_pipeline_all_disciplines() {
    // The Unix classic: bytes in, grep'd and numbered text out — except
    // the filters never pump in the asymmetric disciplines.
    let kernel = Kernel::new();
    let mut outputs = Vec::new();
    for discipline in [
        Discipline::ReadOnly { read_ahead: 8 },
        Discipline::WriteOnly { push_ahead: 8 },
        Discipline::Conventional { buffer_capacity: 16 },
    ] {
        let run = PipelineSpec::new(discipline)
            .source(Box::new(BytesSource::new(document(), 113))) // Awkward chunk size on purpose.
            .stage(Box::new(LineSplitter::new()))
            .stage(Box::new(Grep::matching("ERROR")))
            .stage(Box::new(LineNumber::new()))
            .stage(Box::new(LineJoiner::new()))
            .batch(8)
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(30))
            .unwrap();
        let bytes = concat_bytes(run.output.iter());
        let text = String::from_utf8(bytes.to_vec()).unwrap();
        assert_eq!(text.lines().count(), 50, "{}", discipline.label());
        assert!(text.lines().next().unwrap().contains("ERROR at step 0"));
        outputs.push(text);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    kernel.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn split_join_identity_over_chunked_bytes(
        lines in proptest::collection::vec("[a-zA-Z0-9 ]{0,25}", 0..30),
        chunk in 1usize..64,
        batch in 1usize..8,
    ) {
        // For any newline-terminated text and any chunking, splitting then
        // re-joining through a real pipeline is the identity.
        let mut text = String::new();
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        let original = text.into_bytes();
        let kernel = Kernel::new();
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source(Box::new(BytesSource::new(original.clone(), chunk)))
            .stage(Box::new(LineSplitter::new()))
            .stage(Box::new(LineJoiner::new()))
            .batch(batch)
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(30))
            .unwrap();
        let rebuilt = concat_bytes(run.output.iter());
        prop_assert_eq!(rebuilt.as_ref(), original.as_slice());
        kernel.shutdown();
    }

    #[test]
    fn rechunk_preserves_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        in_chunk in 1usize..48,
        out_chunk in 1usize..48,
    ) {
        let kernel = Kernel::new();
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source(Box::new(BytesSource::new(payload.clone(), in_chunk)))
            .stage(Box::new(Rechunker::new(out_chunk)))
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(30))
            .unwrap();
        let rebuilt = concat_bytes(run.output.iter());
        prop_assert_eq!(rebuilt.as_ref(), payload.as_slice());
        // All chunks except the last are exactly out_chunk bytes.
        for v in run.output.iter().rev().skip(1) {
            prop_assert_eq!(v.as_bytes().expect("bytes").len(), out_chunk);
        }
        kernel.shutdown();
    }
}

#[test]
fn bytes_and_records_mix_in_one_stream() {
    // §6: homogeneity is a protocol convention, not an enforcement; a
    // stray record passes through the byte stages untouched.
    let kernel = Kernel::new();
    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_vec(vec![
            Value::bytes(&b"one\n"[..]),
            Value::Int(42),
            Value::bytes(&b"two\n"[..]),
        ])
        .stage(Box::new(LineSplitter::new()))
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(10))
        .unwrap();
    assert_eq!(
        run.output,
        vec![Value::str("one"), Value::Int(42), Value::str("two")]
    );
    kernel.shutdown();
}
