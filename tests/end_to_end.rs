//! Cross-crate scenarios: files, directories, filters and pipelines
//! composed the way a user of the 1983 system would have composed them.

use std::time::Duration;

use eden::core::op::ops;
use eden::core::{EdenError, Value};
use eden::filters::{Compare, SpellCheck, StreamEditor, WordCount};
use eden::fs::{
    add_entry, lookup, register_fs_types, DirConcatenatorEject, DirectoryEject, FileEject, MemFs,
    UnixFsEject,
};
use eden::kernel::{Kernel, KernelConfig, StableStore};
use eden::transput::collector::Collector;
use eden::transput::read_only::{FanInMode, InputPort, PullFilterConfig, PullFilterEject};
use eden::transput::sink::SinkEject;
use eden::transput::source::{SourceEject, VecSource};
use eden::transput::{Discipline, PipelineSpec};

fn lines(ls: &[&str]) -> Vec<Value> {
    ls.iter().map(|l| Value::str(*l)).collect()
}

fn drain(kernel: &Kernel, source: eden::core::Uid) -> Vec<Value> {
    let c = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::new(source, 8, c.clone())))
        .unwrap();
    c.wait_done(Duration::from_secs(15)).unwrap()
}

#[test]
fn file_through_filters_into_file() {
    // A complete workflow: look a file up by name, pipe it through
    // filters, write the result into another file, survive a crash.
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let home = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let draft = kernel
        .spawn(Box::new(FileEject::from_lines([
            "C draft header",
            "once upon a time",
            "C scratch note",
            "THE END",
        ])))
        .unwrap();
    let published = kernel.spawn(Box::new(FileEject::new())).unwrap();
    add_entry(&kernel, home, "draft", draft).unwrap();
    add_entry(&kernel, home, "published", published).unwrap();

    let found = lookup(&kernel, home, "draft").unwrap();
    let reader = kernel
        .invoke(found, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_eject(reader)
        .stage(Box::new(eden::filters::StripComments::fortran()))
        .stage(Box::new(eden::filters::CaseFold::lower()))
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(15))
        .unwrap();
    assert_eq!(run.output, lines(&["once upon a time", "the end"]));

    // Write results into the published file (WriteFrom = active input by
    // the file), then crash it and read it back from its checkpoint.
    let staging = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
            run.output.clone(),
        )))))
        .unwrap();
    kernel
        .invoke(
            published,
            ops::WRITE_FROM,
            Value::record([("source", Value::Uid(staging))]),
        ).wait()
        .unwrap();
    kernel.crash(published).unwrap();
    let reader = kernel
        .invoke(published, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    assert_eq!(drain(&kernel, reader), run.output);
    kernel.shutdown();
}

#[test]
fn editor_command_stream_is_fan_in_at_setup() {
    // §5: "stream editors that have a command input as well as a text
    // input." The wirer reads the command stream (active input — trivial
    // in the read-only discipline) and builds the editor with it.
    let kernel = Kernel::new();
    let command_file = kernel
        .spawn(Box::new(FileEject::from_lines(["s/colour/color/", "d/DRAFT/"])))
        .unwrap();
    let commands_reader = kernel
        .invoke(command_file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let command_lines = drain(&kernel, commands_reader);
    let script: Vec<&str> = command_lines.iter().map(|v| v.as_str().unwrap()).collect();
    let editor = StreamEditor::from_command_lines(script).unwrap();

    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_vec(lines(&["the colour red", "DRAFT do not ship", "done"]))
        .stage(Box::new(editor))
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(15))
        .unwrap();
    assert_eq!(run.output, lines(&["the color red", "done"]));
    kernel.shutdown();
}

#[test]
fn compare_two_files_with_zip_fan_in() {
    // §5's file comparison program: one filter, two input UIDs.
    let kernel = Kernel::new();
    let left = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "alpha", "beta", "gamma",
        ])))))
        .unwrap();
    let right = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "alpha", "BETA", "gamma",
        ])))))
        .unwrap();
    let comparator = kernel
        .spawn(Box::new(PullFilterEject::with_config(
            Box::new(Compare::new()),
            vec![InputPort::primary(left), InputPort::primary(right)],
            PullFilterConfig {
                fan_in: FanInMode::Zip,
                ..Default::default()
            },
        )))
        .unwrap();
    let out = drain(&kernel, comparator);
    let text: Vec<&str> = out.iter().map(|v| v.as_str().unwrap()).collect();
    assert!(text[0].starts_with("2c2"), "diff at row 2: {text:?}");
    assert!(text.last().unwrap().contains("1 difference(s)"));
    kernel.shutdown();
}

#[test]
fn crash_mid_pipeline_is_reported_not_hung() {
    let kernel = Kernel::new();
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(
            eden::transput::source::FnSource::new(1_000_000, |i| Value::Int(i as i64)),
        ))))
        .unwrap();
    let filter = kernel
        .spawn(Box::new(PullFilterEject::new(
            Box::new(eden::transput::transform::Identity),
            InputPort::primary(source),
        )))
        .unwrap();
    let collector = Collector::null();
    kernel
        .spawn(Box::new(SinkEject::new(filter, 16, collector.clone())))
        .unwrap();
    // Bounded wait: if the stream stalls before the crash is even
    // injected, fail with a diagnosis instead of hanging the suite.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while collector.records_seen() < 100 {
        assert!(
            std::time::Instant::now() < deadline,
            "stream stalled at {} records before the crash",
            collector.records_seen()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    kernel.crash(filter).unwrap();
    let err = collector.wait_done(Duration::from_secs(15)).unwrap_err();
    assert!(
        matches!(err, EdenError::EjectCrashed(_) | EdenError::NoSuchEject(_)),
        "unexpected: {err}"
    );
    kernel.shutdown();
}

#[test]
fn whole_system_restart_preserves_filing_tree() {
    let store = StableStore::new();
    let (root, file) = {
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store.clone());
        register_fs_types(&kernel);
        let root = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
        let file = kernel
            .spawn(Box::new(FileEject::from_lines(["persistent truth"])))
            .unwrap();
        add_entry(&kernel, root, "truth.txt", file).unwrap();
        kernel.invoke(file, ops::CHECKPOINT, Value::Unit).wait().unwrap();
        kernel.invoke(root, ops::CHECKPOINT, Value::Unit).wait().unwrap();
        kernel.shutdown();
        (root, file)
    };
    // "Reboot": fresh kernel, same stable store, re-register types.
    let kernel = Kernel::with_stable_store(KernelConfig::default(), store);
    register_fs_types(&kernel);
    assert_eq!(lookup(&kernel, root, "truth.txt").unwrap(), file);
    let reader = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    assert_eq!(drain(&kernel, reader), lines(&["persistent truth"]));
    kernel.shutdown();
}

#[test]
fn unixfs_pipeline_roundtrip_all_disciplines() {
    let fs = MemFs::with_files([("in.txt", "keep\nC drop\nkeep too\n")]);
    let kernel = Kernel::new();
    let ufs = kernel
        .spawn(Box::new(UnixFsEject::new(fs.clone())))
        .unwrap();
    for (i, discipline) in [
        Discipline::ReadOnly { read_ahead: 4 },
        Discipline::WriteOnly { push_ahead: 2 },
        Discipline::Conventional { buffer_capacity: 4 },
    ]
    .into_iter()
    .enumerate()
    {
        let stream = kernel
            .invoke(ufs, ops::NEW_STREAM, eden::fs::new_stream_arg("in.txt")).wait()
            .unwrap()
            .as_uid()
            .unwrap();
        let run = PipelineSpec::new(discipline)
            .source_eject(stream)
            .stage(Box::new(eden::filters::StripComments::fortran()))
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(15))
            .unwrap();
        assert_eq!(run.output, lines(&["keep", "keep too"]), "discipline {i}");
    }
    kernel.shutdown();
}

#[test]
fn path_like_lookup_through_concatenator_feeds_pipeline() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let bin = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let local = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["found via PATH"])))
        .unwrap();
    add_entry(&kernel, local, "data", file).unwrap();
    let path = kernel
        .spawn(Box::new(DirConcatenatorEject::new(vec![bin, local])))
        .unwrap();
    let found = lookup(&kernel, path, "data").unwrap();
    let reader = kernel
        .invoke(found, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    assert_eq!(drain(&kernel, reader), lines(&["found via PATH"]));
    kernel.shutdown();
}

#[test]
fn spellcheck_reports_survive_all_disciplines() {
    // Figures 3 and 4 produce the same windows.
    let kernel = Kernel::new();
    let mut captured = Vec::new();
    for discipline in [
        Discipline::WriteOnly { push_ahead: 0 },
        Discipline::ReadOnly { read_ahead: 0 },
        Discipline::Conventional { buffer_capacity: 8 },
    ] {
        let run = PipelineSpec::new(discipline)
            .source_vec(lines(&["the catt sat"]))
            .stage(Box::new(SpellCheck::new(["the", "sat"])))
            .tap(0, eden::transput::protocol::REPORT_NAME)
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(15))
            .unwrap();
        let report = run
            .report(0, eden::transput::protocol::REPORT_NAME)
            .unwrap()
            .to_vec();
        captured.push(report);
    }
    assert_eq!(captured[0], captured[1]);
    assert_eq!(captured[1], captured[2]);
    assert!(captured[0][0].as_str().unwrap().contains("catt"));
    kernel.shutdown();
}

#[test]
fn wc_over_long_stream() {
    let kernel = Kernel::new();
    let n = 5_000;
    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 32 })
        .source(Box::new(eden::transput::source::FnSource::new(n, |i| {
            Value::str(format!("line {i} with words"))
        })))
        .stage(Box::new(WordCount::new()))
        .batch(64)
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(30))
        .unwrap();
    assert_eq!(run.output.len(), 1);
    assert_eq!(
        run.output[0].field("lines").unwrap().as_int().unwrap(),
        n as i64
    );
    kernel.shutdown();
}
