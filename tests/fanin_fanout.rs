//! The fan-in / fan-out duality of §5, measured:
//!
//! | discipline   | fan-in | fan-out |
//! |--------------|--------|---------|
//! | read-only    | natural | only via channels |
//! | write-only   | impossible (writers indistinguishable) | natural |
//! | conventional | natural | natural |

use std::time::Duration;

use eden::core::op::ops;
use eden::core::Value;
use eden::filters::Tee;
use eden::kernel::Kernel;
use eden::transput::collector::Collector;
use eden::transput::protocol::{ChannelId, GetChannelRequest, WriteRequest};
use eden::transput::read_only::{FanInMode, InputPort, PullFilterConfig, PullFilterEject};
use eden::transput::sink::{AcceptorSinkEject, SinkEject};
use eden::transput::source::{SourceEject, VecSource};
use eden::transput::transform::Identity;
use eden::transput::write_only::{OutputPort, OutputWiring, PushFilterEject, PushSourceEject};

fn int_source(kernel: &Kernel, values: std::ops::Range<i64>) -> eden::core::Uid {
    kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
            values.map(Value::Int).collect(),
        )))))
        .unwrap()
}

#[test]
fn read_only_fan_in_merges_m_sources() {
    // "If F needs n inputs, it maintains n UIDs" — concatenating and
    // round-robin merges of three sources.
    let kernel = Kernel::new();
    for (mode, expected_concat) in [
        (FanInMode::Concatenate, true),
        (FanInMode::RoundRobin, false),
    ] {
        let inputs = vec![
            InputPort::primary(int_source(&kernel, 0..3)),
            InputPort::primary(int_source(&kernel, 10..13)),
            InputPort::primary(int_source(&kernel, 20..23)),
        ];
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(Identity),
                inputs,
                PullFilterConfig {
                    fan_in: mode,
                    batch: 1,
                    ..Default::default()
                },
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 1, collector.clone())))
            .unwrap();
        let got = collector.wait_done(Duration::from_secs(15)).unwrap();
        assert_eq!(got.len(), 9, "{mode:?}");
        if expected_concat {
            assert_eq!(
                got.iter().map(|v| v.as_int().unwrap()).collect::<Vec<_>>(),
                vec![0, 1, 2, 10, 11, 12, 20, 21, 22]
            );
        } else {
            // Round robin: 0,10,20,1,11,21,2,12,22.
            assert_eq!(
                got.iter().map(|v| v.as_int().unwrap()).collect::<Vec<_>>(),
                vec![0, 10, 20, 1, 11, 21, 2, 12, 22]
            );
        }
    }
    kernel.shutdown();
}

#[test]
fn read_only_without_channels_cannot_fan_out() {
    // "Arranging for two or more Ejects to make Read invocations on F does
    // not help: F cannot distinguish this from one Eject making the same
    // total number of Read invocations." Two sinks on the same primary
    // channel split the stream instead of each receiving a copy.
    let kernel = Kernel::new();
    let source = int_source(&kernel, 0..100);
    let filter = kernel
        .spawn(Box::new(PullFilterEject::new(
            Box::new(Identity),
            InputPort::primary(source),
        )))
        .unwrap();
    let c1 = Collector::new();
    let c2 = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::new(filter, 4, c1.clone())))
        .unwrap();
    kernel
        .spawn(Box::new(SinkEject::new(filter, 4, c2.clone())))
        .unwrap();
    let got1 = c1.wait_done(Duration::from_secs(15)).unwrap();
    let got2 = c2.wait_done(Duration::from_secs(15)).unwrap();
    // Split, not duplicated: together they hold each record exactly once.
    assert_eq!(got1.len() + got2.len(), 100);
    let mut merged: Vec<i64> = got1
        .iter()
        .chain(got2.iter())
        .map(|v| v.as_int().unwrap())
        .collect();
    merged.sort_unstable();
    assert_eq!(merged, (0..100).collect::<Vec<_>>());
    kernel.shutdown();
}

#[test]
fn read_only_fan_out_via_tee_channels() {
    // The §5 fix: explicit channels. Tee emits on `Copy`; two sinks read
    // two *different* channels and each gets the full stream.
    let kernel = Kernel::new();
    let source = int_source(&kernel, 0..20);
    let filter = kernel
        .spawn(Box::new(PullFilterEject::new(
            Box::new(Tee),
            InputPort::primary(source),
        )))
        .unwrap();
    let copy_id = ChannelId::try_from(
        &kernel
            .invoke(
                filter,
                ops::GET_CHANNEL,
                GetChannelRequest {
                    name: eden::filters::COPY_NAME.to_owned(),
                }
                .to_value(),
            ).wait()
            .unwrap(),
    )
    .unwrap();
    let main = Collector::new();
    let copy = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::on_channel(
            filter,
            copy_id,
            4,
            copy.clone(),
        )))
        .unwrap();
    kernel
        .spawn(Box::new(SinkEject::new(filter, 4, main.clone())))
        .unwrap();
    let main_items = main.wait_done(Duration::from_secs(15)).unwrap();
    let copy_items = copy.wait_done(Duration::from_secs(15)).unwrap();
    assert_eq!(main_items.len(), 20);
    assert_eq!(main_items, copy_items);
    kernel.shutdown();
}

#[test]
fn write_only_fan_out_is_natural() {
    let kernel = Kernel::new();
    let mut collectors = Vec::new();
    let mut wiring = OutputWiring::default();
    for _ in 0..3 {
        let c = Collector::new();
        let sink = kernel
            .spawn(Box::new(AcceptorSinkEject::new(c.clone())))
            .unwrap();
        wiring.add(
            eden::transput::protocol::OUTPUT_NAME,
            OutputPort::primary(sink),
        );
        collectors.push(c);
    }
    let filter = kernel
        .spawn(Box::new(PushFilterEject::new(Box::new(Identity), wiring)))
        .unwrap();
    let source = kernel
        .spawn(Box::new(PushSourceEject::new(
            Box::new(VecSource::new((0..10).map(Value::Int).collect())),
            OutputWiring::primary_to(OutputPort::primary(filter)),
            4,
        )))
        .unwrap();
    kernel.invoke(source, "Start", Value::Unit).wait().unwrap();
    let first = collectors[0].wait_done(Duration::from_secs(15)).unwrap();
    for c in &collectors[1..] {
        assert_eq!(c.wait_done(Duration::from_secs(15)).unwrap(), first);
    }
    assert_eq!(first.len(), 10);
    kernel.shutdown();
}

#[test]
fn write_only_fan_in_merges_indistinguishably() {
    // The dual failure: multiple writers into one acceptor cannot be
    // separated — their records interleave in one stream.
    let kernel = Kernel::new();
    let collector = Collector::new();
    let sink = kernel
        .spawn(Box::new(AcceptorSinkEject::new(collector.clone())))
        .unwrap();
    let mut starts = Vec::new();
    for base in [0i64, 100, 200] {
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((base..base + 5).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(sink)),
                1,
            )))
            .unwrap();
        starts.push(kernel.invoke(src, "Start", Value::Unit));
    }
    // One writer's `end` closes the stream for everyone — writers cannot
    // be told apart, so neither can their ends. Wait for the stream to
    // close, then check what arrived is a prefix-merge of the writers.
    let got = collector.wait_done(Duration::from_secs(15)).unwrap();
    let mut seen: Vec<i64> = got.iter().map(|v| v.as_int().unwrap()).collect();
    assert!(!seen.is_empty());
    seen.dedup();
    // Every record belongs to one of the three writers; no attribution
    // is possible from the acceptor's point of view.
    assert!(seen
        .iter()
        .all(|v| (0..5).contains(v) || (100..105).contains(v) || (200..205).contains(v)));
    for s in starts {
        let _ = s.wait_timeout(Duration::from_secs(15));
    }
    kernel.shutdown();
}

#[test]
fn conventional_supports_both_directions() {
    // Active reads + active writes: a pump filter reading one pipe can
    // write two pipes, and two pumps can write one pipe.
    use eden::transput::conventional::{PassiveBufferEject, PumpFilterEject};
    let kernel = Kernel::new();
    let pipe_in = kernel.spawn(Box::new(PassiveBufferEject::new(16))).unwrap();
    let pipe_a = kernel.spawn(Box::new(PassiveBufferEject::new(16))).unwrap();
    let pipe_b = kernel.spawn(Box::new(PassiveBufferEject::new(16))).unwrap();
    let mut wiring = OutputWiring::default();
    wiring.add(eden::transput::protocol::OUTPUT_NAME, OutputPort::primary(pipe_a));
    wiring.add(eden::transput::protocol::OUTPUT_NAME, OutputPort::primary(pipe_b));
    kernel
        .spawn(Box::new(PumpFilterEject::new(
            Box::new(Identity),
            pipe_in,
            wiring,
            4,
        )))
        .unwrap();
    // Feed the input pipe directly.
    kernel
        .invoke(
            pipe_in,
            ops::WRITE,
            WriteRequest::last((0..6).map(Value::Int).collect()).to_value(),
        ).wait()
        .unwrap();
    let ca = Collector::new();
    let cb = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::new(pipe_a, 4, ca.clone())))
        .unwrap();
    kernel
        .spawn(Box::new(SinkEject::new(pipe_b, 4, cb.clone())))
        .unwrap();
    assert_eq!(
        ca.wait_done(Duration::from_secs(15)).unwrap(),
        cb.wait_done(Duration::from_secs(15)).unwrap()
    );
    kernel.shutdown();
}
