//! The density plane's behaviour contract: the N-worker parked-mailbox
//! scheduler must be invisible to correctness. Ten thousand Ejects on a
//! two-worker pool see every invocation exactly once; a parked idle
//! population stays responsive while a pipeline hammers the same pool;
//! and the `threads` fallback mode produces byte-identical pipeline
//! output, so differential runs can always arbitrate a scheduler bug.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden::core::op::ops;
use eden::core::{Uid, Value};
use eden::filters;
use eden::filters::DurableFilterEject;
use eden::fs::{register_fs_types, FileEject};
use eden::kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle, SchedulerConfig,
};
use eden::transput::protocol::{Batch, TransferRequest};
use eden::transput::transform::Transform;
use eden::transput::{ChannelPolicy, Discipline, PipelineSpec};

/// A deliberately starved pool: every test here runs its whole cast on
/// two workers, so any lost wakeup or unfair queue shows up as a hang
/// or a wrong count rather than hiding behind spare threads.
fn two_worker_kernel() -> Kernel {
    Kernel::builder()
        .scheduler(SchedulerConfig {
            workers: 2,
            ..SchedulerConfig::default()
        })
        .build()
}

struct Accumulator {
    total: i64,
}

impl EjectBehavior for Accumulator {
    fn type_name(&self) -> &'static str {
        "Accumulator"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Add" => {
                self.total += inv.arg.as_int().unwrap_or(0);
                reply.reply(Ok(Value::Int(self.total)));
            }
            "Total" => reply.reply(Ok(Value::Int(self.total))),
            _ => reply.reply(Err(eden_core::EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// 10k resident Ejects multiplexed onto two workers: three full rounds
/// of increments land exactly once each, and crashing a slice of the
/// population leaves the survivors' counts untouched.
#[test]
fn ten_thousand_ejects_on_two_workers_see_each_invocation_once() {
    const EJECTS: usize = 10_000;
    const ROUNDS: i64 = 3;
    let kernel = two_worker_kernel();
    let uids: Vec<Uid> = (0..EJECTS)
        .map(|_| {
            kernel
                .spawn(Box::new(Accumulator { total: 0 }))
                .expect("spawn accumulator")
        })
        .collect();
    for round in 1..=ROUNDS {
        let pending: Vec<_> = uids
            .iter()
            .map(|&uid| kernel.invoke(uid, "Add", Value::Int(1)))
            .collect();
        for reply in pending {
            assert_eq!(reply.wait(), Ok(Value::Int(round)), "double or lost delivery");
        }
    }
    // Crash a slice; exactly-once for the survivors must be unaffected.
    for &uid in uids.iter().step_by(97) {
        kernel.crash(uid).expect("crash");
    }
    for (i, &uid) in uids.iter().enumerate() {
        if i % 97 != 0 {
            assert_eq!(
                kernel.invoke(uid, "Total", Value::Unit).wait(),
                Ok(Value::Int(ROUNDS)),
                "survivor count drifted after neighbours crashed"
            );
        }
    }
    kernel.shutdown();
}

/// Fans invocations out to a fixed cast from *worker context*, so every
/// wake lands on the producing worker's LIFO slot and deque rather than
/// the external-producer injector. `Blast(round)` increments the whole
/// cast and replies with how many replies came back equal to `round` —
/// i.e. how many targets have seen exactly `round` increments.
struct Fanout {
    targets: Vec<Uid>,
}

impl EjectBehavior for Fanout {
    fn type_name(&self) -> &'static str {
        "Fanout"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Blast" => {
                let round = inv.arg.as_int().unwrap_or(0);
                let pending: Vec<_> = self
                    .targets
                    .iter()
                    .map(|&uid| ctx.invoke(uid, "Add", Value::Int(1)))
                    .collect();
                let mut exact = 0i64;
                for p in pending {
                    if p.wait() == Ok(Value::Int(round)) {
                        exact += 1;
                    }
                }
                reply.reply(Ok(Value::Int(exact)));
            }
            _ => reply.reply(Err(eden_core::EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// Forced work stealing: one worker produces all 10k wakes (the fanout
/// runs in worker context, so they land on its LIFO slot and deque, not
/// the injector), and the other three workers can only get work by
/// stealing. Every increment must still land exactly once, and the
/// steal counter must show the thieves actually fed off the producer.
#[test]
fn forced_stealing_delivers_ten_thousand_ejects_exactly_once() {
    const EJECTS: usize = 10_000;
    const ROUNDS: i64 = 2;
    let kernel = Kernel::builder()
        .scheduler(SchedulerConfig {
            workers: 4,
            ..SchedulerConfig::default()
        })
        .build();
    let targets: Vec<Uid> = (0..EJECTS)
        .map(|_| {
            kernel
                .spawn(Box::new(Accumulator { total: 0 }))
                .expect("spawn accumulator")
        })
        .collect();
    let fanout = kernel
        .spawn(Box::new(Fanout { targets }))
        .expect("spawn fanout");

    let steals_before = kernel.metrics_snapshot().sched.sched_steals;
    for round in 1..=ROUNDS {
        assert_eq!(
            kernel.invoke(fanout, "Blast", Value::Int(round)).wait(),
            Ok(Value::Int(EJECTS as i64)),
            "round {round}: some target saw a lost or doubled increment"
        );
    }
    let steals_after = kernel.metrics_snapshot().sched.sched_steals;
    assert!(
        steals_after > steals_before,
        "no steals recorded ({steals_before} -> {steals_after}): \
         the hot producer's backlog was never distributed"
    );
    kernel.shutdown();
}

fn transfer(kernel: &Kernel, target: Uid, max: usize) -> Batch {
    Batch::from_value(
        kernel
            .invoke(target, ops::TRANSFER, TransferRequest::primary(max).to_value())
            .wait()
            .expect("transfer"),
    )
    .expect("batch")
}

/// Crash/recovery on the starved pool: a durable cursor crashed
/// mid-stream reactivates at its checkpoint — each record delivered
/// exactly once, none replayed, none skipped.
#[test]
fn crash_recovery_on_two_worker_pool_is_exactly_once() {
    let kernel = two_worker_kernel();
    register_fs_types(&kernel);
    DurableFilterEject::register(&kernel);
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(
            (0..6).map(|i| format!("record {i}")),
        )))
        .expect("file");
    let cursor = kernel
        .invoke(file, "OpenDurable", Value::Unit)
        .wait()
        .expect("open durable")
        .as_uid()
        .expect("cursor uid");
    let first = transfer(&kernel, cursor, 2);
    assert_eq!(first.items.len(), 2);
    kernel.crash(cursor).expect("crash cursor");
    let next = transfer(&kernel, cursor, 1);
    assert_eq!(next.items[0].as_str().unwrap(), "record 2");
    kernel.shutdown();
}

/// Fairness: a hot depth-4 pipeline saturating the pool must not starve
/// a parked population — the fairness budget forces the hot Ejects back
/// into the queue (FIFO through the injector, never back onto a LIFO
/// slot), so idle streams' tail latency stays bounded instead of
/// waiting for the pipeline to finish. Parameterised over the pool size
/// because the LIFO slot changes shape with it: one worker is the
/// worst case for slot monopolisation, eight exercises the slot-per-
/// worker layout with thieves present.
fn idle_p99_bounded_under_hot_pipeline(workers: usize) {
    const IDLE: usize = 1_000;
    let kernel = Kernel::builder()
        .scheduler(SchedulerConfig {
            workers,
            ..SchedulerConfig::default()
        })
        .build();
    let idle: Vec<Uid> = (0..IDLE)
        .map(|_| {
            kernel
                .spawn(Box::new(Accumulator { total: 0 }))
                .expect("spawn idle stream")
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let hot = {
        let kernel = kernel.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let mut builder = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 8 })
                    .source_vec((0..2_000).map(Value::Int).collect())
                    .batch(8)
                    .policy(ChannelPolicy::Integer);
                for _ in 0..4 {
                    builder = builder.stage(Box::new(eden::transput::transform::Identity));
                }
                let run = builder
                    .build(&kernel)
                    .expect("hot pipeline builds")
                    .run(Duration::from_secs(60))
                    .expect("hot pipeline completes");
                assert_eq!(run.records_out, 2_000);
            }
        })
    };

    let mut latencies: Vec<Duration> = Vec::with_capacity(IDLE);
    for &uid in &idle {
        let t0 = Instant::now();
        assert_eq!(
            kernel.invoke(uid, "Total", Value::Unit).wait(),
            Ok(Value::Int(0)),
            "idle stream starved out entirely"
        );
        latencies.push(t0.elapsed());
    }
    stop.store(true, Ordering::Release);
    hot.join().expect("hot pipeline thread");

    latencies.sort();
    let p99 = latencies[IDLE * 99 / 100 - 1];
    // Generous for a loaded single-core CI box; the failure mode being
    // excluded is "idle p99 ≈ the hot pipeline's whole runtime".
    assert!(
        p99 < Duration::from_secs(2),
        "idle stream p99 {p99:?} unbounded under hot pipeline ({workers} workers)"
    );
    kernel.shutdown();
}

#[test]
fn idle_streams_stay_responsive_under_hot_pipeline_one_worker() {
    idle_p99_bounded_under_hot_pipeline(1);
}

#[test]
fn idle_streams_stay_responsive_under_hot_pipeline_two_workers() {
    idle_p99_bounded_under_hot_pipeline(2);
}

#[test]
fn idle_streams_stay_responsive_under_hot_pipeline_eight_workers() {
    idle_p99_bounded_under_hot_pipeline(8);
}

fn pipeline_output(kernel: &Kernel, discipline: Discipline) -> Vec<Value> {
    let input: Vec<Value> = (0..200).map(|i| Value::str(format!("line {i}"))).collect();
    let mut builder = PipelineSpec::new(discipline)
        .source_vec(input)
        .batch(4)
        .policy(ChannelPolicy::Integer);
    let stages: [Box<dyn Transform>; 2] = [
        Box::new(filters::CaseFold::upper()),
        Box::new(filters::LineNumber::new()),
    ];
    for stage in stages {
        builder = builder.stage(stage);
    }
    builder
        .build(kernel)
        .expect("pipeline builds")
        .run(Duration::from_secs(60))
        .expect("pipeline completes")
        .output
}

/// Differential arbitration: the `threads` fallback and the scheduler
/// produce byte-identical primary streams across all three disciplines.
#[test]
fn threads_and_scheduler_modes_produce_identical_output() {
    for discipline in [
        Discipline::ReadOnly { read_ahead: 8 },
        Discipline::WriteOnly { push_ahead: 8 },
        Discipline::Conventional { buffer_capacity: 16 },
    ] {
        let threads_kernel = Kernel::builder().threads_mode().build();
        let threads_out = pipeline_output(&threads_kernel, discipline);
        threads_kernel.shutdown();

        let sched_kernel = two_worker_kernel();
        let sched_out = pipeline_output(&sched_kernel, discipline);
        sched_kernel.shutdown();

        assert_eq!(
            threads_out, sched_out,
            "{discipline:?}: scheduler output diverged from threads mode"
        );
        assert_eq!(
            format!("{threads_out:?}"),
            format!("{sched_out:?}"),
            "{discipline:?}: rendered bytes diverged"
        );
    }
}
