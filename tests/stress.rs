//! Stress: configurations well beyond the paper's figures — deep
//! pipelines, many concurrent pipelines on one kernel, large records,
//! byte-stream bridging — to shake out deadlocks and leaks the small
//! cases cannot reach.

use std::time::Duration;

use eden::core::Value;
use eden::kernel::Kernel;
use eden::transput::bytestream::{concat_bytes, BytesSource, LineJoiner, LineSplitter, Rechunker};
use eden::transput::transform::{map_fn, Identity};
use eden::transput::{Discipline, PipelineSpec};

#[test]
fn very_deep_pipeline() {
    // 48 stages; the analytic invocation count (n+1 per datum) must still
    // hold exactly, and nothing may deadlock.
    let kernel = Kernel::new();
    let depth = 48usize;
    let items = 50i64;
    let mut builder = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_vec((0..items).map(Value::Int).collect())
        .batch(1);
    for _ in 0..depth {
        builder = builder.stage(Box::new(Identity));
    }
    let run = builder
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(60))
        .unwrap();
    assert_eq!(run.records_out, items as u64);
    assert_eq!(run.entities, depth + 2);
    assert_eq!(run.metrics.invocations, (depth as u64 + 1) * items as u64);
    assert_eq!(kernel.eject_count(), 0);
    kernel.shutdown();
}

#[test]
fn deep_concurrent_pipeline_all_disciplines() {
    let kernel = Kernel::new();
    for discipline in [
        Discipline::ReadOnly { read_ahead: 16 },
        Discipline::WriteOnly { push_ahead: 8 },
        Discipline::Conventional { buffer_capacity: 4 },
    ] {
        let mut builder = PipelineSpec::new(discipline)
            .source_vec((0..500).map(Value::Int).collect())
            .batch(8)
            .null_sink();
        for _ in 0..24 {
            builder = builder.stage(Box::new(Identity));
        }
        let run = builder
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(60))
            .unwrap();
        assert_eq!(run.records_out, 0); // Null sink keeps no items...
        kernel.shutdown_check(discipline);
    }
    kernel.shutdown();
}

trait ShutdownCheck {
    fn shutdown_check(&self, discipline: Discipline);
}

impl ShutdownCheck for Kernel {
    fn shutdown_check(&self, discipline: Discipline) {
        assert_eq!(
            self.eject_count(),
            0,
            "pipeline leak under {}",
            discipline.label()
        );
    }
}

#[test]
fn null_sink_counts_via_collector() {
    let kernel = Kernel::new();
    let pipeline = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
        .source_vec((0..100).map(Value::Int).collect())
        .null_sink()
        .build(&kernel)
        .unwrap();
    let collector = pipeline.collector().clone();
    let run = pipeline.run(Duration::from_secs(30)).unwrap();
    assert!(run.output.is_empty());
    assert_eq!(collector.records_seen(), 100);
    kernel.shutdown();
}

#[test]
fn many_concurrent_pipelines_share_one_kernel() {
    let kernel = Kernel::new();
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let kernel = kernel.clone();
            std::thread::spawn(move || {
                let run = PipelineSpec::new(if i % 2 == 0 {
                        Discipline::ReadOnly { read_ahead: 8 }
                    } else {
                        Discipline::WriteOnly { push_ahead: 8 }
                    },
                )
                .source_vec((0..300).map(|j| Value::Int(i * 1000 + j)).collect())
                .stage(Box::new(map_fn("inc", |v| {
                    Value::Int(v.as_int().unwrap_or(0) + 1)
                })))
                .stage(Box::new(Identity))
                .batch(16)
                .build(&kernel)
                .unwrap()
                .run(Duration::from_secs(60))
                .unwrap();
                assert_eq!(run.records_out, 300);
                assert_eq!(run.output[0], Value::Int(i * 1000 + 1));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("pipeline thread");
    }
    assert_eq!(kernel.eject_count(), 0, "all pipelines must tear down");
    kernel.shutdown();
}

#[test]
fn large_records_flow() {
    // 1 MiB of payload through a byte pipeline with splitting/joining.
    let kernel = Kernel::new();
    let mut text = String::new();
    for i in 0..8_192 {
        text.push_str(&format!("line number {i} with some padding text\n"));
    }
    let original = text.clone().into_bytes();
    let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 4 })
        .source(Box::new(BytesSource::new(original.clone(), 4096)))
        .stage(Box::new(LineSplitter::new()))
        .stage(Box::new(LineJoiner::new()))
        .stage(Box::new(Rechunker::new(1024)))
        .batch(8)
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(60))
        .unwrap();
    let rebuilt = concat_bytes(run.output.iter());
    assert_eq!(rebuilt.len(), original.len());
    assert_eq!(rebuilt.as_ref(), original.as_slice());
    assert!(run.metrics.bytes_total() as usize >= 2 * original.len());
    kernel.shutdown();
}

#[test]
fn repeated_build_teardown_cycles() {
    // 100 build/run/teardown cycles on one kernel: no Eject accumulation.
    let kernel = Kernel::new();
    for i in 0..100 {
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec((0..5).map(Value::Int).collect())
            .stage(Box::new(Identity))
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(30))
            .unwrap();
        assert_eq!(run.records_out, 5, "cycle {i}");
    }
    assert_eq!(kernel.eject_count(), 0);
    kernel.shutdown();
}
