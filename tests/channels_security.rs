//! The §5 security story, end to end.
//!
//! "Because our channel identifiers are supplied to Ejects (i.e. user
//! code) rather than system code, there is a risk that a dishonest
//! programmer might read from someone else's channel. In other words, if E
//! is told to read from F's channel 1, nothing prevents it from reading
//! from F's channel 2 as well. One way of overcoming this problem is to
//! use UIDs as channel identifiers: because UIDs cannot be forged, the
//! only Ejects which are able to make valid ReadonChannel requests of F
//! are those to which a channel identifier has been given explicitly."

use std::time::Duration;

use eden::core::op::ops;
use eden::core::{EdenError, Uid, Value};
use eden::filters::SpellCheck;
use eden::kernel::Kernel;
use eden::transput::channels::ChannelPolicy;
use eden::transput::protocol::{
    Batch, ChannelId, GetChannelRequest, TransferRequest, OUTPUT_NAME, REPORT_NAME,
};
use eden::transput::read_only::{InputPort, PullFilterConfig, PullFilterEject};
use eden::transput::source::{SourceEject, VecSource};

fn spawn_spellcheck_filter(kernel: &Kernel, policy: ChannelPolicy) -> Uid {
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "secret xyzzy word",
        ])))))
        .unwrap();
    kernel
        .spawn(Box::new(PullFilterEject::with_config(
            Box::new(SpellCheck::new(["secret", "word"])),
            vec![InputPort::primary(source)],
            PullFilterConfig {
                policy,
                ..Default::default()
            },
        )))
        .unwrap()
}

fn transfer(kernel: &Kernel, target: Uid, channel: ChannelId) -> eden::core::Result<Batch> {
    kernel
        .invoke(
            target,
            ops::TRANSFER,
            TransferRequest { channel, max: 8, pos: None }.to_value(),
        ).wait()
        .and_then(Batch::from_value)
}

#[test]
fn integer_channels_are_guessable() {
    // The dishonest programmer: told only about channel 0, it reads
    // channel 1 (the report stream) too — and succeeds.
    let kernel = Kernel::new();
    let filter = spawn_spellcheck_filter(&kernel, ChannelPolicy::Integer);
    // Drain the primary (legitimate access drives the stream)...
    let primary = transfer(&kernel, filter, ChannelId::Number(0)).unwrap();
    assert!(!primary.is_empty());
    // ...then snoop the report channel with a guessed identifier.
    let snooped = transfer(&kernel, filter, ChannelId::Number(1)).unwrap();
    assert!(
        snooped.items.iter().any(|v| v.as_str().unwrap().contains("xyzzy")),
        "integer channels offer no protection: {snooped:?}"
    );
    kernel.shutdown();
}

#[test]
fn capability_channels_refuse_guessed_identifiers() {
    let kernel = Kernel::new();
    let filter = spawn_spellcheck_filter(&kernel, ChannelPolicy::Capability);
    // Guessed integers fail...
    for n in 0..4 {
        let err = transfer(&kernel, filter, ChannelId::Number(n)).unwrap_err();
        assert!(
            matches!(err, EdenError::NoSuchChannel(_)),
            "guessed integer {n} must not resolve: {err}"
        );
    }
    // ...and so do forged UIDs.
    let err = transfer(&kernel, filter, ChannelId::Cap(Uid::fresh())).unwrap_err();
    assert!(matches!(err, EdenError::NotAuthorized(_)));
    kernel.shutdown();
}

#[test]
fn capability_channels_work_when_granted() {
    // The honest connection protocol: ask GetChannel, pass the UID on.
    let kernel = Kernel::new();
    let filter = spawn_spellcheck_filter(&kernel, ChannelPolicy::Capability);
    let output_cap = kernel
        .invoke(
            filter,
            ops::GET_CHANNEL,
            GetChannelRequest {
                name: OUTPUT_NAME.to_owned(),
            }
            .to_value(),
        ).wait()
        .unwrap();
    let output_id = ChannelId::try_from(&output_cap).unwrap();
    assert!(matches!(output_id, ChannelId::Cap(_)));
    let batch = transfer(&kernel, filter, output_id).unwrap();
    assert_eq!(batch.items.len(), 1);

    let report_cap = kernel
        .invoke(
            filter,
            ops::GET_CHANNEL,
            GetChannelRequest {
                name: REPORT_NAME.to_owned(),
            }
            .to_value(),
        ).wait()
        .unwrap();
    let report_id = ChannelId::try_from(&report_cap).unwrap();
    let report = transfer(&kernel, filter, report_id).unwrap();
    assert!(report.items[0].as_str().unwrap().contains("xyzzy"));
    kernel.shutdown();
}

#[test]
fn channel_capabilities_are_per_channel() {
    // Holding the Output capability grants nothing on Report.
    let kernel = Kernel::new();
    let filter = spawn_spellcheck_filter(&kernel, ChannelPolicy::Capability);
    let output_id = ChannelId::try_from(
        &kernel
            .invoke(
                filter,
                ops::GET_CHANNEL,
                GetChannelRequest {
                    name: OUTPUT_NAME.to_owned(),
                }
                .to_value(),
            ).wait()
            .unwrap(),
    )
    .unwrap();
    // The Output capability reads Output...
    transfer(&kernel, filter, output_id).unwrap();
    // ...but is not the Report capability — and there is no way to derive
    // one from the other.
    let report_id = ChannelId::try_from(
        &kernel
            .invoke(
                filter,
                ops::GET_CHANNEL,
                GetChannelRequest {
                    name: REPORT_NAME.to_owned(),
                }
                .to_value(),
            ).wait()
            .unwrap(),
    )
    .unwrap();
    assert_ne!(output_id, report_id);
    kernel.shutdown();
}

#[test]
fn get_channel_unknown_name_fails() {
    let kernel = Kernel::new();
    let filter = spawn_spellcheck_filter(&kernel, ChannelPolicy::Capability);
    let err = kernel
        .invoke(
            filter,
            ops::GET_CHANNEL,
            GetChannelRequest {
                name: "Backdoor".to_owned(),
            }
            .to_value(),
        ).wait()
        .unwrap_err();
    assert!(matches!(err, EdenError::NoSuchChannel(_)));
    kernel.shutdown();
}

#[test]
fn uid_of_invoker_is_not_visible_to_ejects() {
    // §5: "the effect of a particular invocation ought to depend only on
    // its parameters, and not on the identity of the invoker." Two
    // different callers making the same Transfer get consecutive slices
    // of the same stream — the source cannot tell them apart.
    let kernel = Kernel::new();
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
            (0..4).map(Value::Int).collect(),
        )))))
        .unwrap();
    let a = transfer(&kernel, source, ChannelId::output()).map(|b| b.items);
    let kernel2 = kernel.clone();
    let b = std::thread::spawn(move || {
        transfer(&kernel2, source, ChannelId::output()).map(|b| b.items)
    })
    .join()
    .unwrap();
    let mut all = a.unwrap();
    all.extend(b.unwrap());
    all.sort_by_key(|v| v.as_int().unwrap());
    assert_eq!(all, (0..4).map(Value::Int).collect::<Vec<_>>());
    kernel.shutdown();
    let _ = Duration::from_secs(0);
}
