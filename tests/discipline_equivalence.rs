//! The central correctness property of the reproduction: the three
//! communication disciplines (and their concurrency variants) are
//! *behaviourally equivalent* — for any input and any filter chain they
//! produce exactly the primary stream that the pure transforms produce
//! offline. The paper's argument (§5: "both are equally convenient in the
//! case of a pipeline of pure filters") depends on this.

use std::time::Duration;

use eden::core::Value;
use eden::filters;
use eden::kernel::Kernel;
use eden::transput::transform::{apply_chain_offline, Transform};
use eden::transput::{ChannelPolicy, Discipline, PipelineSpec, PipelineRun};
use proptest::prelude::*;

/// The filter chain vocabulary for random pipelines.
#[derive(Debug, Clone)]
enum FilterPick {
    Copy,
    StripComments,
    GrepKeep(String),
    GrepDrop(String),
    Upcase,
    Downcase,
    LineNumber,
    Head(u64),
    Tail(u64),
    Sort,
    Uniq,
    SqueezeBlank,
    RleRoundtrip,
}

impl FilterPick {
    fn build(&self) -> Vec<Box<dyn Transform>> {
        match self {
            FilterPick::Copy => vec![Box::new(eden::transput::transform::Identity)],
            FilterPick::StripComments => vec![Box::new(filters::StripComments::fortran())],
            FilterPick::GrepKeep(p) => vec![Box::new(filters::Grep::matching(p))],
            FilterPick::GrepDrop(p) => vec![Box::new(filters::Grep::deleting(p))],
            FilterPick::Upcase => vec![Box::new(filters::CaseFold::upper())],
            FilterPick::Downcase => vec![Box::new(filters::CaseFold::lower())],
            FilterPick::LineNumber => vec![Box::new(filters::LineNumber::new())],
            FilterPick::Head(n) => vec![Box::new(filters::Head::new(*n))],
            FilterPick::Tail(n) => vec![Box::new(filters::Tail::new(*n as usize))],
            FilterPick::Sort => vec![Box::new(filters::SortLines::new())],
            FilterPick::Uniq => vec![Box::new(filters::Uniq::new())],
            FilterPick::SqueezeBlank => vec![Box::new(filters::SqueezeBlank)],
            FilterPick::RleRoundtrip => vec![
                Box::new(filters::RleEncode::new()),
                Box::new(filters::RleDecode::new()),
            ],
        }
    }
}

fn filter_strategy() -> impl Strategy<Value = FilterPick> {
    prop_oneof![
        Just(FilterPick::Copy),
        Just(FilterPick::StripComments),
        "[a-c]{1,2}".prop_map(FilterPick::GrepKeep),
        "[a-c]{1,2}".prop_map(FilterPick::GrepDrop),
        Just(FilterPick::Upcase),
        Just(FilterPick::Downcase),
        Just(FilterPick::LineNumber),
        (0u64..12).prop_map(FilterPick::Head),
        (0u64..12).prop_map(FilterPick::Tail),
        Just(FilterPick::Sort),
        Just(FilterPick::Uniq),
        Just(FilterPick::SqueezeBlank),
        Just(FilterPick::RleRoundtrip),
    ]
}

fn input_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-cC ]{0,12}", 0..25)
}

fn run_full(
    kernel: &Kernel,
    discipline: Discipline,
    policy: ChannelPolicy,
    input: &[String],
    picks: &[FilterPick],
    batch: usize,
    batch_max: usize,
) -> PipelineRun {
    let mut builder = PipelineSpec::new(discipline)
        .source_vec(input.iter().map(|l| Value::str(l.clone())).collect())
        .batch(batch)
        .adaptive_batch(batch_max)
        .policy(policy);
    for pick in picks {
        for t in pick.build() {
            builder = builder.stage(t);
        }
    }
    builder
        .build(kernel)
        .expect("build")
        .run(Duration::from_secs(30))
        .expect("run")
}

fn run_pipeline(
    kernel: &Kernel,
    discipline: Discipline,
    policy: ChannelPolicy,
    input: &[String],
    picks: &[FilterPick],
    batch: usize,
) -> Vec<Value> {
    run_full(kernel, discipline, policy, input, picks, batch, 0).output
}

fn offline(input: &[String], picks: &[FilterPick]) -> Vec<Value> {
    let mut chain: Vec<Box<dyn Transform>> = picks.iter().flat_map(|p| p.build()).collect();
    apply_chain_offline(
        &mut chain,
        input.iter().map(|l| Value::str(l.clone())).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_discipline_matches_functional_semantics(
        input in input_strategy(),
        picks in proptest::collection::vec(filter_strategy(), 0..4),
        batch in 1usize..6,
    ) {
        let expected = offline(&input, &picks);
        let kernel = Kernel::new();
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::ReadOnly { read_ahead: 8 },
            Discipline::WriteOnly { push_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 4 },
            Discipline::Conventional { buffer_capacity: 4 },
        ] {
            let got = run_pipeline(
                &kernel,
                discipline,
                ChannelPolicy::Integer,
                &input,
                &picks,
                batch,
            );
            prop_assert_eq!(
                &got,
                &expected,
                "discipline {} diverged (batch {})",
                discipline.label(),
                batch
            );
        }
        kernel.shutdown();
    }

    #[test]
    fn capability_policy_is_transparent(
        input in input_strategy(),
        picks in proptest::collection::vec(filter_strategy(), 0..3),
    ) {
        // §5: capability channels change who *may* read, not what is read.
        let expected = offline(&input, &picks);
        let kernel = Kernel::new();
        let got = run_pipeline(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            ChannelPolicy::Capability,
            &input,
            &picks,
            3,
        );
        prop_assert_eq!(got, expected);
        kernel.shutdown();
    }

    #[test]
    fn adaptive_batching_is_transparent(
        input in input_strategy(),
        picks in proptest::collection::vec(filter_strategy(), 0..4),
        batch in 1usize..5,
    ) {
        // Opening the batch dial changes how many records ride each
        // invocation, never which records come out.
        let expected = offline(&input, &picks);
        let kernel = Kernel::new();
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::ReadOnly { read_ahead: 8 },
            Discipline::WriteOnly { push_ahead: 4 },
            Discipline::Conventional { buffer_capacity: 4 },
        ] {
            let run = run_full(
                &kernel,
                discipline,
                ChannelPolicy::Integer,
                &input,
                &picks,
                batch,
                48,
            );
            prop_assert_eq!(
                &run.output,
                &expected,
                "adaptive {} diverged (batch {}..48)",
                discipline.label(),
                batch
            );
        }
        kernel.shutdown();
    }

    #[test]
    fn read_only_formula_is_exact_under_caching(
        depth in 0usize..5,
        records in 0usize..40,
        batch in 1usize..7,
    ) {
        // §4: n+1 invocations move a batch end to end. With k records in
        // batches of b that is (n+1)·⌈k/b⌉ Transfers (one round even when
        // empty) — and route caching must not change the count by a
        // single invocation: hits make delivery cheaper, not rarer.
        let input: Vec<String> = (0..records).map(|i| format!("r{i}")).collect();
        let picks = vec![FilterPick::Copy; depth];
        let kernel = Kernel::new();
        let run = run_full(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            ChannelPolicy::Integer,
            &input,
            &picks,
            batch,
            0,
        );
        kernel.shutdown();
        let rounds = records.div_ceil(batch).max(1) as u64;
        let expected = (depth as u64 + 1) * rounds;
        prop_assert_eq!(
            run.metrics.invocations,
            expected,
            "(n+1)·⌈k/b⌉ violated at n={}, k={}, b={}",
            depth,
            records,
            batch
        );
        // Every Transfer went through a route cache: one cold miss per
        // pulling stage, hits for the rest.
        prop_assert_eq!(run.metrics.route_cache_hits + run.metrics.route_cache_misses, expected);
        if rounds >= 2 {
            prop_assert!(run.metrics.route_cache_hits > 0, "repeat pulls never hit the cache");
        }
    }

    #[test]
    fn read_only_formula_survives_the_adaptive_dial(
        depth in 0usize..4,
        records in 0usize..30,
        batch in 1usize..5,
    ) {
        // Opening the dial lets every hop carry fatter batches, so the
        // n+1 structure pins the count between (n+1)·⌈k/max⌉ (dial fully
        // open from the first pull) and (n+1)·⌈k/b⌉ (dial never moved).
        // Crucially the cache cannot push it *below* the structural
        // floor: a hit is still one metered invocation.
        const MAX: usize = 64;
        let input: Vec<String> = (0..records).map(|i| format!("r{i}")).collect();
        let picks = vec![FilterPick::Copy; depth];
        let kernel = Kernel::new();
        let run = run_full(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            ChannelPolicy::Integer,
            &input,
            &picks,
            batch,
            MAX,
        );
        kernel.shutdown();
        let per_level_lo = records.div_ceil(MAX).max(1) as u64;
        let per_level_hi = records.div_ceil(batch).max(1) as u64;
        let levels = depth as u64 + 1;
        prop_assert!(
            run.metrics.invocations >= levels * per_level_lo
                && run.metrics.invocations <= levels * per_level_hi,
            "adaptive invocations {} outside [{}, {}] at n={}, k={}, b={}",
            run.metrics.invocations,
            levels * per_level_lo,
            levels * per_level_hi,
            depth,
            records,
            batch
        );
    }

    #[test]
    fn conventional_formula_holds_under_caching(
        depth in 0usize..4,
        records in 0usize..25,
    ) {
        // §4's other half: 2n+2 invocations per datum at batch 1, plus
        // the Start control invocation. Buffers may add a bounded number
        // of empty end-of-stream transfers (reader racing the final
        // write) — constant per stage, never per datum.
        let input: Vec<String> = (0..records).map(|i| format!("r{i}")).collect();
        let picks = vec![FilterPick::Copy; depth];
        let kernel = Kernel::new();
        let run = run_full(
            &kernel,
            Discipline::Conventional { buffer_capacity: 4 },
            ChannelPolicy::Integer,
            &input,
            &picks,
            1,
            0,
        );
        kernel.shutdown();
        let expected = (2 * depth as u64 + 2) * (records.max(1) as u64) + 1;
        let slack = (2 * depth as u64 + 3) * 2 + 1;
        // Pump processes start transferring at spawn, before the builder
        // snapshots its metrics baseline: each of the k filter pumps and
        // the sink may get its first (parking) Transfer metered into the
        // setup phase instead of the data phase. Bounded by k+1, never
        // per datum.
        let early = depth as u64 + 1;
        prop_assert!(
            run.metrics.invocations + early >= expected,
            "caching swallowed invocations: {} < {} at n={}, k={}",
            run.metrics.invocations,
            expected,
            depth,
            records
        );
        prop_assert!(
            run.metrics.invocations <= expected + slack,
            "{} > {}+{} at n={}, k={}",
            run.metrics.invocations,
            expected,
            slack,
            depth,
            records
        );
    }
}
