//! The central correctness property of the reproduction: the three
//! communication disciplines (and their concurrency variants) are
//! *behaviourally equivalent* — for any input and any filter chain they
//! produce exactly the primary stream that the pure transforms produce
//! offline. The paper's argument (§5: "both are equally convenient in the
//! case of a pipeline of pure filters") depends on this.

use std::time::Duration;

use eden::core::Value;
use eden::filters;
use eden::kernel::Kernel;
use eden::transput::transform::{apply_chain_offline, Transform};
use eden::transput::{ChannelPolicy, Discipline, PipelineBuilder};
use proptest::prelude::*;

/// The filter chain vocabulary for random pipelines.
#[derive(Debug, Clone)]
enum FilterPick {
    Copy,
    StripComments,
    GrepKeep(String),
    GrepDrop(String),
    Upcase,
    Downcase,
    LineNumber,
    Head(u64),
    Tail(u64),
    Sort,
    Uniq,
    SqueezeBlank,
    RleRoundtrip,
}

impl FilterPick {
    fn build(&self) -> Vec<Box<dyn Transform>> {
        match self {
            FilterPick::Copy => vec![Box::new(eden::transput::transform::Identity)],
            FilterPick::StripComments => vec![Box::new(filters::StripComments::fortran())],
            FilterPick::GrepKeep(p) => vec![Box::new(filters::Grep::matching(p))],
            FilterPick::GrepDrop(p) => vec![Box::new(filters::Grep::deleting(p))],
            FilterPick::Upcase => vec![Box::new(filters::CaseFold::upper())],
            FilterPick::Downcase => vec![Box::new(filters::CaseFold::lower())],
            FilterPick::LineNumber => vec![Box::new(filters::LineNumber::new())],
            FilterPick::Head(n) => vec![Box::new(filters::Head::new(*n))],
            FilterPick::Tail(n) => vec![Box::new(filters::Tail::new(*n as usize))],
            FilterPick::Sort => vec![Box::new(filters::SortLines::new())],
            FilterPick::Uniq => vec![Box::new(filters::Uniq::new())],
            FilterPick::SqueezeBlank => vec![Box::new(filters::SqueezeBlank)],
            FilterPick::RleRoundtrip => vec![
                Box::new(filters::RleEncode::new()),
                Box::new(filters::RleDecode::new()),
            ],
        }
    }
}

fn filter_strategy() -> impl Strategy<Value = FilterPick> {
    prop_oneof![
        Just(FilterPick::Copy),
        Just(FilterPick::StripComments),
        "[a-c]{1,2}".prop_map(FilterPick::GrepKeep),
        "[a-c]{1,2}".prop_map(FilterPick::GrepDrop),
        Just(FilterPick::Upcase),
        Just(FilterPick::Downcase),
        Just(FilterPick::LineNumber),
        (0u64..12).prop_map(FilterPick::Head),
        (0u64..12).prop_map(FilterPick::Tail),
        Just(FilterPick::Sort),
        Just(FilterPick::Uniq),
        Just(FilterPick::SqueezeBlank),
        Just(FilterPick::RleRoundtrip),
    ]
}

fn input_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-cC ]{0,12}", 0..25)
}

fn run_pipeline(
    kernel: &Kernel,
    discipline: Discipline,
    policy: ChannelPolicy,
    input: &[String],
    picks: &[FilterPick],
    batch: usize,
) -> Vec<Value> {
    let mut builder = PipelineBuilder::new(kernel, discipline)
        .source_vec(input.iter().map(|l| Value::str(l.clone())).collect())
        .batch(batch)
        .policy(policy);
    for pick in picks {
        for t in pick.build() {
            builder = builder.stage(t);
        }
    }
    builder
        .build()
        .expect("build")
        .run(Duration::from_secs(30))
        .expect("run")
        .output
}

fn offline(input: &[String], picks: &[FilterPick]) -> Vec<Value> {
    let mut chain: Vec<Box<dyn Transform>> = picks.iter().flat_map(|p| p.build()).collect();
    apply_chain_offline(
        &mut chain,
        input.iter().map(|l| Value::str(l.clone())).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_discipline_matches_functional_semantics(
        input in input_strategy(),
        picks in proptest::collection::vec(filter_strategy(), 0..4),
        batch in 1usize..6,
    ) {
        let expected = offline(&input, &picks);
        let kernel = Kernel::new();
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::ReadOnly { read_ahead: 8 },
            Discipline::WriteOnly { push_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 4 },
            Discipline::Conventional { buffer_capacity: 4 },
        ] {
            let got = run_pipeline(
                &kernel,
                discipline,
                ChannelPolicy::Integer,
                &input,
                &picks,
                batch,
            );
            prop_assert_eq!(
                &got,
                &expected,
                "discipline {} diverged (batch {})",
                discipline.label(),
                batch
            );
        }
        kernel.shutdown();
    }

    #[test]
    fn capability_policy_is_transparent(
        input in input_strategy(),
        picks in proptest::collection::vec(filter_strategy(), 0..3),
    ) {
        // §5: capability channels change who *may* read, not what is read.
        let expected = offline(&input, &picks);
        let kernel = Kernel::new();
        let got = run_pipeline(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            ChannelPolicy::Capability,
            &input,
            &picks,
            3,
        );
        prop_assert_eq!(got, expected);
        kernel.shutdown();
    }
}
