//! Durable pipelines: §1's checkpoint contract applied to an entire
//! in-flight stream — durable read cursor → durable filter — surviving
//! Eject crashes and whole-kernel restart, including over an on-disk
//! stable store.

use eden::core::op::ops;
use eden::core::{Uid, Value};
use eden::filters::{DurableFilterEject, FilterSpec};
use eden::fs::{register_fs_types, FileEject};
use eden::kernel::{Kernel, KernelConfig, StableStore};
use eden::transput::protocol::{Batch, TransferRequest};

fn register_all(kernel: &Kernel) {
    register_fs_types(kernel);
    DurableFilterEject::register(kernel);
}

fn transfer(kernel: &Kernel, target: Uid, max: usize) -> Batch {
    Batch::from_value(
        kernel
            .invoke(target, ops::TRANSFER, TransferRequest::primary(max).to_value()).wait()
            .expect("transfer"),
    )
    .expect("batch")
}

fn durable_chain(kernel: &Kernel, lines: i64) -> (Uid, Uid) {
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(
            (0..lines).map(|i| format!("record {i}")),
        )))
        .expect("file");
    let cursor = kernel
        .invoke(file, "OpenDurable", Value::Unit).wait()
        .expect("open durable")
        .as_uid()
        .expect("cursor uid");
    let filter = kernel
        .spawn(Box::new(
            DurableFilterEject::new(FilterSpec::new("line-number"), cursor, 2).expect("filter"),
        ))
        .expect("spawn filter");
    (cursor, filter)
}

#[test]
fn durable_cursor_survives_crash() {
    let kernel = Kernel::new();
    register_all(&kernel);
    let (cursor, _filter) = durable_chain(&kernel, 6);
    let first = transfer(&kernel, cursor, 2);
    assert_eq!(first.items.len(), 2);
    kernel.crash(cursor).expect("crash cursor");
    // Reactivates with its position intact: record 2 comes next.
    let next = transfer(&kernel, cursor, 1);
    assert_eq!(next.items[0].as_str().unwrap(), "record 2");
    kernel.shutdown();
}

#[test]
fn crashing_every_eject_between_every_operation_loses_nothing() {
    // The harshest schedule auto-checkpointing promises to survive:
    // fail-stop both stages after every single Transfer.
    let kernel = Kernel::new();
    register_all(&kernel);
    let (cursor, filter) = durable_chain(&kernel, 9);
    let mut out = Vec::new();
    loop {
        let batch = transfer(&kernel, filter, 2);
        out.extend(batch.items);
        if batch.end {
            break;
        }
        kernel.crash(filter).expect("crash filter");
        kernel.crash(cursor).expect("crash cursor");
    }
    assert_eq!(out.len(), 9, "no records lost: {out:?}");
    for (i, line) in out.iter().enumerate() {
        let text = line.as_str().unwrap();
        assert!(
            text.trim_start().starts_with(&format!("{}  record {}", i + 1, i)),
            "row {i} corrupted: {text}"
        );
    }
    kernel.shutdown();
}

#[test]
fn mid_stream_pipeline_survives_whole_system_restart() {
    let store = StableStore::new();
    let filter;
    {
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store.clone());
        register_all(&kernel);
        let (_cursor, f) = durable_chain(&kernel, 6);
        filter = f;
        let first = transfer(&kernel, filter, 3);
        assert_eq!(first.items.len(), 3);
        kernel.shutdown();
    }
    // "Reboot": fresh kernel over the same stable store.
    let kernel = Kernel::with_stable_store(KernelConfig::default(), store);
    register_all(&kernel);
    let mut rest = Vec::new();
    loop {
        let batch = transfer(&kernel, filter, 2);
        rest.extend(batch.items);
        if batch.end {
            break;
        }
    }
    assert_eq!(rest.len(), 3, "stream resumes mid-flight after reboot");
    assert!(rest[0].as_str().unwrap().contains("record 3"));
    kernel.shutdown();
}

#[test]
fn durable_pipeline_over_disk_backed_store() {
    // Full-stack durability: the stable store itself lives on disk, so
    // even the *process* could die between the two kernels.
    let dir = std::env::temp_dir().join(format!(
        "eden-durability-{}-{}",
        std::process::id(),
        Uid::fresh().seq()
    ));
    let filter;
    {
        let store = StableStore::persistent(&dir).expect("open store");
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store);
        register_all(&kernel);
        let (_cursor, f) = durable_chain(&kernel, 4);
        filter = f;
        let first = transfer(&kernel, filter, 2);
        assert_eq!(first.items.len(), 2);
        kernel.shutdown();
    }
    {
        // Re-open the store from disk — nothing shared in memory.
        let store = StableStore::persistent(&dir).expect("reopen store");
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store);
        register_all(&kernel);
        let batch = transfer(&kernel, filter, 10);
        assert_eq!(batch.items.len(), 2);
        assert!(batch.end);
        assert!(batch.items[0].as_str().unwrap().contains("record 2"));
        kernel.shutdown();
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

mod crash_schedules {
    use super::*;
    use proptest::prelude::*;

    /// After which transfers to crash which stage.
    #[derive(Debug, Clone)]
    struct Schedule {
        crash_filter: Vec<bool>,
        crash_cursor: Vec<bool>,
    }

    fn schedule(len: usize) -> impl Strategy<Value = Schedule> {
        (
            proptest::collection::vec(any::<bool>(), len),
            proptest::collection::vec(any::<bool>(), len),
        )
            .prop_map(|(crash_filter, crash_cursor)| Schedule {
                crash_filter,
                crash_cursor,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn any_between_operation_crash_schedule_is_lossless(
            sched in schedule(12),
            batch in 1usize..4,
        ) {
            let kernel = Kernel::new();
            register_all(&kernel);
            let (cursor, filter) = durable_chain(&kernel, 10);
            let mut out = Vec::new();
            let mut step = 0;
            loop {
                let b = transfer(&kernel, filter, batch);
                out.extend(b.items);
                if b.end {
                    break;
                }
                if sched.crash_filter.get(step).copied().unwrap_or(false) {
                    kernel.crash(filter).expect("crash filter");
                }
                if sched.crash_cursor.get(step).copied().unwrap_or(false) {
                    kernel.crash(cursor).expect("crash cursor");
                }
                step += 1;
            }
            prop_assert_eq!(out.len(), 10, "schedule {:?} lost records", sched);
            for (i, line) in out.iter().enumerate() {
                let text = line.as_str().expect("line");
                prop_assert!(
                    text.contains(&format!("record {i}")),
                    "row {i} out of order under {:?}: {text}",
                    sched
                );
            }
            kernel.shutdown();
        }
    }
}

#[test]
fn plain_reader_dies_where_durable_survives() {
    // The §7 contrast, side by side: the plain reader never checkpointed
    // and disappears; the durable one recovers.
    let kernel = Kernel::new();
    register_all(&kernel);
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["a", "b", "c"])))
        .expect("file");
    let plain = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .expect("open")
        .as_uid()
        .expect("uid");
    let durable = kernel
        .invoke(file, "OpenDurable", Value::Unit).wait()
        .expect("open durable")
        .as_uid()
        .expect("uid");
    transfer(&kernel, plain, 1);
    transfer(&kernel, durable, 1);
    kernel.crash(plain).expect("crash plain");
    kernel.crash(durable).expect("crash durable");
    assert!(
        kernel
            .invoke(plain, ops::TRANSFER, TransferRequest::primary(1).to_value()).wait()
            .is_err(),
        "the plain reader disappears"
    );
    let recovered = transfer(&kernel, durable, 1);
    assert_eq!(recovered.items[0].as_str().unwrap(), "b");
    kernel.shutdown();
}
