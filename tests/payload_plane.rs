//! Zero-copy payload plane, observed end to end.
//!
//! A write-only fan-out duplicates *references*, not payloads: every
//! branch of the tree sees the same underlying allocation, a CoW break
//! in one branch is invisible to the others, and the data-plane meters
//! record no extra copies as the fan-out widens.

use std::sync::Mutex;
use std::time::Duration;

use eden::core::{payload, wire, Value};
use eden::kernel::Kernel;
use eden::transput::collector::Collector;
use eden::transput::protocol::OUTPUT_NAME;
use eden::transput::sink::AcceptorSinkEject;
use eden::transput::source::VecSource;
use eden::transput::transform::Identity;
use eden::transput::write_only::{OutputPort, OutputWiring, PushFilterEject, PushSourceEject};

/// Payload counters are process-wide; serialize the tests in this binary
/// that assert on counter deltas so they don't see each other's traffic.
static PAYLOAD_METER: Mutex<()> = Mutex::new(());

const BODY_BYTES: usize = 64 * 1024;

fn big_datum(seq: i64) -> Value {
    Value::record([
        ("seq", Value::Int(seq)),
        ("body", Value::str("x".repeat(BODY_BYTES))),
    ])
}

/// Run `data` through source → identity filter → `width` acceptor sinks,
/// returning each branch's collected output.
fn fan_out(kernel: &Kernel, data: Vec<Value>, width: usize) -> Vec<Vec<Value>> {
    let mut collectors = Vec::new();
    let mut wiring = OutputWiring::default();
    for _ in 0..width {
        let c = Collector::new();
        let sink = kernel
            .spawn(Box::new(AcceptorSinkEject::new(c.clone())))
            .unwrap();
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink));
        collectors.push(c);
    }
    let filter = kernel
        .spawn(Box::new(PushFilterEject::new(Box::new(Identity), wiring)))
        .unwrap();
    let source = kernel
        .spawn(Box::new(PushSourceEject::new(
            Box::new(VecSource::new(data)),
            OutputWiring::primary_to(OutputPort::primary(filter)),
            4,
        )))
        .unwrap();
    kernel.invoke(source, "Start", Value::Unit).wait().unwrap();
    collectors
        .into_iter()
        .map(|c| c.wait_done(Duration::from_secs(15)).unwrap())
        .collect()
}

fn body_text(v: &Value) -> &eden::core::Text {
    v.field("body").unwrap().as_text().unwrap()
}

#[test]
fn fan_out_branches_alias_one_allocation() {
    let kernel = Kernel::new();
    let data: Vec<Value> = (0..4).map(big_datum).collect();
    let branches = fan_out(&kernel, data.clone(), 3);
    kernel.shutdown();

    for branch in &branches {
        assert_eq!(branch.len(), 4);
    }
    for i in 0..4 {
        let first = body_text(&branches[0][i]);
        // Every branch's datum i shares the allocation the source built —
        // the fan-out moved references, not 64 KiB bodies.
        assert!(first.ptr_eq(body_text(&data[i])));
        for branch in &branches[1..] {
            assert!(first.ptr_eq(body_text(&branch[i])));
        }
    }
}

#[test]
fn cow_break_in_one_branch_is_invisible_to_others() {
    let kernel = Kernel::new();
    let branches = fan_out(&kernel, vec![big_datum(7)], 2);
    kernel.shutdown();

    let theirs = branches[1][0].clone();
    assert!(body_text(&branches[0][0]).ptr_eq(body_text(&theirs)));

    // One consumer rewrites its record in place; make_mut must unshare.
    let mut mine = branches[0][0].clone();
    if let Value::Record(rec) = &mut mine {
        for (name, slot) in rec.to_mut() {
            if name.as_str() == "body" {
                *slot = Value::str("rewritten");
            }
        }
    } else {
        panic!("expected record");
    }

    assert_eq!(mine.field("body").unwrap().as_str().unwrap(), "rewritten");
    // The sibling branch still sees the original body, still aliased to
    // the source allocation.
    assert_eq!(body_text(&theirs).len(), BODY_BYTES);
    assert!(body_text(&theirs).ptr_eq(body_text(&branches[1][0])));
}

#[test]
fn decoded_payloads_alias_the_wire_buffer_through_fan_out() {
    // Datums that arrive off the wire stay zero-copy all the way through
    // a fan-out: decode_shared slices the receive buffer, and every
    // branch aliases those slices.
    let encoded = bytes::Bytes::from(wire::encode(&big_datum(1)));
    let decoded = wire::decode_shared(&encoded).unwrap();
    let range = encoded.as_ptr() as usize..encoded.as_ptr() as usize + encoded.len();
    let body = body_text(&decoded).as_shared_bytes();
    assert!(range.contains(&(body.as_ptr() as usize)));

    let kernel = Kernel::new();
    let branches = fan_out(&kernel, vec![decoded.clone()], 2);
    kernel.shutdown();
    for branch in &branches {
        assert!(body_text(&branch[0]).ptr_eq(body_text(&decoded)));
    }
}

#[test]
fn checkpoint_store_path_adds_no_payload_copies() {
    // PR 2's invariant extended through the durability plane: the caller
    // pays exactly one metered copy — wire-encoding the passive
    // representation — and everything after that moves references. The
    // redesigned `StableStore::store(Bytes)` hands the encode buffer to
    // the backend without re-copying, and `load` returns bytes that alias
    // the very allocation that was stored.
    let _guard = PAYLOAD_METER.lock().unwrap();
    let store = eden::kernel::StableStore::new();
    let uid = eden::core::Uid::fresh();
    let encoded: bytes::Bytes = wire::encode(&big_datum(7)).into();

    let before = payload::snapshot();
    store.store(uid, "Datum", encoded.clone()).unwrap();
    let rec = store.load(uid).unwrap();
    let delta = payload::snapshot().since(&before);

    assert_eq!(
        delta.payload_copies, 0,
        "checkpoint store/load must move no payload bytes"
    );
    assert_eq!(
        rec.bytes.as_ptr(),
        encoded.as_ptr(),
        "loaded checkpoint must alias the stored allocation"
    );
}

#[test]
fn fan_out_width_adds_no_payload_copies() {
    let _guard = PAYLOAD_METER.lock().unwrap();
    let kernel = Kernel::new();

    let mut copies_by_width = Vec::new();
    for width in [1usize, 4] {
        let data: Vec<Value> = (0..4).map(big_datum).collect();
        let before = payload::snapshot();
        let branches = fan_out(&kernel, data, width);
        let delta = payload::snapshot().since(&before);
        assert_eq!(branches.len(), width);
        copies_by_width.push(delta.payload_copies);
    }
    kernel.shutdown();

    // O(1) bytes moved per extra consumer: widening the tree 1 → 4 must
    // not add payload copies.
    assert_eq!(
        copies_by_width[0], copies_by_width[1],
        "fan-out width changed payload copy count: {copies_by_width:?}"
    );
}
