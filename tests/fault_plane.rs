//! The fault plane end to end: injected failures on the invocation path,
//! retry/backoff recovery through the redesigned `invoke` API, and
//! checkpoint-driven stream recovery in all three disciplines.
//!
//! The paper's §7 recovery story — "an Eject which has Checkpointed ... is
//! automatically reactivated by the Eden kernel when it is next invoked" —
//! is exercised here as a *stream* guarantee: crash any stage of a
//! pipeline, at any record, and the output is byte-identical to the
//! fault-free run.

use std::time::Duration;

use eden::core::{EdenError, Value};
use eden::kernel::{
    EjectBehavior, EjectContext, FaultKind, FaultPlan, FaultRule, Invocation, InvokeOptions,
    Kernel, KernelConfig, ObsConfig, ReplyHandle, RetryPolicy,
};
use eden::transput::recovery::{
    install_recovery, run_recoverable_pipeline, RecoveryDiscipline, TransformRegistry,
};
use eden::transput::transform::map_fn;
use proptest::prelude::*;

/// A counter Eject that checkpoints after every bump, so it can be crashed
/// and reactivated without losing its total.
struct DurableCounter {
    total: i64,
}

impl DurableCounter {
    fn factory(state: Option<Value>) -> eden::core::Result<Box<dyn EjectBehavior>> {
        let total = match state {
            Some(v) => v.as_int()?,
            None => 0,
        };
        Ok(Box::new(DurableCounter { total }))
    }
}

impl EjectBehavior for DurableCounter {
    fn type_name(&self) -> &'static str {
        "DurableCounter"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        let _ = ctx.checkpoint(&Value::Int(self.total));
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Add" => {
                self.total += inv.arg.as_int().unwrap_or(0);
                if let Err(e) = ctx.checkpoint(&Value::Int(self.total)) {
                    return reply.reply(Err(e));
                }
                reply.reply(Ok(Value::Int(self.total)));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

fn retrying() -> InvokeOptions<'static> {
    InvokeOptions::new().retry(
        RetryPolicy::retries(10)
            .base_delay(Duration::from_millis(1))
            .max_delay(Duration::from_millis(10)),
    )
}

#[test]
fn injected_drop_is_survived_by_retry() {
    let kernel = Kernel::new();
    kernel.register_type("DurableCounter", DurableCounter::factory);
    let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
    // Drop the first two Add invocations; the third delivery succeeds.
    // (Both rules say `nth(1)`: a rule only observes invocations that
    // earlier rules let through, so the second rule's first match is the
    // retry of the first drop.)
    kernel.install_faults(
        FaultPlan::new(7).rule(FaultRule::new(FaultKind::Drop).on_op("Add").nth(1).labeled("d1"))
            .rule(FaultRule::new(FaultKind::Drop).on_op("Add").nth(1).labeled("d2")),
    );
    let got = kernel
        .invoke_with(counter, "Add", Value::Int(5), retrying())
        .wait()
        .unwrap();
    assert_eq!(got, Value::Int(5));
    let m = kernel.metrics().snapshot();
    assert_eq!(m.faults_injected, 2);
    assert!(m.retries >= 2, "retries = {}", m.retries);
    kernel.shutdown();
}

#[test]
fn injected_error_without_retry_surfaces() {
    let kernel = Kernel::new();
    kernel.register_type("DurableCounter", DurableCounter::factory);
    let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
    kernel.install_faults(
        FaultPlan::new(1).rule(FaultRule::new(FaultKind::Error).on_op("Add").nth(1).labeled("boom")),
    );
    let err = kernel.invoke(counter, "Add", Value::Int(1)).wait().unwrap_err();
    assert_eq!(err, EdenError::FaultInjected("boom".into()));
    assert!(err.is_retryable());
    // The fault plan is exhausted; the next plain invocation goes through.
    assert_eq!(
        kernel.invoke(counter, "Add", Value::Int(2)).wait().unwrap(),
        Value::Int(2)
    );
    kernel.shutdown();
}

#[test]
fn crash_fault_reactivates_target_from_checkpoint_on_retry() {
    let kernel = Kernel::new();
    kernel.register_type("DurableCounter", DurableCounter::factory);
    let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
    assert_eq!(
        kernel.invoke(counter, "Add", Value::Int(3)).wait().unwrap(),
        Value::Int(3)
    );
    // The next Add crashes the counter; the retry reactivates it from its
    // checkpoint and lands the addition on the preserved total.
    kernel.install_faults(
        FaultPlan::new(3).rule(
            FaultRule::new(FaultKind::CrashTarget).on_op("Add").nth(1).labeled("crash"),
        ),
    );
    let got = kernel
        .invoke_with(counter, "Add", Value::Int(4), retrying())
        .wait()
        .unwrap();
    assert_eq!(got, Value::Int(7), "total must survive the crash");
    let m = kernel.metrics().snapshot();
    assert_eq!(m.crashes, 1);
    assert!(m.reactivations >= 1);
    kernel.shutdown();
}

#[test]
fn deadline_bounds_the_whole_retry_affair() {
    let kernel = Kernel::new();
    kernel.register_type("DurableCounter", DurableCounter::factory);
    let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
    // Every Add is dropped; a 40ms deadline must cut the retrying short
    // even though the policy would allow many more attempts.
    kernel.install_faults(
        FaultPlan::new(9).rule(FaultRule::new(FaultKind::Drop).on_op("Add").labeled("all")),
    );
    let started = std::time::Instant::now();
    let err = kernel
        .invoke_with(
            counter,
            "Add",
            Value::Int(1),
            InvokeOptions::new()
                .deadline(Duration::from_millis(40))
                .retry(RetryPolicy::retries(1000).base_delay(Duration::from_millis(2))),
        )
        .wait()
        .unwrap_err();
    assert_eq!(err, EdenError::Timeout);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline did not bound the retries"
    );
    kernel.shutdown();
}

#[test]
fn immune_invocations_bypass_the_fault_plan() {
    let kernel = Kernel::new();
    kernel.register_type("DurableCounter", DurableCounter::factory);
    let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
    kernel.install_faults(
        FaultPlan::new(5).rule(FaultRule::new(FaultKind::Error).labeled("everything")),
    );
    let got = kernel
        .invoke_with(counter, "Add", Value::Int(1), InvokeOptions::new().immune())
        .wait()
        .unwrap();
    assert_eq!(got, Value::Int(1));
    assert_eq!(kernel.metrics().snapshot().faults_injected, 0);
    kernel.shutdown();
}

#[test]
fn fault_schedule_replays_byte_for_byte() {
    // The same seed must decide the same fates in the same order —
    // determinism is what makes a chaos run a reproducible experiment.
    let run = |seed: u64| -> Vec<bool> {
        let kernel = Kernel::new();
        kernel.register_type("DurableCounter", DurableCounter::factory);
        let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
        kernel.install_faults(FaultPlan::new(seed).rule(
            FaultRule::new(FaultKind::Error).on_op("Add").with_probability(0.4),
        ));
        let outcomes = (0..40)
            .map(|_| kernel.invoke(counter, "Add", Value::Int(1)).wait().is_ok())
            .collect();
        kernel.shutdown();
        outcomes
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds should differ somewhere");
}

// ---------------------------------------------------------------------------
// Checkpoint-driven stream recovery.
// ---------------------------------------------------------------------------

fn registry() -> TransformRegistry {
    TransformRegistry::new(&[
        ("double", || {
            Box::new(map_fn("double", |v| Value::Int(v.as_int().unwrap_or(0) * 2)))
        }),
        ("inc", || {
            Box::new(map_fn("inc", |v| Value::Int(v.as_int().unwrap_or(0) + 1)))
        }),
    ])
}

fn expected(n: i64) -> Vec<Value> {
    (0..n).map(|i| Value::Int(i * 2 + 1)).collect()
}

const DISCIPLINES: [RecoveryDiscipline; 3] = [
    RecoveryDiscipline::ReadOnly,
    RecoveryDiscipline::WriteOnly,
    RecoveryDiscipline::Conventional,
];

#[test]
fn recoverable_pipelines_run_fault_free() {
    for discipline in DISCIPLINES {
        let kernel = Kernel::new();
        let reg = registry();
        install_recovery(&kernel, &reg);
        let items: Vec<Value> = (0..40).map(Value::Int).collect();
        let run = run_recoverable_pipeline(
            &kernel,
            discipline,
            items,
            &["double", "inc"],
            &reg,
            7,
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(run.output, expected(40), "{discipline:?}");
        kernel.shutdown();
    }
}

#[test]
fn streams_recover_from_injected_crashes() {
    // A 2% crash-fault rate on the stream ops: every discipline must still
    // deliver the exact output — nothing lost, nothing duplicated.
    for discipline in DISCIPLINES {
        let kernel = Kernel::new();
        let reg = registry();
        install_recovery(&kernel, &reg);
        kernel.install_faults(
            FaultPlan::new(0xede2 + discipline as u64)
                .rule(FaultRule::new(FaultKind::CrashTarget).on_op("Transfer").with_probability(0.02))
                .rule(FaultRule::new(FaultKind::CrashTarget).on_op("Write").with_probability(0.02))
                .rule(FaultRule::new(FaultKind::Drop).on_op("Transfer").with_probability(0.02))
                .rule(FaultRule::new(FaultKind::Drop).on_op("Write").with_probability(0.02)),
        );
        let items: Vec<Value> = (0..60).map(Value::Int).collect();
        let run = run_recoverable_pipeline(
            &kernel,
            discipline,
            items,
            &["double", "inc"],
            &reg,
            5,
            Duration::from_secs(60),
        )
        .unwrap();
        assert_eq!(run.output, expected(60), "{discipline:?}");
        let m = kernel.metrics().snapshot();
        if m.crashes > 0 {
            assert!(m.reactivations > 0, "{discipline:?}: crashes but no reactivations");
            assert!(m.recovered_streams > 0, "{discipline:?}: no stream recovered");
        }
        kernel.shutdown();
    }
}

#[test]
fn direct_crash_of_every_stage_recovers() {
    // Crash each stage directly (no fault plan) mid-stream — including the
    // active pumps that receive no stream invocations and are only brought
    // back by the driver's nudge.
    for discipline in DISCIPLINES {
        // First run fault-free to learn the stage list length.
        let probe = {
            let kernel = Kernel::new();
            let reg = registry();
            install_recovery(&kernel, &reg);
            let run = run_recoverable_pipeline(
                &kernel,
                discipline,
                (0..30).map(Value::Int).collect(),
                &["double", "inc"],
                &reg,
                4,
                Duration::from_secs(30),
            )
            .unwrap();
            kernel.shutdown();
            run.stages.len()
        };
        for stage_idx in 0..probe {
            let kernel = Kernel::new();
            let reg = registry();
            install_recovery(&kernel, &reg);
            let items: Vec<Value> = (0..30).map(Value::Int).collect();
            // Run the pipeline on a helper thread; crash the chosen stage
            // from here once it exists.
            let k2 = kernel.clone();
            let reg2 = reg.clone();
            let runner = std::thread::spawn(move || {
                run_recoverable_pipeline(
                    &k2,
                    discipline,
                    items,
                    &["double", "inc"],
                    &reg2,
                    4,
                    Duration::from_secs(60),
                )
            });
            // Wait until the pipeline's stages exist (they all spawn before
            // any data moves), then crash whatever stage holds `stage_idx`
            // in UID order of creation. Polling instead of a fixed sleep
            // keeps the crash aimed mid-stream on fast machines and still
            // lands it on slow ones.
            let spawn_deadline = std::time::Instant::now() + Duration::from_secs(2);
            while kernel.list_ejects().len() < probe
                && std::time::Instant::now() < spawn_deadline
            {
                std::thread::yield_now();
            }
            let mut ejects = kernel.list_ejects();
            ejects.sort_by_key(|info| info.uid.seq());
            if let Some(info) = ejects.get(stage_idx.min(ejects.len().saturating_sub(1))) {
                let _ = kernel.crash(info.uid);
            }
            let run = runner.join().unwrap().unwrap();
            assert_eq!(
                run.output,
                (0..30).map(|i| Value::Int(i * 2 + 1)).collect::<Vec<_>>(),
                "{discipline:?} stage {stage_idx}"
            );
            kernel.shutdown();
        }
    }
}

#[test]
fn zero_record_stream_survives_crash_and_reactivation() {
    // §7 edge case: a stream with no records still runs the full
    // handshake — stages spawn, checkpoint their empty state, and report
    // end-of-stream. Crashing the very first stream operation must
    // reactivate from that empty checkpoint and terminate cleanly rather
    // than hang waiting for a record that will never arrive.
    for discipline in DISCIPLINES {
        let kernel = Kernel::new();
        let reg = registry();
        install_recovery(&kernel, &reg);
        kernel.install_faults(
            FaultPlan::new(0x0e0e + discipline as u64)
                .rule(FaultRule::new(FaultKind::CrashTarget).on_op("Transfer").nth(1))
                .rule(FaultRule::new(FaultKind::CrashTarget).on_op("Write").nth(1)),
        );
        let run = run_recoverable_pipeline(
            &kernel,
            discipline,
            Vec::new(),
            &["double", "inc"],
            &reg,
            3,
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(run.output, Vec::<Value>::new(), "{discipline:?}");
        let m = kernel.metrics().snapshot();
        if m.crashes > 0 {
            assert!(
                m.reactivations > 0,
                "{discipline:?}: zero-record crash without reactivation"
            );
        }
        kernel.shutdown();
    }
}

#[test]
fn crash_exactly_at_checkpoint_boundary_neither_loses_nor_repeats() {
    // The subtle off-by-one: with checkpoint_every = 5, the crash lands on
    // the operation right at a checkpoint boundary, so the reactivated
    // stage resumes with its checkpointed position equal to everything it
    // has consumed (seq == pos). Resuming must replay nothing and skip
    // nothing — a <= versus < in the resume comparison would double or
    // drop the boundary record.
    const EVERY: u64 = 5;
    for discipline in DISCIPLINES {
        for boundary in [EVERY, 2 * EVERY, 4 * EVERY] {
            for op in ["Transfer", "Write"] {
                let kernel = Kernel::new();
                let reg = registry();
                install_recovery(&kernel, &reg);
                kernel.install_faults(FaultPlan::new(0xb0b + boundary).rule(
                    FaultRule::new(FaultKind::CrashTarget)
                        .on_op(op)
                        .nth(boundary)
                        .labeled("boundary-crash"),
                ));
                let items: Vec<Value> = (0..30).map(Value::Int).collect();
                let run = run_recoverable_pipeline(
                    &kernel,
                    discipline,
                    items,
                    &["double", "inc"],
                    &reg,
                    EVERY as usize,
                    Duration::from_secs(60),
                )
                .unwrap();
                assert_eq!(
                    run.output,
                    expected(30),
                    "{discipline:?} {op} crash at checkpoint boundary {boundary}"
                );
                kernel.shutdown();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// The acceptance property: a single crash injected at a random record
    /// index, of a random stage, in a depth-3 pipeline, in any discipline,
    /// yields output identical to the fault-free run.
    #[test]
    fn single_random_crash_never_corrupts_the_stream(
        discipline_idx in 0usize..3,
        crash_nth in 1u64..40,
        crash_op_idx in 0usize..2,
        seed in any::<u64>(),
        len in 20i64..50,
    ) {
        let discipline = DISCIPLINES[discipline_idx];
        let crash_op = ["Transfer", "Write"][crash_op_idx];
        let kernel = Kernel::new();
        let reg = registry();
        install_recovery(&kernel, &reg);
        kernel.install_faults(FaultPlan::new(seed).rule(
            FaultRule::new(FaultKind::CrashTarget).on_op(crash_op).nth(crash_nth).labeled("the-crash"),
        ));
        let items: Vec<Value> = (0..len).map(Value::Int).collect();
        let run = run_recoverable_pipeline(
            &kernel,
            discipline,
            items,
            &["double", "inc"],
            &reg,
            3,
            Duration::from_secs(60),
        ).unwrap();
        prop_assert_eq!(run.output, expected(len));
        kernel.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Process-restart-shaped recovery: the durable stable store survives losing
// the whole kernel, not just one stage.
// ---------------------------------------------------------------------------

/// Crash the *kernel*, not a stage: run a write-only pipeline over a
/// durable log on a MemFs, tear the whole kernel down mid-stream, rebuild
/// a fresh kernel over the replayed log, and resume by invoking the old
/// UIDs. Exactly-once must hold across the restart.
#[test]
fn whole_kernel_restart_resumes_from_the_durable_log() {
    use eden::core::MemFs;
    use eden::kernel::{DurableConfig, FsyncPolicy, Kernel, StableStore};
    use eden::transput::recovery::resume_recoverable_pipeline;

    let fs = MemFs::new();
    let cfg = DurableConfig {
        auto_compact: false, // keep the first life's log byte-stable
        ..DurableConfig::with_fsync(FsyncPolicy::Always)
    };

    // First life: start the stream, let some (not all) records land.
    let stages = {
        let store = StableStore::durable_on(std::sync::Arc::clone(&fs), cfg).unwrap();
        let kernel = Kernel::builder().stable_store(store).build();
        let reg = registry();
        install_recovery(&kernel, &reg);
        let items: Vec<Value> = (0..50).map(Value::Int).collect();
        let k2 = kernel.clone();
        let reg2 = reg.clone();
        let runner = std::thread::spawn(move || {
            run_recoverable_pipeline(
                &k2,
                RecoveryDiscipline::WriteOnly,
                items,
                &["double", "inc"],
                &reg2,
                4,
                Duration::from_secs(60),
            )
        });
        // Wait until at least one batch has been durably accepted, then
        // pull the plug on the whole kernel. `shutdown` stops the pump
        // worker between acknowledged writes, which is exactly the state a
        // fail-stop process loss leaves behind.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while kernel.stable_store().len() < 4 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let stages: Vec<_> = kernel
            .list_ejects()
            .into_iter()
            .map(|info| info.uid)
            .collect();
        assert_eq!(stages.len(), 4, "source, two filters, acceptor");
        kernel.shutdown();
        let _ = runner.join().unwrap(); // first life ends however far it got
        stages
    };

    // Second life: a brand-new kernel over the same files. Building the
    // store replays the log; building the kernel seeds passive slots for
    // every checkpointed UID; resuming just invokes them.
    let store = StableStore::durable_on(std::sync::Arc::clone(&fs), cfg).unwrap();
    let kernel = Kernel::builder().stable_store(store).build();
    let reg = registry();
    install_recovery(&kernel, &reg);
    let mut ordered = stages.clone();
    ordered.sort_by_key(eden::core::Uid::seq);
    // The write-only spawn order is acceptor, filters (tail→head), source;
    // resume wants head-first with the acceptor last — reverse creation.
    ordered.reverse();
    let output =
        resume_recoverable_pipeline(&kernel, &ordered, Duration::from_secs(60)).unwrap();
    assert_eq!(output, expected(50), "restart must neither lose nor repeat");
    let m = kernel.metrics().snapshot();
    assert!(
        m.reactivations >= 1,
        "resume must reactivate stages from the replayed log"
    );
    kernel.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn-write recovery: store a known history into the durable log,
    /// then truncate the newest segment at an arbitrary byte offset (a
    /// crash mid-append tears at most one frame). Replay must recover a
    /// valid *prefix* of the history — every surviving record byte-exact
    /// at some version it actually had, never a corrupt or invented one —
    /// and the reopened log must itself reopen cleanly.
    #[test]
    fn torn_segment_tail_recovers_a_valid_prefix(
        tear_back in 1usize..64,
        uids_n in 1usize..5,
        writes in 4usize..24,
    ) {
        use eden::core::MemFs;
        use eden::kernel::{DurableConfig, DurableLog, FsyncPolicy, StableBackend};

        let fs = MemFs::new();
        let cfg = DurableConfig {
            fsync: FsyncPolicy::Always,
            auto_compact: false,
            ..DurableConfig::default()
        };
        let uids: Vec<eden::core::Uid> =
            (0..uids_n).map(|_| eden::core::Uid::fresh()).collect();
        // History: every (uid, version) -> payload ever written.
        let mut history =
            std::collections::HashMap::<(eden::core::Uid, u64), Vec<u8>>::new();
        {
            let log = DurableLog::open(std::sync::Arc::clone(&fs), cfg).unwrap();
            for i in 0..writes {
                let uid = uids[i % uids.len()];
                let payload = vec![(i % 251) as u8; 3 + i % 9];
                log.store(uid, "T", payload.clone().into()).unwrap();
                let v = log.load(uid).unwrap().version;
                history.insert((uid, v), payload);
            }
        }
        // Tear: cut the newest segment `tear_back` bytes from its end
        // (clamped to leave the file non-negative).
        let seg = fs
            .list()
            .into_iter()
            .rfind(|n| n.starts_with("seg-"))
            .unwrap();
        let bytes = fs.read(&seg).unwrap();
        let keep = bytes.len().saturating_sub(tear_back);
        fs.write(&seg, &bytes[..keep]).unwrap();

        let log = DurableLog::open(std::sync::Arc::clone(&fs), cfg).unwrap();
        for (uid, rec) in log.iter() {
            let expect = history
                .get(&(uid, rec.version))
                .expect("recovered a (uid, version) never written");
            prop_assert_eq!(
                &rec.bytes[..], &expect[..],
                "recovered bytes must match what that version wrote"
            );
        }
        // The tear only ever removes the newest suffix: every uid whose
        // final version predates the torn frames must still be present.
        let torn = log.torn_segments();
        prop_assert!(torn <= 1, "one tear, at most one torn segment");
        drop(log);
        // The truncation is durable: a second reopen sees a clean log.
        let log = DurableLog::open(std::sync::Arc::clone(&fs), cfg).unwrap();
        prop_assert_eq!(log.torn_segments(), 0);
    }
}

// ---------------------------------------------------------------------------
// The outcome ledger under fire, and span propagation through recovery.
// ---------------------------------------------------------------------------

#[test]
fn outcome_ledger_balances_under_injected_fire() {
    // Every logical invocation must land on exactly one side of the
    // ledger — `invocations == successes + fatal_failures` once all are
    // resolved — no matter how it got there: first try, after retries, by
    // injected error, or by deadline expiry. Retries re-send an existing
    // invocation and must not open new ledger entries.
    let kernel = Kernel::new();
    kernel.register_type("DurableCounter", DurableCounter::factory);
    let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();

    // A plain first-try success.
    kernel.invoke(counter, "Add", Value::Int(1)).wait().unwrap();
    // An injected error with no retry: one fatal failure.
    kernel.install_faults(
        FaultPlan::new(11).rule(FaultRule::new(FaultKind::Error).on_op("Add").nth(1).labeled("e")),
    );
    kernel.invoke(counter, "Add", Value::Int(1)).wait().unwrap_err();
    // Two drops survived by retry: one success, despite three deliveries.
    kernel.install_faults(
        FaultPlan::new(12)
            .rule(FaultRule::new(FaultKind::Drop).on_op("Add").nth(1).labeled("d1"))
            .rule(FaultRule::new(FaultKind::Drop).on_op("Add").nth(1).labeled("d2")),
    );
    kernel
        .invoke_with(counter, "Add", Value::Int(1), retrying())
        .wait()
        .unwrap();
    // Every delivery dropped until the deadline: one fatal failure, not
    // one per attempt.
    kernel.install_faults(
        FaultPlan::new(13).rule(FaultRule::new(FaultKind::Drop).on_op("Add").labeled("all")),
    );
    kernel
        .invoke_with(
            counter,
            "Add",
            Value::Int(1),
            InvokeOptions::new()
                .deadline(Duration::from_millis(40))
                .retry(RetryPolicy::retries(1000).base_delay(Duration::from_millis(2))),
        )
        .wait()
        .unwrap_err();
    // An application-level error (unknown op): one fatal failure.
    kernel.invoke(counter, "Bogus", Value::Unit).wait().unwrap_err();

    let m = kernel.metrics().snapshot();
    assert_eq!(
        m.invocations,
        m.successes + m.fatal_failures,
        "ledger out of balance: {} invocations vs {} + {}",
        m.invocations,
        m.successes,
        m.fatal_failures
    );
    assert_eq!(m.successes, 2);
    assert_eq!(m.fatal_failures, 3);
    kernel.shutdown();
}

#[test]
fn outcome_ledger_balances_under_probabilistic_fire() {
    // The audit version: a seeded FaultInjector decides fates at random;
    // whatever mix of errors, drops, retries, and timeouts falls out, the
    // ledger must balance exactly once the invocations resolve.
    for seed in [5, 21, 0xfa11] {
        let kernel = Kernel::new();
        kernel.register_type("DurableCounter", DurableCounter::factory);
        let counter = kernel.spawn(Box::new(DurableCounter { total: 0 })).unwrap();
        kernel.install_faults(
            FaultPlan::new(seed)
                .rule(FaultRule::new(FaultKind::Error).on_op("Add").with_probability(0.3))
                .rule(FaultRule::new(FaultKind::Drop).on_op("Add").with_probability(0.2)),
        );
        let mut ok = 0u64;
        let mut failed = 0u64;
        for _ in 0..30 {
            let outcome = kernel
                .invoke_with(
                    counter,
                    "Add",
                    Value::Int(1),
                    InvokeOptions::new()
                        .deadline(Duration::from_millis(200))
                        .retry(
                            RetryPolicy::retries(5).base_delay(Duration::from_millis(1)),
                        ),
                )
                .wait();
            match outcome {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
        }
        let m = kernel.metrics().snapshot();
        assert_eq!(
            m.invocations,
            m.successes + m.fatal_failures,
            "seed {seed}: ledger out of balance"
        );
        assert_eq!(m.successes, ok, "seed {seed}");
        assert_eq!(m.fatal_failures, failed, "seed {seed}");
        kernel.shutdown();
    }
}

#[test]
fn recovery_keeps_the_crashed_stream_in_one_trace() {
    // Span propagation across crash and reactivation: the delivery that
    // dies, the retries that bring the stage back, and the replayed stream
    // all carry the run's trace id — one causal tree, not a new trace per
    // recovery.
    let kernel = Kernel::with_config(KernelConfig {
        observability: ObsConfig::full(),
        ..KernelConfig::default()
    });
    let reg = registry();
    install_recovery(&kernel, &reg);
    kernel.install_faults(FaultPlan::new(0xcafe).rule(
        FaultRule::new(FaultKind::CrashTarget).on_op("Transfer").nth(8).labeled("crash"),
    ));
    let run = run_recoverable_pipeline(
        &kernel,
        RecoveryDiscipline::ReadOnly,
        (0..40).map(Value::Int).collect(),
        &["double", "inc"],
        &reg,
        5,
        Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(run.output, expected(40), "recovery must not corrupt the stream");
    let m = kernel.metrics().snapshot();
    assert_eq!(m.crashes, 1);
    assert!(m.reactivations >= 1);

    // Spans settle before their replies, but the last few can land on
    // coordinator threads after the run returns: poll until the trace has
    // its failed span and the count stops moving. (The run batches
    // records, so the span count is structural, not per-record.)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut last_len = 0usize;
    let mut stable = 0u32;
    let spans = loop {
        let spans: Vec<_> = kernel
            .spans()
            .into_iter()
            .filter(|s| s.trace == run.trace)
            .collect();
        let settled = !spans.is_empty() && spans.iter().any(|s| !s.ok);
        if settled && spans.len() == last_len {
            stable += 1;
        } else {
            stable = 0;
            last_len = spans.len();
        }
        if (settled && stable >= 3) || std::time::Instant::now() >= deadline {
            break spans;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        spans.len() >= 12,
        "a recovered depth-2 run must leave a substantial trace, got {}",
        spans.len()
    );
    let crashed = spans.iter().filter(|s| !s.ok).count();
    assert!(
        crashed >= 1,
        "the crashed delivery must appear in the trace as a failed span"
    );
    // The recovered replay is *in* the tree: every parent resolves to
    // another span of this trace or to the run's unrecorded ambient root.
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span).collect();
    assert_eq!(ids.len(), spans.len(), "span ids must be unique");
    let mut roots = std::collections::HashSet::new();
    for s in &spans {
        match s.parent {
            Some(p) if ids.contains(&p) => {}
            Some(p) => {
                roots.insert(p);
            }
            None => panic!("span {} lost its causal parent", s.span),
        }
    }
    assert_eq!(
        roots.len(),
        1,
        "crash recovery must not fork the causal tree: roots {roots:?}"
    );
    kernel.shutdown();
}
