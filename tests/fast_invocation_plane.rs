//! The fast invocation plane must be *semantically invisible*: sharded
//! registries, cached routes and bounded mailboxes change how fast an
//! invocation is delivered, never what it does. These tests pin the
//! invisibility down — a stale cached route across checkpoint → crash →
//! reactivation yields a byte-identical stream, a cache hit still costs
//! exactly one metered invocation, and injected invocation latency is
//! paid outside every registry lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden::core::op::ops;
use eden::core::{EdenError, Uid, Value};
use eden::filters::{DurableFilterEject, FilterSpec};
use eden::fs::{register_fs_types, FileEject};
use eden::kernel::{
    EjectBehavior, EjectContext, Invocation, InvokeOptions, Kernel, KernelConfig, ReplyHandle,
    RouteCache,
};
use eden::transput::protocol::{Batch, TransferRequest};
use eden::transput::{Discipline, PipelineSpec};

/// Replies to `Echo` with its argument.
struct Echo;

impl EjectBehavior for Echo {
    fn type_name(&self) -> &'static str {
        "Echo"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Echo" => reply.reply(Ok(inv.arg)),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// An Echo that dawdles: used to back the mailbox up against its bound.
struct SlowEcho {
    served: Arc<AtomicUsize>,
}

impl EjectBehavior for SlowEcho {
    fn type_name(&self) -> &'static str {
        "SlowEcho"
    }
    fn handle(&mut self, _ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        std::thread::sleep(Duration::from_millis(1));
        self.served.fetch_add(1, Ordering::SeqCst);
        reply.reply(Ok(inv.arg));
    }
}

fn register_all(kernel: &Kernel) {
    register_fs_types(kernel);
    DurableFilterEject::register(kernel);
}

/// `FileEject` lines → durable cursor → durable line-number filter.
fn durable_chain(kernel: &Kernel, lines: i64) -> Uid {
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(
            (0..lines).map(|i| format!("record {i}")),
        )))
        .expect("file");
    let cursor = kernel
        .invoke(file, "OpenDurable", Value::Unit).wait()
        .expect("open durable")
        .as_uid()
        .expect("cursor uid");
    kernel
        .spawn(Box::new(
            DurableFilterEject::new(FilterSpec::new("line-number"), cursor, 2).expect("filter"),
        ))
        .expect("spawn filter")
}

fn transfer_cached(kernel: &Kernel, cache: &mut RouteCache, target: Uid, max: usize) -> Batch {
    Batch::from_value(
        kernel
            .invoke_with(
                target,
                ops::TRANSFER,
                TransferRequest::primary(max).to_value(),
                InvokeOptions::new().route_cache(cache),
            )
            .wait()
            .expect("transfer"),
    )
    .expect("batch")
}

/// Drain the filter through one long-lived route cache, crashing the
/// filter after every `crash_every`th batch (0 = never). Every
/// post-crash transfer is sent down a *stale* cached route first and
/// must transparently re-resolve.
fn drain_with_crashes(kernel: &Kernel, filter: Uid, crash_every: usize) -> Vec<Value> {
    let mut cache = RouteCache::new();
    let mut out = Vec::new();
    let mut batches = 0usize;
    loop {
        let batch = transfer_cached(kernel, &mut cache, filter, 2);
        batches += 1;
        out.extend(batch.items);
        if batch.end {
            return out;
        }
        if crash_every > 0 && batches.is_multiple_of(crash_every) {
            kernel.crash(filter).expect("crash filter");
        }
    }
}

#[test]
fn stale_cached_route_survives_checkpoint_crash_reactivation() {
    // Reference stream: no crashes, same cache discipline.
    let reference = {
        let kernel = Kernel::new();
        register_all(&kernel);
        let filter = durable_chain(&kernel, 11);
        let out = drain_with_crashes(&kernel, filter, 0);
        kernel.shutdown();
        out
    };
    assert_eq!(reference.len(), 11);

    // Crash the (auto-checkpointing) filter after every second batch. The
    // cache still holds the route to the dead incarnation each time;
    // delivery must bounce, re-resolve, reactivate from the checkpoint,
    // and the stream must be byte-identical. The surviving batches in
    // between must be genuine cache hits.
    let kernel = Kernel::new();
    register_all(&kernel);
    let filter = durable_chain(&kernel, 11);
    let out = drain_with_crashes(&kernel, filter, 2);
    assert_eq!(out, reference, "stale routes corrupted the stream");

    let snap = kernel.metrics().snapshot();
    assert!(snap.crashes >= 2, "schedule failed to crash mid-stream");
    assert!(
        snap.route_cache_hits > 0,
        "the cache was never hit — the test exercised nothing"
    );
    // Every crash forces at least one bounce → miss → refresh.
    assert!(
        snap.route_cache_misses >= snap.crashes,
        "crashes ({}) did not all invalidate the route (misses {})",
        snap.crashes,
        snap.route_cache_misses
    );
    kernel.shutdown();

    // And the harshest schedule — crash after *every* batch, so the
    // cached route is stale on every single delivery — still yields the
    // identical stream.
    let kernel = Kernel::new();
    register_all(&kernel);
    let filter = durable_chain(&kernel, 11);
    let out = drain_with_crashes(&kernel, filter, 1);
    assert_eq!(out, reference, "all-stale schedule corrupted the stream");
    kernel.shutdown();
}

#[test]
fn cache_hits_are_not_counted_as_invocation_savings() {
    // §4's arithmetic is denominated in invocations; a cached route makes
    // each one cheaper but must still count. Ten invocations through one
    // cache = ten metered invocations: one cold miss, nine hits.
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let before = kernel.metrics().snapshot();
    let mut cache = RouteCache::new();
    for i in 0..10i64 {
        let got = kernel
            .invoke_with(echo, "Echo", Value::Int(i), InvokeOptions::new().route_cache(&mut cache))
            .wait()
            .unwrap();
        assert_eq!(got, Value::Int(i));
    }
    let snap = kernel.metrics().snapshot().since(&before);
    assert_eq!(snap.invocations, 10, "hits must meter like any invocation");
    assert_eq!(snap.route_cache_misses, 1);
    assert_eq!(snap.route_cache_hits, 9);
    kernel.shutdown();
}

#[test]
fn bounded_mailboxes_deliver_everything_and_shut_down_cleanly() {
    // A tiny mailbox with a slow consumer: senders block on the bound
    // (backpressure), but every invocation is eventually served and the
    // kernel still tears down without deadlock.
    let served = Arc::new(AtomicUsize::new(0));
    let kernel = Kernel::with_config(KernelConfig {
        mailbox_capacity: Some(2),
        ..KernelConfig::default()
    });
    let slow = kernel
        .spawn(Box::new(SlowEcho {
            served: served.clone(),
        }))
        .unwrap();

    let mut senders = Vec::new();
    for t in 0..4i64 {
        let kernel = kernel.clone();
        senders.push(std::thread::spawn(move || {
            for i in 0..10i64 {
                let got = kernel
                    .invoke(slow, "Echo", Value::Int(t * 100 + i)).wait()
                    .expect("echo");
                assert_eq!(got, Value::Int(t * 100 + i));
            }
        }));
    }
    for s in senders {
        s.join().expect("sender panicked");
    }
    assert_eq!(served.load(Ordering::SeqCst), 40);
    kernel.shutdown();
}

#[test]
fn injected_latency_is_paid_outside_registry_locks() {
    // Eight threads invoke eight distinct Ejects with a 25ms simulated
    // invocation latency. If the sleep happened under a registry lock the
    // calls would serialise (≥ 16 × 25ms); concurrent delivery must land
    // well under that.
    const LATENCY: Duration = Duration::from_millis(25);
    const THREADS: usize = 8;
    const CALLS: usize = 2;
    let kernel = Kernel::with_config(KernelConfig {
        invocation_latency: Some(LATENCY),
        ..KernelConfig::default()
    });
    let targets: Vec<Uid> = (0..THREADS)
        .map(|_| kernel.spawn(Box::new(Echo)).unwrap())
        .collect();

    let start = Instant::now();
    let mut workers = Vec::new();
    for &target in &targets {
        let kernel = kernel.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..CALLS as i64 {
                kernel.invoke(target, "Echo", Value::Int(i)).wait().unwrap();
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = start.elapsed();
    let serialised = LATENCY * (THREADS * CALLS) as u32;
    // Concurrent delivery lands around 2 × LATENCY (~50ms); fully serial
    // is 400ms. Asserting < 3/4 of serial still rules out serialisation
    // decisively while leaving room for scheduler noise on small or busy
    // CI machines.
    assert!(
        elapsed < serialised * 3 / 4,
        "invocations serialised: {elapsed:?} vs {serialised:?} fully serial"
    );
    kernel.shutdown();
}

#[test]
fn single_shard_registry_reproduces_default_behaviour() {
    // `registry_shards: 1` is the honest pre-sharding baseline for the
    // contention benchmark; it must be behaviourally identical.
    let run = |shards: usize| {
        let kernel = Kernel::with_config(KernelConfig {
            registry_shards: shards,
            ..KernelConfig::default()
        });
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 4 })
            .source_vec((0..40).map(Value::Int).collect())
            .batch(3)
            .stage(Box::new(eden::transput::transform::Identity))
            .stage(Box::new(eden::filters::LineNumber::new()))
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(30))
            .unwrap();
        kernel.shutdown();
        run.output
    };
    assert_eq!(run(1), run(16));
}
