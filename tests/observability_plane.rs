//! The observability plane end to end: causal spans recorded per delivered
//! invocation reconstruct each pipeline run as a single tree whose edge
//! count *is* the paper's §4 arithmetic — n+1 invocations per batch round
//! in the asymmetric disciplines, 2n+2 per datum (plus Start) in the
//! conventional one — and the export surfaces (Prometheus text, JSON,
//! Chrome trace_event) render well-formed documents from live kernels.
//!
//! The Prometheus checks double as the format lint for CI: the renderer's
//! output is parsed line by line against the text exposition format rather
//! than eyeballed.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use eden::core::Value;
use eden::kernel::{
    chrome_trace_json, json_text, prometheus_text, Kernel, KernelConfig, ObsConfig, SpanRecord,
};
use eden::transput::transform::Identity;
use eden::transput::{Discipline, PipelineRun, PipelineSpec};

fn obs_kernel() -> Kernel {
    Kernel::with_config(KernelConfig {
        observability: ObsConfig::full(),
        ..KernelConfig::default()
    })
}

/// A depth-`depth` identity pipeline at batch 1 — the configuration in
/// which §4's per-datum invocation counts are exact.
fn run_traced(kernel: &Kernel, discipline: Discipline, items: usize, depth: usize) -> PipelineRun {
    let mut spec = PipelineSpec::new(discipline)
        .source_vec((0..items as i64).map(Value::Int).collect())
        .batch(1);
    for _ in 0..depth {
        spec = spec.stage(Box::new(Identity));
    }
    spec.build(kernel)
        .expect("build")
        .run(Duration::from_secs(30))
        .expect("run")
}

/// Spans settle before their reply is sent, but the final replies of a run
/// can resolve on coordinator threads after `run` returns; poll until the
/// trace has at least `at_least` spans (or the deadline passes and the
/// caller's assertion reports the shortfall).
fn spans_of(kernel: &Kernel, trace: u64, at_least: usize) -> Vec<SpanRecord> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let spans: Vec<SpanRecord> = kernel
            .spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        if spans.len() >= at_least || Instant::now() >= deadline {
            return spans;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Check that `spans` form one tree: span ids unique, every parent either
/// another recorded span (with `hop` exactly one less) or the single
/// unrecorded ambient root the pipeline entered. Returns the root id.
fn assert_single_tree(spans: &[SpanRecord]) -> u64 {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids must be unique");
    let mut roots = HashSet::new();
    for s in spans {
        let parent = s.parent.unwrap_or_else(|| {
            panic!("span {} has no parent: every invocation of a pipeline run is caused", s.span)
        });
        match by_id.get(&parent) {
            Some(p) => assert_eq!(
                s.hop,
                p.hop + 1,
                "span {} is {} hops out but its parent {} is {}",
                s.span,
                s.hop,
                p.span,
                p.hop
            ),
            None => {
                // The pipeline's ambient root: not an invocation, so not
                // recorded — but unique per run.
                assert_eq!(s.hop, 1, "a root child must be one hop out");
                roots.insert(parent);
            }
        }
    }
    assert_eq!(roots.len(), 1, "one run must yield one tree, got roots {roots:?}");
    *roots.iter().next().expect("nonempty")
}

#[test]
fn read_only_trace_has_n_plus_one_edges_per_datum() {
    const ITEMS: usize = 24;
    const DEPTH: usize = 3;
    let kernel = obs_kernel();
    let run = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, ITEMS, DEPTH);
    assert_eq!(run.records_out, ITEMS as u64);
    let expected = (DEPTH + 1) * ITEMS;
    let spans = spans_of(&kernel, run.trace, expected);
    assert_eq!(
        spans.len(),
        expected,
        "read-only: (n+1)·k spans expected for n={DEPTH}, k={ITEMS}"
    );
    assert!(
        spans.iter().all(|s| s.op.as_str() == "Transfer" && s.ok),
        "read-only data phase is Transfer pulls only"
    );
    assert_single_tree(&spans);
    // The spans and the metered ledger count the same events.
    assert_eq!(spans.len() as u64, run.metrics.invocations);
    kernel.shutdown();
}

#[test]
fn write_only_trace_adds_only_the_start_invocation() {
    const ITEMS: usize = 24;
    const DEPTH: usize = 3;
    let kernel = obs_kernel();
    let run = run_traced(
        &kernel,
        Discipline::WriteOnly { push_ahead: 0 },
        ITEMS,
        DEPTH,
    );
    assert_eq!(run.records_out, ITEMS as u64);
    let expected = (DEPTH + 1) * ITEMS + 1;
    let spans = spans_of(&kernel, run.trace, expected);
    assert_eq!(
        spans.len(),
        expected,
        "write-only: (n+1)·k Writes plus one Start for n={DEPTH}, k={ITEMS}"
    );
    let starts = spans.iter().filter(|s| s.op.as_str() == "Start").count();
    let writes = spans.iter().filter(|s| s.op.as_str() == "Write").count();
    assert_eq!(starts, 1, "exactly one Start control invocation");
    assert_eq!(writes, (DEPTH + 1) * ITEMS, "(n+1)·k Write pushes");
    assert_single_tree(&spans);
    kernel.shutdown();
}

#[test]
fn conventional_trace_pays_two_n_plus_two_edges_per_datum() {
    const ITEMS: usize = 12;
    const DEPTH: usize = 2;
    let kernel = obs_kernel();
    let run = run_traced(
        &kernel,
        Discipline::Conventional { buffer_capacity: 4 },
        ITEMS,
        DEPTH,
    );
    assert_eq!(run.records_out, ITEMS as u64);
    // 2n+2 invocations per datum plus the Start, with the same bounded
    // slack as the invocation-count property: readers racing end-of-stream
    // may add a constant number of empty transfers per stage, never per
    // datum.
    let expected = (2 * DEPTH + 2) * ITEMS + 1;
    let slack = (2 * DEPTH + 3) * 2 + 1;
    let spans = spans_of(&kernel, run.trace, expected);
    assert!(
        spans.len() >= expected && spans.len() <= expected + slack,
        "conventional: {} spans outside [{}, {}] for n={DEPTH}, k={ITEMS}",
        spans.len(),
        expected,
        expected + slack
    );
    assert_single_tree(&spans);
    kernel.shutdown();
}

#[test]
fn two_runs_on_one_kernel_are_distinct_trees() {
    let kernel = obs_kernel();
    let a = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, 6, 1);
    let b = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, 6, 1);
    assert_ne!(a.trace, b.trace, "each run is its own trace");
    let sa = spans_of(&kernel, a.trace, 12);
    let sb = spans_of(&kernel, b.trace, 12);
    assert_eq!(sa.len(), 12);
    assert_eq!(sb.len(), 12);
    assert_ne!(assert_single_tree(&sa), assert_single_tree(&sb));
    kernel.shutdown();
}

#[test]
fn disabled_plane_records_nothing() {
    let kernel = Kernel::new();
    let run = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, 8, 1);
    assert_eq!(run.records_out, 8);
    assert!(!kernel.spans_enabled());
    assert!(kernel.spans().is_empty());
    let snap = kernel.metrics_snapshot();
    assert_eq!(snap.spans_recorded, 0);
    assert_eq!(snap.spans_dropped, 0);
    assert!(snap.stages.is_empty(), "histograms off by default");
    kernel.shutdown();
}

// ---------------------------------------------------------------------------
// Export surfaces. The Prometheus check is a real parser of the text
// exposition format — it is the CI lint for the `stats --prometheus`
// surface, not a substring probe.
// ---------------------------------------------------------------------------

/// Parse and lint a Prometheus text-format document: `# HELP`/`# TYPE`
/// precede their family's samples, metric names are legal, counters end in
/// `_total`, summaries only emit `quantile`d samples plus `_sum`/`_count`,
/// every value parses as a finite float, and every declared family has at
/// least one sample.
fn lint_prometheus(text: &str) {
    fn is_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    // family -> (type, has_help, sample_count)
    let mut families: HashMap<String, (String, bool, usize)> = HashMap::new();
    let mut last_declared = String::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or_else(|| panic!("line {n}: HELP without text"));
            assert!(is_name(name), "line {n}: bad metric name {name:?}");
            assert!(!help.trim().is_empty(), "line {n}: empty HELP");
            families.entry(name.to_owned()).or_default().1 = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').unwrap_or_else(|| panic!("line {n}: TYPE without kind"));
            assert!(is_name(name), "line {n}: bad metric name {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped"),
                "line {n}: unknown type {kind:?}"
            );
            let fam = families.entry(name.to_owned()).or_default();
            assert!(fam.0.is_empty(), "line {n}: duplicate TYPE for {name}");
            fam.0 = kind.to_owned();
            if kind == "counter" {
                assert!(name.ends_with("_total"), "line {n}: counter {name} must end in _total");
            }
            last_declared = name.to_owned();
            continue;
        }
        assert!(!line.starts_with('#'), "line {n}: unknown comment form {line:?}");
        // A sample: name[{labels}] value
        let (name_labels, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("line {n}: sample without value"));
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("line {n}: unparsable value {value:?}"));
        assert!(v.is_finite(), "line {n}: non-finite value");
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("line {n}: unclosed label block"));
                (name, Some(labels))
            }
            None => (name_labels, None),
        };
        assert!(is_name(name), "line {n}: bad sample name {name:?}");
        if let Some(labels) = labels {
            for pair in split_labels(labels) {
                let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("line {n}: label without '=': {pair:?}"));
                assert!(is_name(k), "line {n}: bad label name {k:?}");
                assert!(
                    v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                    "line {n}: unquoted label value {v:?}"
                );
            }
        }
        // Resolve the family: summaries sample via `_sum` / `_count` too.
        let family = ["_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                families.contains_key(base).then(|| base.to_owned())
            })
            .unwrap_or_else(|| name.to_owned());
        let fam = families.get_mut(&family).unwrap_or_else(|| {
            panic!("line {n}: sample {name} before its TYPE declaration")
        });
        assert!(!fam.0.is_empty(), "line {n}: sample {name} with HELP but no TYPE");
        fam.2 += 1;
        assert_eq!(
            family, last_declared,
            "line {n}: sample {name} not grouped under its declaration"
        );
    }
    for (name, (kind, has_help, samples)) in &families {
        assert!(has_help, "{name}: TYPE without HELP");
        assert!(!kind.is_empty(), "{name}: HELP without TYPE");
        assert!(*samples > 0, "{name}: declared but never sampled");
    }
}

/// Split a Prometheus label block on commas that sit outside quotes.
fn split_labels(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in labels.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

#[test]
fn prometheus_export_survives_the_format_lint() {
    let kernel = obs_kernel();
    let run = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, 20, 2);
    assert_eq!(run.records_out, 20);
    let _ = spans_of(&kernel, run.trace, 3 * 20);
    let text = prometheus_text(&kernel.metrics_snapshot());
    lint_prometheus(&text);
    // The stage summaries made it out with quantile labels.
    assert!(text.contains("eden_stage_service_seconds{"), "no stage summary:\n{text}");
    assert!(text.contains("quantile=\"0.99\""));
    assert!(text.contains("eden_invocations_total"));
    kernel.shutdown();
}

#[test]
fn prometheus_lint_rejects_malformed_documents() {
    let well_formed = "# HELP x_total fine\n# TYPE x_total counter\nx_total 1\n";
    lint_prometheus(well_formed);
    // The rejections below panic by design; keep their backtraces out of
    // the test output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for bad in [
        "x_total 1\n",                                        // sample before TYPE
        "# HELP x_total fine\n# TYPE x_total counter\nx_total NaN-ish\n", // bad value
        "# HELP x fine\n# TYPE x counter\nx 1\n",             // counter without _total
        "# HELP x_total fine\n# TYPE x_total counter\nx_total{l=unquoted} 1\n",
        "# HELP x_total fine\n# TYPE x_total counter\n",      // declared, never sampled
    ] {
        let rejected = std::panic::catch_unwind(|| lint_prometheus(bad)).is_err();
        assert!(rejected, "lint accepted: {bad:?}");
    }
    std::panic::set_hook(prev);
}

#[test]
fn json_export_is_balanced_and_complete() {
    let kernel = obs_kernel();
    let run = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, 10, 1);
    let _ = spans_of(&kernel, run.trace, 2 * 10);
    let text = json_text(&kernel.metrics_snapshot());
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());
    for key in ["\"counters\"", "\"gauges\"", "\"stages\"", "\"eden_invocations_total\""] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
    kernel.shutdown();
}

#[test]
fn chrome_trace_export_emits_one_complete_event_per_span() {
    let kernel = obs_kernel();
    let run = run_traced(&kernel, Discipline::ReadOnly { read_ahead: 0 }, 8, 1);
    let spans = spans_of(&kernel, run.trace, 2 * 8);
    let text = chrome_trace_json(&spans);
    assert!(text.starts_with("{\"traceEvents\":["));
    assert_eq!(text.matches("\"ph\":\"X\"").count(), spans.len());
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches("\"cat\":\"invocation\"").count(), spans.len());
    kernel.shutdown();
}
